//! Dynamic membership: epoch views, heartbeat failure detection, and the
//! client/server machinery that turns `ncsd` from a one-shot rendezvous
//! into a membership service.
//!
//! # The model
//!
//! A world keeps its size (`world` rank *slots*) for life, but the
//! *occupants* of the slots change: ranks join at bootstrap, leave
//! gracefully ([`crate::wire::RvMsg::Leave`]), die (missed heartbeats),
//! and are replaced (a new process re-adopts the dead slot via
//! [`crate::wire::RvMsg::Rejoin`] with a bumped incarnation). Every
//! membership change produces a new [`View`]:
//!
//! * a **monotonic epoch** ([`View::id`]) — subscribers apply views in
//!   epoch order and discard stale ones;
//! * the full **member list** (rank, listener address, incarnation) —
//!   enough for any subscriber to re-mesh without further questions;
//! * the **deltas** ([`View::joined`] / [`View::left`] / [`View::dead`])
//!   — what changed relative to the previous epoch, so subscribers can
//!   react precisely (drop one link, abort one group) instead of diffing.
//!
//! # The failure detector
//!
//! Pure heartbeat with two thresholds, driven entirely by an injectable
//! [`Clock`] (so the SIM backend runs it on virtual time): a tracked
//! member whose last pulse is older than
//! [`MembershipConfig::suspect_after`] becomes *suspect* (reported in
//! heartbeat acks, no view change — suspicion is cheap and reversible);
//! older than [`MembershipConfig::dead_after`] it is declared *dead*,
//! removed from the member list, and a new view goes out. A dead member
//! cannot heartbeat itself back — its slot returns only through a
//! [`Rejoin`](crate::wire::RvMsg::Rejoin) with a higher incarnation.
//!
//! # The pieces
//!
//! * [`MembershipTable`] — the pure, transport-agnostic state machine
//!   (the same table runs inside `ncsd` and inside deterministic SIM
//!   worlds);
//! * [`MembershipHub`] — the table plus in-process subscribers, for
//!   simulated and test worlds;
//! * [`MemberAgent`] — one rank's client: a background thread that
//!   subscribes, pulses heartbeats, observes acks (RTT histogram) and
//!   delivers views to the rank's callback;
//! * [`MembershipMetrics`] — the observability contract (view epoch
//!   gauge, heartbeat RTT histogram, suspect/dead counters).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncs_core::Clock;
use ncs_obs::{Counter, Gauge, Histogram, Registry};
use ncs_transport::sci;
use ncs_transport::{Connection as _, TransportError};

use crate::cluster::ClusterError;
use crate::wire::RvMsg;

/// Failure-detector and heartbeat tuning knobs.
///
/// The defaults balance detection latency against false positives on a
/// loaded CI runner: a member is declared dead after `dead_after` of
/// silence, which the perf gate bounds at 3× the heartbeat interval
/// (detection latency ≈ `dead_after` + one detector tick + delivery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipConfig {
    /// How often each member pulses a heartbeat.
    pub heartbeat_interval: Duration,
    /// Silence after which a member becomes *suspect* (reversible — a
    /// late pulse revives it; no view change).
    pub suspect_after: Duration,
    /// Silence after which a suspect is declared *dead* (irreversible —
    /// the slot returns only through a rejoin; publishes a view).
    pub dead_after: Duration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            heartbeat_interval: Duration::from_millis(200),
            suspect_after: Duration::from_millis(350),
            dead_after: Duration::from_millis(450),
        }
    }
}

/// Environment knobs read by [`MembershipConfig::from_env`].
pub mod env {
    /// Heartbeat interval in milliseconds.
    pub const HEARTBEAT_MS: &str = "NCS_HEARTBEAT_MS";
    /// Suspicion threshold in milliseconds.
    pub const SUSPECT_MS: &str = "NCS_SUSPECT_MS";
    /// Death threshold in milliseconds.
    pub const DEAD_MS: &str = "NCS_DEAD_MS";
}

impl MembershipConfig {
    /// The defaults overridden by the `NCS_HEARTBEAT_MS` /
    /// `NCS_SUSPECT_MS` / `NCS_DEAD_MS` environment (unparseable values
    /// fall back silently — tuning must never stop a world from forming).
    pub fn from_env() -> Self {
        fn ms(name: &str, default: Duration) -> Duration {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map_or(default, Duration::from_millis)
        }
        let d = MembershipConfig::default();
        MembershipConfig {
            heartbeat_interval: ms(env::HEARTBEAT_MS, d.heartbeat_interval),
            suspect_after: ms(env::SUSPECT_MS, d.suspect_after),
            dead_after: ms(env::DEAD_MS, d.dead_after),
        }
    }

    /// An aggressive profile for tests and benches (25 ms pulses, death
    /// at 80 ms).
    pub fn fast() -> Self {
        MembershipConfig {
            heartbeat_interval: Duration::from_millis(25),
            suspect_after: Duration::from_millis(55),
            dead_after: Duration::from_millis(80),
        }
    }

    /// Checks the thresholds are ordered sensibly.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] when an interval is zero or the
    /// thresholds are not `heartbeat < suspect < dead`.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.heartbeat_interval.is_zero() {
            return Err(ClusterError::Config(
                "heartbeat interval must be positive".into(),
            ));
        }
        if self.suspect_after <= self.heartbeat_interval || self.dead_after <= self.suspect_after {
            return Err(ClusterError::Config(format!(
                "membership thresholds must order heartbeat < suspect < dead (got {:?} / {:?} / {:?})",
                self.heartbeat_interval, self.suspect_after, self.dead_after
            )));
        }
        Ok(())
    }
}

/// One member of a view: who occupies a rank slot and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// The rank slot.
    pub rank: u32,
    /// The occupant's SCI listener address, as `ip:port`.
    pub addr: String,
    /// The occupant's incarnation (0 at first launch; each replacement
    /// bumps it).
    pub incarnation: u32,
}

/// An epoch-numbered group view: the member list plus what changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotonic epoch; subscribers apply views in `id` order.
    pub id: u64,
    /// The world's slot count (fixed for the world's lifetime).
    pub world: u32,
    /// Current members, sorted by rank. May be fewer than `world` while
    /// slots are vacant (dead, not yet replaced).
    pub members: Vec<Member>,
    /// Ranks that joined (or rejoined) in this epoch.
    pub joined: Vec<u32>,
    /// Ranks that left gracefully in this epoch.
    pub left: Vec<u32>,
    /// Ranks declared dead in this epoch.
    pub dead: Vec<u32>,
}

impl View {
    /// The member occupying `rank`, if any.
    pub fn member(&self, rank: u32) -> Option<&Member> {
        self.members.iter().find(|m| m.rank == rank)
    }

    /// The listener address of `rank`, parsed.
    pub fn addr_of(&self, rank: u32) -> Option<SocketAddr> {
        self.member(rank).and_then(|m| m.addr.parse().ok())
    }

    /// Whether every slot of the world is occupied.
    pub fn is_full(&self) -> bool {
        self.members.len() == self.world as usize
    }
}

/// A tracked member's failure-detector state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Pulsing within [`MembershipConfig::suspect_after`].
    Alive,
    /// Silent past the suspicion threshold; revivable by a late pulse.
    Suspect,
    /// Silent past the death threshold; the slot needs a rejoin.
    Dead,
}

#[derive(Debug)]
struct Tracked {
    last_pulse: Duration,
    health: Health,
}

/// The membership state machine: member list, failure detector, view
/// production. Pure — no I/O, no threads; time comes from the injected
/// [`Clock`] (real inside `ncsd`, virtual inside simulations), which is
/// what makes SIM membership runs deterministic.
#[derive(Debug)]
pub struct MembershipTable {
    cfg: MembershipConfig,
    clock: Arc<dyn Clock>,
    world: u32,
    view: View,
    /// Failure-detector state per *tracked* rank. A member is tracked
    /// from its first subscribe/heartbeat — bootstrap-only worlds that
    /// never pulse are never declared dead.
    tracked: HashMap<u32, Tracked>,
    suspect_events: u64,
}

impl MembershipTable {
    /// An empty table for a world of `world` slots.
    pub fn new(world: u32, cfg: MembershipConfig, clock: Arc<dyn Clock>) -> Self {
        MembershipTable {
            cfg,
            clock,
            world,
            view: View {
                id: 0,
                world,
                members: Vec::new(),
                joined: Vec::new(),
                left: Vec::new(),
                dead: Vec::new(),
            },
            tracked: HashMap::new(),
            suspect_events: 0,
        }
    }

    /// Installs the bootstrap roster as epoch 1 (every rank a joiner,
    /// incarnation 0). Members are not yet tracked — the detector arms
    /// per rank on its first [`MembershipTable::track`] or heartbeat.
    pub fn seed(&mut self, members: &[(u32, String)]) -> &View {
        let mut ms: Vec<Member> = members
            .iter()
            .map(|(rank, addr)| Member {
                rank: *rank,
                addr: addr.clone(),
                incarnation: 0,
            })
            .collect();
        ms.sort_by_key(|m| m.rank);
        self.view = View {
            id: 1,
            world: self.world,
            joined: ms.iter().map(|m| m.rank).collect(),
            left: Vec::new(),
            dead: Vec::new(),
            members: ms,
        };
        &self.view
    }

    /// The current view.
    pub fn current(&self) -> &View {
        &self.view
    }

    /// Ranks currently under suspicion.
    pub fn suspects(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self
            .tracked
            .iter()
            .filter(|(_, t)| t.health == Health::Suspect)
            .map(|(&r, _)| r)
            .collect();
        s.sort_unstable();
        s
    }

    /// Total alive→suspect transitions so far.
    pub fn suspect_events(&self) -> u64 {
        self.suspect_events
    }

    /// A member's detector state (`None` when untracked).
    pub fn health(&self, rank: u32) -> Option<Health> {
        self.tracked.get(&rank).map(|t| t.health)
    }

    /// Arms the failure detector for `rank` (idempotent; called when the
    /// rank subscribes). The deadline clock starts now.
    pub fn track(&mut self, rank: u32) {
        let now = self.clock.now();
        self.tracked
            .entry(rank)
            .and_modify(|t| {
                if t.health != Health::Dead {
                    t.last_pulse = now;
                }
            })
            .or_insert(Tracked {
                last_pulse: now,
                health: Health::Alive,
            });
    }

    /// Records a pulse from `rank`. A suspect revives; a dead member's
    /// pulse is ignored (its slot must be re-adopted via
    /// [`MembershipTable::join`]).
    pub fn heartbeat(&mut self, rank: u32) -> Health {
        let now = self.clock.now();
        match self.tracked.get_mut(&rank) {
            Some(t) if t.health == Health::Dead => Health::Dead,
            Some(t) => {
                t.last_pulse = now;
                t.health = Health::Alive;
                Health::Alive
            }
            None => {
                // First pulse arms the detector too.
                if self.view.member(rank).is_some() {
                    self.tracked.insert(
                        rank,
                        Tracked {
                            last_pulse: now,
                            health: Health::Alive,
                        },
                    );
                    Health::Alive
                } else {
                    Health::Dead
                }
            }
        }
    }

    /// Adopts (or re-adopts) slot `rank` for the occupant at `addr` with
    /// `incarnation`. Produces the join view, or `None` when nothing
    /// changed (the same occupant is already a live member).
    pub fn join(&mut self, rank: u32, addr: &str, incarnation: u32) -> Option<View> {
        if rank >= self.world {
            return None;
        }
        let unchanged = self
            .view
            .member(rank)
            .is_some_and(|m| m.addr == addr && m.incarnation == incarnation)
            && self
                .tracked
                .get(&rank)
                .is_none_or(|t| t.health != Health::Dead);
        if unchanged {
            return None;
        }
        self.view.members.retain(|m| m.rank != rank);
        self.view.members.push(Member {
            rank,
            addr: addr.to_owned(),
            incarnation,
        });
        self.view.members.sort_by_key(|m| m.rank);
        self.tracked.insert(
            rank,
            Tracked {
                last_pulse: self.clock.now(),
                health: Health::Alive,
            },
        );
        self.bump(vec![rank], Vec::new(), Vec::new());
        Some(self.view.clone())
    }

    /// Removes `rank` gracefully. Produces the leave view, or `None`
    /// when it was not a member.
    pub fn leave(&mut self, rank: u32) -> Option<View> {
        self.view.member(rank)?;
        self.view.members.retain(|m| m.rank != rank);
        self.tracked.remove(&rank);
        self.bump(Vec::new(), vec![rank], Vec::new());
        Some(self.view.clone())
    }

    /// Sweeps the failure detector: transitions silent members to
    /// suspect, declares over-silent suspects dead. Produces the death
    /// view when anyone died in this sweep.
    pub fn tick(&mut self) -> Option<View> {
        let now = self.clock.now();
        let mut died: Vec<u32> = Vec::new();
        for (&rank, t) in &mut self.tracked {
            if t.health == Health::Dead {
                continue;
            }
            let silence = now.saturating_sub(t.last_pulse);
            if silence >= self.cfg.dead_after {
                t.health = Health::Dead;
                died.push(rank);
            } else if silence >= self.cfg.suspect_after {
                if t.health == Health::Alive {
                    t.health = Health::Suspect;
                    self.suspect_events += 1;
                }
            } else {
                t.health = Health::Alive;
            }
        }
        if died.is_empty() {
            return None;
        }
        died.sort_unstable();
        self.view.members.retain(|m| !died.contains(&m.rank));
        self.bump(Vec::new(), Vec::new(), died);
        Some(self.view.clone())
    }

    fn bump(&mut self, joined: Vec<u32>, left: Vec<u32>, dead: Vec<u32>) {
        self.view.id += 1;
        self.view.joined = joined;
        self.view.left = left;
        self.view.dead = dead;
    }
}

/// A view subscriber callback. Runs on whatever thread drives the hub —
/// keep it quick and non-blocking.
pub type ViewSink = Arc<dyn Fn(&View) + Send + Sync>;

/// A [`MembershipTable`] plus in-process subscribers: the membership
/// service for worlds that share an address space (SIM backends, tests).
/// `ncsd` uses the table directly and pushes views over SCI instead.
pub struct MembershipHub {
    table: parking_lot::Mutex<MembershipTable>,
    subs: parking_lot::Mutex<Vec<ViewSink>>,
}

impl std::fmt::Debug for MembershipHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MembershipHub")
            .field("view", self.table.lock().current())
            .finish()
    }
}

impl MembershipHub {
    /// A hub for a world of `world` slots on `clock`.
    pub fn new(world: u32, cfg: MembershipConfig, clock: Arc<dyn Clock>) -> Self {
        MembershipHub {
            table: parking_lot::Mutex::new(MembershipTable::new(world, cfg, clock)),
            subs: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Seeds the bootstrap roster (see [`MembershipTable::seed`]) and
    /// publishes the seed view.
    pub fn seed(&self, members: &[(u32, String)]) {
        let view = self.table.lock().seed(members).clone();
        self.publish(&view);
    }

    /// Registers `sink` and immediately hands it the current view.
    pub fn subscribe(&self, sink: ViewSink) {
        let view = self.table.lock().current().clone();
        sink(&view);
        self.subs.lock().push(sink);
    }

    /// The current view.
    pub fn current(&self) -> View {
        self.table.lock().current().clone()
    }

    /// Records a pulse (see [`MembershipTable::heartbeat`]).
    pub fn heartbeat(&self, rank: u32) -> Health {
        self.table.lock().heartbeat(rank)
    }

    /// Adopts a slot and publishes the join view if membership changed.
    pub fn join(&self, rank: u32, addr: &str, incarnation: u32) -> Option<View> {
        let view = self.table.lock().join(rank, addr, incarnation);
        if let Some(v) = &view {
            self.publish(v);
        }
        view
    }

    /// Graceful leave; publishes on change.
    pub fn leave(&self, rank: u32) -> Option<View> {
        let view = self.table.lock().leave(rank);
        if let Some(v) = &view {
            self.publish(v);
        }
        view
    }

    /// Failure-detector sweep; publishes the death view when anyone died.
    pub fn tick(&self) -> Option<View> {
        let view = self.table.lock().tick();
        if let Some(v) = &view {
            self.publish(v);
        }
        view
    }

    fn publish(&self, view: &View) {
        for sink in self.subs.lock().iter() {
            sink(view);
        }
    }
}

/// The membership observability contract, registered per node so every
/// rank's telemetry dump carries its membership history.
#[derive(Debug, Clone)]
pub struct MembershipMetrics {
    /// `ncs_membership_view_epoch`: the latest view epoch applied.
    pub view_epoch: Gauge,
    /// `ncs_membership_heartbeat_rtt_us`: heartbeat round-trip times.
    pub heartbeat_rtt: Histogram,
    /// `ncs_membership_suspect_peers`: members currently suspected (as
    /// reported by the latest heartbeat ack).
    pub suspect_peers: Gauge,
    /// `ncs_membership_suspect_total`: suspicion onsets observed.
    pub suspect_total: Counter,
    /// `ncs_membership_dead_total`: members seen declared dead.
    pub dead_total: Counter,
}

impl MembershipMetrics {
    /// Registers the membership family on `registry`.
    pub fn register(registry: &Registry) -> Self {
        MembershipMetrics {
            view_epoch: registry.gauge(
                "ncs_membership_view_epoch",
                "latest membership view epoch applied by this rank",
                &[],
            ),
            heartbeat_rtt: registry.histogram(
                "ncs_membership_heartbeat_rtt_us",
                "membership heartbeat round-trip time (microseconds)",
                &[],
            ),
            suspect_peers: registry.gauge(
                "ncs_membership_suspect_peers",
                "members currently suspected by the failure detector",
                &[],
            ),
            suspect_total: registry.counter(
                "ncs_membership_suspect_total",
                "suspicion onsets reported by heartbeat acks",
                &[],
            ),
            dead_total: registry.counter(
                "ncs_membership_dead_total",
                "members this rank has seen declared dead",
                &[],
            ),
        }
    }

    /// Unregistered handles (benches, tests without a node).
    pub fn detached() -> Self {
        MembershipMetrics {
            view_epoch: Gauge::new(),
            heartbeat_rtt: Histogram::new(),
            suspect_peers: Gauge::new(),
            suspect_total: Counter::new(),
            dead_total: Counter::new(),
        }
    }

    /// Applies a received view to the gauges/counters.
    pub fn observe_view(&self, view: &View) {
        self.view_epoch.set(view.id as i64);
        self.dead_total.add(view.dead.len() as u64);
    }
}

/// How long a [`MemberAgent`] spends (re)dialling the service before
/// backing off for one heartbeat interval.
const AGENT_DIAL_BUDGET: Duration = Duration::from_secs(5);

/// One rank's membership client: a background OS thread that opens the
/// long-lived channel ([`RvMsg::Subscribe`]), pulses heartbeats every
/// [`MembershipConfig::heartbeat_interval`], feeds acks into the RTT
/// histogram, and delivers every received [`View`] — in epoch order — to
/// the rank's sink. Reconnects (and re-subscribes) if the channel drops.
pub struct MemberAgent {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MemberAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemberAgent")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl MemberAgent {
    /// Starts the agent for `rank` (at `incarnation`) against the
    /// membership service at `ncsd`. Views arrive on `sink`, oldest
    /// first; metrics land in `metrics`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Transport`] when the initial dial fails outright.
    pub fn start(
        ncsd: SocketAddr,
        rank: u32,
        incarnation: u32,
        cfg: MembershipConfig,
        metrics: MembershipMetrics,
        sink: ViewSink,
    ) -> Result<MemberAgent, ClusterError> {
        cfg.validate()?;
        let conn = sci::connect_retry(ncsd, AGENT_DIAL_BUDGET)?;
        conn.send(&RvMsg::Subscribe { rank, incarnation }.encode())?;
        let stop = Arc::new(AtomicBool::new(false));
        let st = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("ncs-member-{rank}"))
            .spawn(move || {
                agent_loop(conn, ncsd, rank, incarnation, &cfg, &metrics, &sink, &st);
            })
            .expect("spawn member agent");
        Ok(MemberAgent {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the agent (joins its thread). Idempotent; called by `Drop`.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MemberAgent {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn agent_loop(
    mut conn: sci::SciConnection,
    ncsd: SocketAddr,
    rank: u32,
    incarnation: u32,
    cfg: &MembershipConfig,
    metrics: &MembershipMetrics,
    sink: &ViewSink,
    stop: &AtomicBool,
) {
    let epoch = Instant::now();
    let mut seq: u64 = 0;
    let mut last_view: u64 = 0;
    let mut prev_suspects: u32 = 0;
    'session: loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        seq += 1;
        let pulse = RvMsg::Heartbeat {
            rank,
            seq,
            nanos: epoch.elapsed().as_nanos() as u64,
        };
        if conn.send(&pulse.encode()).is_err() {
            if reconnect(&mut conn, ncsd, rank, incarnation, cfg, stop) {
                continue 'session;
            }
            return;
        }
        // Drain acks and views until the next pulse is due.
        let next_pulse = Instant::now() + cfg.heartbeat_interval;
        loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            let Some(left) = next_pulse.checked_duration_since(Instant::now()) else {
                break;
            };
            match conn.recv_timeout(left) {
                Ok(frame) => {
                    let Ok(msg) = RvMsg::decode(&frame) else {
                        continue;
                    };
                    match msg {
                        RvMsg::HeartbeatAck {
                            nanos, suspects, ..
                        } => {
                            let rtt = epoch.elapsed().as_nanos() as u64 - nanos;
                            metrics.heartbeat_rtt.record(rtt / 1_000);
                            metrics.suspect_peers.set(i64::from(suspects));
                            if suspects > prev_suspects {
                                metrics
                                    .suspect_total
                                    .add(u64::from(suspects - prev_suspects));
                            }
                            prev_suspects = suspects;
                        }
                        RvMsg::View { view } if view.id > last_view => {
                            last_view = view.id;
                            metrics.observe_view(&view);
                            sink(&view);
                        }
                        _ => {}
                    }
                }
                Err(TransportError::Timeout) => break,
                Err(_) => {
                    if reconnect(&mut conn, ncsd, rank, incarnation, cfg, stop) {
                        continue 'session;
                    }
                    return;
                }
            }
        }
    }
}

/// Re-dials and re-subscribes after a dropped channel. Returns whether a
/// fresh session is up (false when stopping or the service is gone).
fn reconnect(
    conn: &mut sci::SciConnection,
    ncsd: SocketAddr,
    rank: u32,
    incarnation: u32,
    cfg: &MembershipConfig,
    stop: &AtomicBool,
) -> bool {
    if stop.load(Ordering::Acquire) {
        return false;
    }
    std::thread::sleep(cfg.heartbeat_interval);
    if stop.load(Ordering::Acquire) {
        return false;
    }
    let Ok(fresh) = sci::connect_retry(ncsd, AGENT_DIAL_BUDGET) else {
        return false;
    };
    if fresh
        .send(&RvMsg::Subscribe { rank, incarnation }.encode())
        .is_err()
    {
        return false;
    }
    *conn = fresh;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_core::VirtualClock;

    fn table(world: u32) -> (MembershipTable, Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        let t = MembershipTable::new(
            world,
            MembershipConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (t, clock)
    }

    fn seeded(world: u32) -> (MembershipTable, Arc<VirtualClock>) {
        let (mut t, c) = table(world);
        let members: Vec<(u32, String)> = (0..world)
            .map(|r| (r, format!("127.0.0.1:{}", 100 + r)))
            .collect();
        t.seed(&members);
        (t, c)
    }

    #[test]
    fn seed_produces_epoch_one_with_everyone_joined() {
        let (t, _) = seeded(4);
        let v = t.current();
        assert_eq!(v.id, 1);
        assert!(v.is_full());
        assert_eq!(v.joined, vec![0, 1, 2, 3]);
        assert_eq!(v.addr_of(2), Some("127.0.0.1:102".parse().unwrap()));
    }

    #[test]
    fn silence_progresses_alive_suspect_dead() {
        let (mut t, clock) = seeded(3);
        for r in 0..3 {
            t.track(r);
        }
        assert!(t.tick().is_none());
        // Ranks 0 and 1 keep pulsing; rank 2 goes silent.
        clock.advance(Duration::from_millis(300));
        t.heartbeat(0);
        t.heartbeat(1);
        clock.advance(Duration::from_millis(100));
        assert!(t.tick().is_none(), "suspicion must not bump the view");
        assert_eq!(t.health(2), Some(Health::Suspect));
        assert_eq!(t.suspects(), vec![2]);
        assert_eq!(t.suspect_events(), 1);
        clock.advance(Duration::from_millis(100));
        let v = t.tick().expect("death view");
        assert_eq!(v.id, 2);
        assert_eq!(v.dead, vec![2]);
        assert!(v.member(2).is_none());
        assert_eq!(t.health(2), Some(Health::Dead));
        // A dead member's late pulse is ignored.
        assert_eq!(t.heartbeat(2), Health::Dead);
        assert!(t.tick().is_none());
    }

    #[test]
    fn suspect_revives_on_late_pulse() {
        let (mut t, clock) = seeded(2);
        t.track(0);
        t.track(1);
        clock.advance(Duration::from_millis(400));
        t.heartbeat(0);
        assert!(t.tick().is_none());
        assert_eq!(t.health(1), Some(Health::Suspect));
        t.heartbeat(1);
        assert_eq!(t.health(1), Some(Health::Alive));
        assert!(t.suspects().is_empty());
    }

    #[test]
    fn rejoin_restores_the_slot_with_a_new_incarnation() {
        let (mut t, clock) = seeded(3);
        for r in 0..3 {
            t.track(r);
        }
        clock.advance(Duration::from_millis(500));
        t.heartbeat(0);
        t.heartbeat(1);
        let dead = t.tick().expect("death view");
        assert_eq!(dead.dead, vec![2]);
        // Same occupant re-offering itself is a change (it was dead).
        let joined = t.join(2, "127.0.0.1:999", 1).expect("join view");
        assert_eq!(joined.id, dead.id + 1);
        assert_eq!(joined.joined, vec![2]);
        assert!(joined.is_full());
        assert_eq!(joined.member(2).unwrap().incarnation, 1);
        assert_eq!(t.health(2), Some(Health::Alive));
        // Re-joining identically is a no-op.
        assert!(t.join(2, "127.0.0.1:999", 1).is_none());
        // Out-of-range slots are refused.
        assert!(t.join(7, "127.0.0.1:1", 0).is_none());
    }

    #[test]
    fn leave_removes_and_join_readds() {
        let (mut t, _) = seeded(2);
        let v = t.leave(1).expect("leave view");
        assert_eq!(v.left, vec![1]);
        assert_eq!(v.members.len(), 1);
        assert!(t.leave(1).is_none());
        let v = t.join(1, "127.0.0.1:200", 3).expect("join view");
        assert!(v.is_full());
    }

    #[test]
    fn hub_delivers_views_in_order_to_every_subscriber() {
        let clock = VirtualClock::shared();
        let hub = MembershipHub::new(
            2,
            MembershipConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        hub.seed(&[(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())]);
        let seen: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        hub.subscribe(Arc::new(move |v| s.lock().push(v.id)));
        hub.leave(1);
        hub.join(1, "127.0.0.1:3", 1);
        assert_eq!(*seen.lock(), vec![1, 2, 3]);
        // A late subscriber starts from the current epoch.
        let late: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l = Arc::clone(&late);
        hub.subscribe(Arc::new(move |v| l.lock().push(v.id)));
        assert_eq!(*late.lock(), vec![3]);
    }

    #[test]
    fn config_validation_and_env_defaults() {
        assert!(MembershipConfig::default().validate().is_ok());
        assert!(MembershipConfig::fast().validate().is_ok());
        let bad = MembershipConfig {
            heartbeat_interval: Duration::from_millis(100),
            suspect_after: Duration::from_millis(50),
            dead_after: Duration::from_millis(60),
        };
        assert!(bad.validate().is_err());
    }
}
