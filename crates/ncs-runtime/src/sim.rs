//! The simulation backend: thousand-rank NCS worlds under deterministic
//! virtual time.
//!
//! The paper evaluated NCS on a handful of real SPARCstations; ROADMAP
//! item 3 asks for the opposite extreme — thousands of ranks, adversarial
//! networks, reproducible failures. This module provides both halves:
//!
//! * [`SimWorld`] — a pure discrete-event engine. Ranks are message-level
//!   state machines (binomial-tree broadcast/reduce, dissemination
//!   barrier) exchanging messages through a central virtual-time
//!   `TimeQueue`; per-direction link policies (latency, jitter, loss —
//!   [`LinkPolicy`], shared with the SIM transport) decide each
//!   message's fate with seeded draws, and lost messages retransmit on an
//!   RTO clock exactly as NCS error control would. Runs 1,000–10,000
//!   ranks in milliseconds of wall time and is **bit-deterministic**:
//!   the same [`Scenario`] (same seed) produces a byte-identical event
//!   trace and equal telemetry counters, every run.
//! * [`SimSession`] — the third [`Session`] implementation next to
//!   [`crate::ClusterNode`] and [`crate::LocalWorld`]: real [`NcsNode`]s,
//!   real control/data-plane threads, meshed over the SIM interface
//!   ([`ncs_transport::sim::SimNet`]) with every node's deadlines on one
//!   shared [`VirtualClock`]. A pump thread advances fabric and clock in
//!   lockstep, fast-forwarding across quiet gaps. Use it to put the *real*
//!   protocol stack under simulated network conditions at small scale;
//!   use [`SimWorld`] for four-digit rank counts.
//!
//! Chaos — partitions, flapping peers, lossy or slow links, rank kill —
//! is scripted on the virtual-time axis via [`ChaosEvent`]s, either built
//! in code or parsed from the scenario script format described in
//! `docs/SIMULATION.md`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atm_sim::SimTime;
use ncs_core::link::SimLinkPair;
use ncs_core::{Clock, NcsConnection, NcsNode, VirtualClock};
use ncs_obs::Registry;
use ncs_transport::sim::{LinkPolicy, SimNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::rank_name;
use crate::session::{Session, SessionError};
use ncs_collectives::CollectiveGroup;
use ncs_core::ConnectionConfig;

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// A chaos action applied to the world at one point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosKind {
    /// Black-hole the directed link `from → to`.
    CutLink {
        /// Sending rank.
        from: u32,
        /// Receiving rank.
        to: u32,
    },
    /// Restore the directed link `from → to`.
    HealLink {
        /// Sending rank.
        from: u32,
        /// Receiving rank.
        to: u32,
    },
    /// Set the loss probability of the directed link `from → to`.
    SetLoss {
        /// Sending rank.
        from: u32,
        /// Receiving rank.
        to: u32,
        /// New frame-loss probability.
        loss: f64,
    },
    /// Set the latency of the directed link `from → to` (slow link).
    SlowLink {
        /// Sending rank.
        from: u32,
        /// Receiving rank.
        to: u32,
        /// New propagation latency.
        latency: Duration,
    },
    /// Black-hole every link touching `rank` (both directions) — the
    /// flapping-peer primitive when paired with [`ChaosKind::ReconnectRank`].
    IsolateRank {
        /// The rank to isolate.
        rank: u32,
    },
    /// Undo [`ChaosKind::IsolateRank`].
    ReconnectRank {
        /// The rank to reconnect.
        rank: u32,
    },
    /// Stop `rank` processing messages (process death).
    KillRank {
        /// The rank to kill.
        rank: u32,
    },
    /// Revive `rank` for ops started after this point.
    ReviveRank {
        /// The rank to revive.
        rank: u32,
    },
}

/// One scheduled chaos action.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// Virtual time at which the action fires.
    pub at: Duration,
    /// The action.
    pub kind: ChaosKind,
}

/// One step of a scenario's program. Ops run sequentially, SPMD-style:
/// every alive rank participates in op *k* before op *k + 1* starts.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// Binomial-tree broadcast from `root`, failing ranks that miss
    /// `timeout` (virtual time).
    Broadcast {
        /// Root rank.
        root: u32,
        /// Per-op virtual-time deadline.
        timeout: Duration,
    },
    /// Binomial-tree reduce (sum of rank ids) to `root`.
    Reduce {
        /// Root rank.
        root: u32,
        /// Per-op virtual-time deadline.
        timeout: Duration,
    },
    /// Reduce to rank 0 then broadcast of the result.
    Allreduce {
        /// Per-op virtual-time deadline.
        timeout: Duration,
    },
    /// Dissemination barrier (⌈log₂ n⌉ rounds).
    Barrier {
        /// Per-op virtual-time deadline.
        timeout: Duration,
    },
    /// Let virtual time pass (chaos events due in the window fire).
    Advance {
        /// How much virtual time passes.
        by: Duration,
    },
}

/// A complete simulation script: world shape, link policies, chaos
/// schedule and op program. Build one in code or parse the script format
/// of `docs/SIMULATION.md` with [`Scenario::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (labels traces, CI artifacts, perf sections).
    pub name: String,
    /// Master seed: every random draw in the run derives from it.
    pub seed: u64,
    /// World size.
    pub ranks: u32,
    /// Default policy for directed links `from < to`.
    pub policy: LinkPolicy,
    /// Default policy for directed links `from > to` (asymmetric worlds);
    /// `None` mirrors [`Scenario::policy`].
    pub policy_back: Option<LinkPolicy>,
    /// Retransmission timeout for lost messages; `None` derives
    /// `max(4 × latency, 1 ms)`.
    pub rto: Option<Duration>,
    /// Chaos schedule (virtual-time ordered; order of equal times is
    /// preserved).
    pub events: Vec<ChaosEvent>,
    /// The op program.
    pub ops: Vec<SimOp>,
    /// Indices into [`Scenario::ops`] that are *expected* to fail fast
    /// (deadline-bounded failure is the scenario's point — e.g. the
    /// degraded collective of `kill-heal`). [`SimReport::passed`] demands
    /// these ops fail and every other op complete.
    pub expect_failed: Vec<usize>,
}

/// Default per-op deadline used by the preset scenarios.
pub const PRESET_OP_TIMEOUT: Duration = Duration::from_secs(30);

impl Scenario {
    /// A bare scenario: `ranks` ranks on clean LAN links, empty program.
    pub fn new(name: &str, ranks: u32, seed: u64) -> Self {
        Scenario {
            name: name.to_owned(),
            seed,
            ranks,
            policy: LinkPolicy::lan(),
            policy_back: None,
            rto: None,
            events: Vec::new(),
            ops: Vec::new(),
            expect_failed: Vec::new(),
        }
    }

    /// Preset: clean 1,000-rank-class world running allreduce + barrier.
    pub fn clean_allreduce(ranks: u32, seed: u64) -> Self {
        let mut s = Scenario::new("clean-allreduce", ranks, seed);
        s.ops = vec![
            SimOp::Allreduce {
                timeout: PRESET_OP_TIMEOUT,
            },
            SimOp::Barrier {
                timeout: PRESET_OP_TIMEOUT,
            },
        ];
        s
    }

    /// Preset: both directions between ranks 1 and 2 are cut early in the
    /// op and heal mid-flight; retransmission carries the collective
    /// across the partition.
    pub fn partition_heal(ranks: u32, seed: u64) -> Self {
        let mut s = Scenario::new("partition-heal", ranks, seed);
        let (a, b) = (1, 2 % ranks);
        s.events = vec![
            ChaosEvent {
                at: Duration::from_micros(500),
                kind: ChaosKind::CutLink { from: a, to: b },
            },
            ChaosEvent {
                at: Duration::from_micros(500),
                kind: ChaosKind::CutLink { from: b, to: a },
            },
            ChaosEvent {
                at: Duration::from_millis(100),
                kind: ChaosKind::HealLink { from: a, to: b },
            },
            ChaosEvent {
                at: Duration::from_millis(100),
                kind: ChaosKind::HealLink { from: b, to: a },
            },
        ];
        s.ops = vec![
            SimOp::Advance {
                by: Duration::from_millis(1),
            },
            SimOp::Allreduce {
                timeout: PRESET_OP_TIMEOUT,
            },
            SimOp::Barrier {
                timeout: PRESET_OP_TIMEOUT,
            },
        ];
        s
    }

    /// Preset: 10 % loss on every `from < to` direction, clean reverse —
    /// the asymmetric-loss torture of MPWide's WAN experiments.
    pub fn asymmetric_loss(ranks: u32, seed: u64) -> Self {
        let mut s = Scenario::new("asymmetric-loss", ranks, seed);
        s.policy = LinkPolicy::lan().with_loss(0.10);
        s.policy_back = Some(LinkPolicy::lan());
        s.ops = vec![
            SimOp::Allreduce {
                timeout: PRESET_OP_TIMEOUT,
            },
            SimOp::Barrier {
                timeout: PRESET_OP_TIMEOUT,
            },
        ];
        s
    }

    /// Preset: rank 1 flaps — isolated for 250 µs every 500 µs, a cadence
    /// chosen to overlap the microsecond-scale LAN collectives. A
    /// trailing [`SimOp::Advance`] drains flap cycles the collectives
    /// outran, so every scheduled chaos event applies.
    pub fn flapping_peer(ranks: u32, seed: u64) -> Self {
        let mut s = Scenario::new("flapping-peer", ranks, seed);
        s.rto = Some(Duration::from_micros(200));
        for cycle in 0..5u64 {
            let base = Duration::from_micros(50 + 500 * cycle);
            s.events.push(ChaosEvent {
                at: base,
                kind: ChaosKind::IsolateRank { rank: 1 % ranks },
            });
            s.events.push(ChaosEvent {
                at: base + Duration::from_micros(250),
                kind: ChaosKind::ReconnectRank { rank: 1 % ranks },
            });
        }
        s.ops = vec![
            SimOp::Allreduce {
                timeout: PRESET_OP_TIMEOUT,
            },
            SimOp::Barrier {
                timeout: PRESET_OP_TIMEOUT,
            },
            SimOp::Advance {
                by: Duration::from_millis(5),
            },
        ];
        s
    }

    /// Preset: the SimWorld half of the elastic-membership story, for
    /// worlds of three ranks or more. Rank 2 is killed just before the
    /// first allreduce, which must *fail fast* at its tight deadline
    /// rather than hang (the op is listed in
    /// [`Scenario::expect_failed`]); the rank then revives — the
    /// respawned replacement — and the next allreduce and barrier
    /// complete over the healed world.
    pub fn kill_heal(ranks: u32, seed: u64) -> Self {
        let mut s = Scenario::new("kill-heal", ranks, seed);
        let victim = 2 % ranks;
        s.events = vec![
            ChaosEvent {
                at: Duration::from_micros(1),
                kind: ChaosKind::KillRank { rank: victim },
            },
            ChaosEvent {
                at: Duration::from_millis(15),
                kind: ChaosKind::ReviveRank { rank: victim },
            },
        ];
        s.ops = vec![
            SimOp::Advance {
                by: Duration::from_millis(1),
            },
            SimOp::Allreduce {
                timeout: Duration::from_millis(10),
            },
            SimOp::Advance {
                by: Duration::from_millis(10),
            },
            SimOp::Allreduce {
                timeout: PRESET_OP_TIMEOUT,
            },
            SimOp::Barrier {
                timeout: PRESET_OP_TIMEOUT,
            },
        ];
        s.expect_failed = vec![1];
        s
    }

    /// The scenario registered under `name` (the CI matrix entries):
    /// `clean-allreduce`, `partition-heal`, `asymmetric-loss`,
    /// `flapping-peer`, `kill-heal`.
    pub fn preset(name: &str, ranks: u32, seed: u64) -> Option<Self> {
        match name {
            "clean-allreduce" => Some(Self::clean_allreduce(ranks, seed)),
            "partition-heal" => Some(Self::partition_heal(ranks, seed)),
            "asymmetric-loss" => Some(Self::asymmetric_loss(ranks, seed)),
            "flapping-peer" => Some(Self::flapping_peer(ranks, seed)),
            "kill-heal" => Some(Self::kill_heal(ranks, seed)),
            _ => None,
        }
    }

    /// The effective retransmission timeout.
    pub fn effective_rto(&self) -> Duration {
        self.rto
            .unwrap_or_else(|| (self.policy.latency * 4).max(Duration::from_millis(1)))
    }

    /// Parses the scenario script format (see `docs/SIMULATION.md`):
    /// one directive per line, `#` comments.
    ///
    /// ```text
    /// scenario partition-heal
    /// ranks 64
    /// seed 42
    /// policy latency=50us jitter=5us loss=0
    /// at 500us cut 1 2
    /// at 100ms heal 1 2
    /// op advance 1ms
    /// op allreduce 30s
    /// op barrier 30s
    /// ```
    ///
    /// A deadline op may carry a trailing `expect-fail` token: the
    /// scenario then *requires* that op to miss its deadline (the
    /// fail-fast contract of kill scenarios) — see
    /// [`Scenario::expect_failed`].
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending line.
    pub fn parse(script: &str) -> Result<Scenario, String> {
        let mut s = Scenario::new("unnamed", 0, 0);
        for (ln, raw) in script.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: `{raw}`", ln + 1);
            let mut words = line.split_whitespace();
            match words.next().unwrap() {
                "scenario" => {
                    s.name = words.next().ok_or_else(|| err("missing name"))?.to_owned();
                }
                "seed" => {
                    s.seed = parse_u64(words.next().ok_or_else(|| err("missing seed"))?)
                        .ok_or_else(|| err("bad seed"))?;
                }
                "ranks" => {
                    s.ranks = parse_u64(words.next().ok_or_else(|| err("missing ranks"))?)
                        .ok_or_else(|| err("bad ranks"))? as u32;
                }
                "rto" => {
                    s.rto = Some(
                        parse_duration(words.next().ok_or_else(|| err("missing rto"))?)
                            .ok_or_else(|| err("bad rto"))?,
                    );
                }
                dir @ ("policy" | "policy-back") => {
                    let mut p = LinkPolicy::lan();
                    for kv in words {
                        let (k, v) = kv.split_once('=').ok_or_else(|| err("want key=value"))?;
                        match k {
                            "latency" => {
                                p.latency = parse_duration(v).ok_or_else(|| err("bad latency"))?;
                            }
                            "jitter" => {
                                p.jitter = parse_duration(v).ok_or_else(|| err("bad jitter"))?;
                            }
                            "loss" => {
                                p.loss = v.parse().map_err(|_| err("bad loss"))?;
                            }
                            "reorder" => {
                                p.reorder = v.parse().map_err(|_| err("bad reorder"))?;
                            }
                            "bandwidth" => {
                                p.bandwidth_bps =
                                    parse_u64(v).ok_or_else(|| err("bad bandwidth"))?;
                            }
                            _ => return Err(err("unknown policy key")),
                        }
                    }
                    if dir == "policy" {
                        s.policy = p;
                    } else {
                        s.policy_back = Some(p);
                    }
                }
                "at" => {
                    let at = parse_duration(words.next().ok_or_else(|| err("missing time"))?)
                        .ok_or_else(|| err("bad time"))?;
                    let verb = words.next().ok_or_else(|| err("missing action"))?;
                    let mut rank_arg = || -> Result<u32, String> {
                        parse_u64(words.next().ok_or_else(|| err("missing rank"))?)
                            .map(|v| v as u32)
                            .ok_or_else(|| err("bad rank"))
                    };
                    let kind = match verb {
                        "cut" => ChaosKind::CutLink {
                            from: rank_arg()?,
                            to: rank_arg()?,
                        },
                        "heal" => ChaosKind::HealLink {
                            from: rank_arg()?,
                            to: rank_arg()?,
                        },
                        "isolate" => ChaosKind::IsolateRank { rank: rank_arg()? },
                        "reconnect" => ChaosKind::ReconnectRank { rank: rank_arg()? },
                        "kill" => ChaosKind::KillRank { rank: rank_arg()? },
                        "revive" => ChaosKind::ReviveRank { rank: rank_arg()? },
                        "loss" => {
                            let (from, to) = (rank_arg()?, rank_arg()?);
                            let loss = words
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err("bad loss"))?;
                            ChaosKind::SetLoss { from, to, loss }
                        }
                        "slow" => {
                            let (from, to) = (rank_arg()?, rank_arg()?);
                            let latency = words
                                .next()
                                .and_then(parse_duration)
                                .ok_or_else(|| err("bad latency"))?;
                            ChaosKind::SlowLink { from, to, latency }
                        }
                        _ => return Err(err("unknown chaos action")),
                    };
                    s.events.push(ChaosEvent { at, kind });
                }
                "op" => {
                    let verb = words.next().ok_or_else(|| err("missing op"))?;
                    let op = match verb {
                        "advance" => SimOp::Advance {
                            by: words
                                .next()
                                .and_then(parse_duration)
                                .ok_or_else(|| err("bad duration"))?,
                        },
                        "allreduce" | "barrier" => {
                            let timeout = words
                                .next()
                                .and_then(parse_duration)
                                .ok_or_else(|| err("bad timeout"))?;
                            if verb == "allreduce" {
                                SimOp::Allreduce { timeout }
                            } else {
                                SimOp::Barrier { timeout }
                            }
                        }
                        "broadcast" | "reduce" => {
                            let root = words
                                .next()
                                .and_then(parse_u64)
                                .ok_or_else(|| err("bad root"))?
                                as u32;
                            let timeout = words
                                .next()
                                .and_then(parse_duration)
                                .ok_or_else(|| err("bad timeout"))?;
                            if verb == "broadcast" {
                                SimOp::Broadcast { root, timeout }
                            } else {
                                SimOp::Reduce { root, timeout }
                            }
                        }
                        _ => return Err(err("unknown op")),
                    };
                    match words.next() {
                        None => {}
                        Some("expect-fail") => {
                            if matches!(op, SimOp::Advance { .. }) {
                                return Err(err("advance cannot expect-fail"));
                            }
                            s.expect_failed.push(s.ops.len());
                        }
                        Some(_) => return Err(err("trailing words after op")),
                    }
                    s.ops.push(op);
                }
                _ => return Err(err("unknown directive")),
            }
        }
        if s.ranks == 0 {
            return Err("scenario must declare `ranks`".into());
        }
        Ok(s)
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    // Allow 1_000 and suffixes k/m/g for bandwidth-style magnitudes.
    let cleaned: String = s.chars().filter(|c| *c != '_').collect();
    if let Some(n) = cleaned.strip_suffix(['k', 'K']) {
        return n.parse::<u64>().ok().map(|v| v * 1_000);
    }
    if let Some(n) = cleaned.strip_suffix(['m', 'M']) {
        return n.parse::<u64>().ok().map(|v| v * 1_000_000);
    }
    if let Some(n) = cleaned.strip_suffix(['g', 'G']) {
        return n.parse::<u64>().ok().map(|v| v * 1_000_000_000);
    }
    cleaned.parse().ok()
}

fn parse_duration(s: &str) -> Option<Duration> {
    let (num, unit) = s.split_at(s.find(|c: char| c.is_alphabetic())?);
    let v: u64 = num.parse().ok()?;
    match unit {
        "ns" => Some(Duration::from_nanos(v)),
        "us" => Some(Duration::from_micros(v)),
        "ms" => Some(Duration::from_millis(v)),
        "s" => Some(Duration::from_secs(v)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// SimWorld: the discrete-event engine
// ---------------------------------------------------------------------------

/// Outcome of one [`SimOp`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpOutcome {
    /// The op, rendered (`"allreduce"`, `"broadcast(0)"`, …).
    pub op: String,
    /// Whether every participating rank completed before the deadline.
    pub completed: bool,
    /// Ranks that had not completed when the deadline fired.
    pub failed_ranks: Vec<u32>,
    /// Virtual time the op consumed.
    pub elapsed: Duration,
    /// The op's value where one exists (reduce/allreduce sum, broadcast
    /// payload), if all completing ranks agreed on it.
    pub result: Option<u64>,
}

/// The full result of a [`SimWorld`] run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// The seed the run derives from.
    pub seed: u64,
    /// World size.
    pub ranks: u32,
    /// Per-op outcomes, in program order.
    pub ops: Vec<OpOutcome>,
    /// Total virtual time elapsed.
    pub virtual_elapsed: Duration,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// The event trace: one line per engine decision, byte-identical for
    /// equal seeds.
    pub trace: String,
    /// Telemetry snapshot (ncs-obs JSON) of the run's counters.
    pub telemetry_json: String,
    /// Op indices the scenario expected to fail (copied from
    /// [`Scenario::expect_failed`]).
    pub expect_failed: Vec<usize>,
}

impl SimReport {
    /// Whether every op in the program completed.
    pub fn all_completed(&self) -> bool {
        self.ops.iter().all(|o| o.completed)
    }

    /// The scenario's verdict: every op matched its expected outcome —
    /// ops in [`SimReport::expect_failed`] missed their deadline (the
    /// fail-fast contract), every other op completed. With no
    /// expectations declared this is [`SimReport::all_completed`].
    pub fn passed(&self) -> bool {
        self.ops
            .iter()
            .enumerate()
            .all(|(i, o)| o.completed != self.expect_failed.contains(&i))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum MsgKind {
    /// Broadcast payload.
    Data,
    /// Reduce partial.
    Part,
    /// Dissemination-barrier token (round in `round`).
    Token,
}

#[derive(Debug, Clone, PartialEq)]
struct Msg {
    gen: u64,
    kind: MsgKind,
    round: u32,
    value: u64,
    from: u32,
}

#[derive(Debug)]
enum EvKind {
    Arrive { to: u32, msg: Msg },
    Retry { to: u32, msg: Msg, attempt: u32 },
    Deadline { gen: u64 },
    Chaos { idx: usize },
}

#[derive(Debug)]
struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-direction link state, created lazily (a 10,000-rank world has
/// 10⁸ directed pairs; only the pairs a collective actually uses exist).
#[derive(Debug)]
struct DirLink {
    up: bool,
    loss: f64,
    latency: Duration,
    jitter: Duration,
    rng: StdRng,
}

#[derive(Debug, Clone, PartialEq)]
enum RankOp {
    Idle,
    Bcast {
        have: bool,
    },
    Reduce {
        pending: usize,
        acc: u64,
    },
    /// `phase` 0 = reduce toward rank 0, 1 = broadcast of the result.
    Allreduce {
        phase: u8,
        pending: usize,
        acc: u64,
    },
    Barrier {
        round: u32,
        got: Vec<bool>,
    },
}

/// SplitMix64 over `(seed, from, to)`: a direction's RNG stream depends
/// only on the scenario seed and the pair, not on creation order.
fn mix_seed(seed: u64, from: u32, to: u32) -> u64 {
    let mut z = seed ^ (u64::from(from) << 32 | u64::from(to)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Binomial-tree parent of virtual rank `v` (clear the highest set bit).
fn tree_parent(v: u32) -> u32 {
    v ^ (1 << (31 - v.leading_zeros()))
}

/// Binomial-tree children of virtual rank `v` in a world of `n`.
fn tree_children(v: u32, n: u32) -> Vec<u32> {
    let start = if v == 0 { 0 } else { 32 - v.leading_zeros() };
    (start..32)
        .map(|k| v | (1 << k))
        .take_while(|c| *c < n)
        .collect()
}

/// The deterministic thousand-rank engine. See the module docs.
#[derive(Debug)]
pub struct SimWorld {
    scenario: Scenario,
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Reverse<Ev>>,
    links: HashMap<(u32, u32), DirLink>,
    alive: Vec<bool>,
    isolated: Vec<bool>,
    states: Vec<RankOp>,
    complete: Vec<bool>,
    remaining: usize,
    gen: u64,
    rto: Duration,
    trace: Vec<String>,
    events_processed: u64,
    registry: Registry,
}

impl SimWorld {
    /// Builds the world described by `scenario` and schedules its chaos
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if the scenario declares zero ranks.
    pub fn new(scenario: Scenario) -> Self {
        assert!(scenario.ranks > 0, "scenario must have ranks");
        let n = scenario.ranks as usize;
        let rto = scenario.effective_rto();
        let mut world = SimWorld {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            links: HashMap::new(),
            alive: vec![true; n],
            isolated: vec![false; n],
            states: vec![RankOp::Idle; n],
            complete: vec![false; n],
            remaining: 0,
            gen: 0,
            rto,
            trace: Vec::new(),
            events_processed: 0,
            registry: Registry::new(),
            scenario,
        };
        for idx in 0..world.scenario.events.len() {
            let at = SimTime::ZERO + world.scenario.events[idx].at;
            world.push_ev(at, EvKind::Chaos { idx });
        }
        world
    }

    /// Runs the scenario's program to completion and reports.
    pub fn run(&mut self) -> SimReport {
        let ops = self.scenario.ops.clone();
        let mut outcomes = Vec::with_capacity(ops.len());
        for op in ops {
            outcomes.push(self.run_op(&op));
        }
        let counter = |name: &str| self.registry.counter(name, "", &[]).get();
        let completed = outcomes.iter().filter(|o| o.completed).count() as u64;
        self.registry
            .counter("sim_ops_completed_total", "ops completed", &[])
            .add(completed);
        self.registry
            .counter("sim_ops_failed_total", "ops failed", &[])
            .add(outcomes.len() as u64 - completed);
        let _ = counter; // counters materialise below via snapshot
        SimReport {
            scenario: self.scenario.name.clone(),
            seed: self.scenario.seed,
            ranks: self.scenario.ranks,
            ops: outcomes,
            virtual_elapsed: self.now.as_duration(),
            events_processed: self.events_processed,
            trace: self.trace.join("\n"),
            telemetry_json: self.registry.snapshot().render_json(),
            expect_failed: self.scenario.expect_failed.clone(),
        }
    }

    /// The engine's telemetry registry (counters accumulate across ops).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn push_ev(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Ev { at, seq, kind }));
    }

    fn count(&self, name: &str, help: &str) {
        self.registry.counter(name, help, &[]).inc();
    }

    fn link(&mut self, from: u32, to: u32) -> &mut DirLink {
        let (policy, back) = (&self.scenario.policy, &self.scenario.policy_back);
        let seed = self.scenario.seed;
        self.links.entry((from, to)).or_insert_with(|| {
            let p = if from <= to {
                policy
            } else {
                back.as_ref().unwrap_or(policy)
            };
            DirLink {
                up: true,
                loss: p.loss,
                latency: p.latency,
                jitter: p.jitter,
                rng: StdRng::seed_from_u64(mix_seed(seed, from, to)),
            }
        })
    }

    /// One logical message transmission attempt from `msg.from` to `to`.
    /// A lost attempt re-arms on the RTO clock — the engine-level stand-in
    /// for NCS selective-repeat.
    fn send(&mut self, to: u32, msg: Msg, attempt: u32) {
        if !self.alive[msg.from as usize] {
            return;
        }
        if attempt == 0 {
            self.count("sim_messages_sent_total", "messages sent");
        } else {
            self.count("sim_retransmissions_total", "retransmission attempts");
        }
        let now = self.now;
        let rto = self.rto;
        let isolated = self.isolated[msg.from as usize] || self.isolated[to as usize];
        let link = self.link(msg.from, to);
        let blocked = !link.up || isolated;
        let lost = !blocked && link.loss > 0.0 && link.rng.gen_bool(link.loss);
        if blocked || lost {
            let jitter = Duration::ZERO;
            let _ = jitter;
            self.count("sim_messages_dropped_total", "messages dropped");
            self.trace.push(format!(
                "{now} drop {} {}->{} attempt {attempt}{}",
                kind_name(&msg.kind),
                msg.from,
                to,
                if blocked { " (link down)" } else { "" },
            ));
            self.push_ev(now + rto, EvKind::Retry { to, msg, attempt });
            return;
        }
        let jitter = if link.jitter > Duration::ZERO {
            let bound = link.jitter.as_nanos() as u64;
            Duration::from_nanos(link.rng.gen_range(0..bound + 1))
        } else {
            Duration::ZERO
        };
        let due = now + link.latency + jitter;
        self.trace.push(format!(
            "{now} send {} {}->{} attempt {attempt} due {due}",
            kind_name(&msg.kind),
            msg.from,
            to,
        ));
        self.push_ev(due, EvKind::Arrive { to, msg });
    }

    fn apply_chaos(&mut self, idx: usize) {
        let ev = self.scenario.events[idx].clone();
        self.count("sim_chaos_events_total", "chaos events applied");
        let now = self.now;
        self.trace.push(format!("{now} chaos {:?}", ev.kind));
        match ev.kind {
            ChaosKind::CutLink { from, to } => self.link(from, to).up = false,
            ChaosKind::HealLink { from, to } => self.link(from, to).up = true,
            ChaosKind::SetLoss { from, to, loss } => self.link(from, to).loss = loss,
            ChaosKind::SlowLink { from, to, latency } => self.link(from, to).latency = latency,
            ChaosKind::IsolateRank { rank } => self.isolated[rank as usize] = true,
            ChaosKind::ReconnectRank { rank } => self.isolated[rank as usize] = false,
            ChaosKind::KillRank { rank } => self.alive[rank as usize] = false,
            ChaosKind::ReviveRank { rank } => self.alive[rank as usize] = true,
        }
    }

    fn mark_complete(&mut self, rank: u32) {
        let slot = &mut self.complete[rank as usize];
        if !*slot {
            *slot = true;
            self.remaining -= 1;
        }
    }

    fn barrier_rounds(n: u32) -> u32 {
        32 - (n - 1).leading_zeros()
    }

    /// Starts `op` for every alive rank: initialises state machines and
    /// fires the initial message wave.
    fn start_op(&mut self, op: &SimOp) {
        let n = self.scenario.ranks;
        self.gen += 1;
        self.complete = vec![false; n as usize];
        self.remaining = 0;
        let gen = self.gen;
        for r in 0..n {
            if !self.alive[r as usize] {
                self.complete[r as usize] = true;
                continue;
            }
            self.remaining += 1;
            self.states[r as usize] = match op {
                SimOp::Broadcast { root, .. } => RankOp::Bcast { have: r == *root },
                SimOp::Reduce { root, .. } => RankOp::Reduce {
                    pending: tree_children((r + n - root) % n, n).len(),
                    acc: u64::from(r),
                },
                SimOp::Allreduce { .. } => RankOp::Allreduce {
                    phase: 0,
                    pending: tree_children(r, n).len(),
                    acc: u64::from(r),
                },
                SimOp::Barrier { .. } => RankOp::Barrier {
                    round: 0,
                    got: vec![false; Self::barrier_rounds(n) as usize],
                },
                SimOp::Advance { .. } => RankOp::Idle,
            };
        }
        // The initial wave.
        match *op {
            SimOp::Broadcast { root, .. } => {
                for c in tree_children(0, n) {
                    let to = (c + root) % n;
                    self.send(
                        to,
                        Msg {
                            gen,
                            kind: MsgKind::Data,
                            round: 0,
                            value: 100 + u64::from(root),
                            from: root,
                        },
                        0,
                    );
                }
                if self.alive[root as usize] {
                    self.mark_complete(root);
                }
            }
            SimOp::Reduce { .. } | SimOp::Allreduce { .. } => {
                let root = match *op {
                    SimOp::Reduce { root, .. } => root,
                    _ => 0,
                };
                // Leaves send their partials immediately.
                for r in 0..n {
                    if !self.alive[r as usize] {
                        continue;
                    }
                    let v = (r + n - root) % n;
                    if tree_children(v, n).is_empty() {
                        let parent = (tree_parent(v) + root) % n;
                        self.send(
                            parent,
                            Msg {
                                gen,
                                kind: MsgKind::Part,
                                round: 0,
                                value: u64::from(r),
                                from: r,
                            },
                            0,
                        );
                        if matches!(*op, SimOp::Reduce { .. }) {
                            self.mark_complete(r);
                        }
                    }
                }
            }
            SimOp::Barrier { .. } => {
                for r in 0..n {
                    if !self.alive[r as usize] {
                        continue;
                    }
                    let to = (r + 1) % n;
                    self.send(
                        to,
                        Msg {
                            gen,
                            kind: MsgKind::Token,
                            round: 0,
                            value: 0,
                            from: r,
                        },
                        0,
                    );
                }
            }
            SimOp::Advance { .. } => {}
        }
    }

    /// Feeds an arrived message to `to`'s state machine.
    fn deliver(&mut self, to: u32, msg: Msg, op: &SimOp) {
        let n = self.scenario.ranks;
        let gen = self.gen;
        if !self.alive[to as usize] {
            let now = self.now;
            self.trace.push(format!(
                "{now} dead-drop {} {}->{to}",
                kind_name(&msg.kind),
                msg.from
            ));
            return;
        }
        self.count("sim_messages_delivered_total", "messages delivered");
        let now = self.now;
        self.trace.push(format!(
            "{now} deliver {} {}->{to} value {}",
            kind_name(&msg.kind),
            msg.from,
            msg.value
        ));
        match (&mut self.states[to as usize], &msg.kind) {
            (RankOp::Bcast { have }, MsgKind::Data) => {
                if !*have {
                    *have = true;
                    let root = match *op {
                        SimOp::Broadcast { root, .. } => root,
                        _ => 0,
                    };
                    let v = (to + n - root) % n;
                    for c in tree_children(v, n) {
                        let child = (c + root) % n;
                        self.send(
                            child,
                            Msg {
                                from: to,
                                ..msg.clone()
                            },
                            0,
                        );
                    }
                    self.mark_complete(to);
                }
            }
            (RankOp::Reduce { pending, acc }, MsgKind::Part) => {
                *acc += msg.value;
                *pending -= 1;
                if *pending == 0 {
                    let root = match *op {
                        SimOp::Reduce { root, .. } => root,
                        _ => 0,
                    };
                    let v = (to + n - root) % n;
                    let acc = *acc;
                    if v != 0 {
                        let parent = (tree_parent(v) + root) % n;
                        self.send(
                            parent,
                            Msg {
                                gen,
                                kind: MsgKind::Part,
                                round: 0,
                                value: acc,
                                from: to,
                            },
                            0,
                        );
                    }
                    self.mark_complete(to);
                }
            }
            (
                RankOp::Allreduce {
                    phase,
                    pending,
                    acc,
                },
                kind,
            ) => match (*phase, kind) {
                (0, MsgKind::Part) => {
                    *acc += msg.value;
                    *pending -= 1;
                    if *pending == 0 {
                        let acc = *acc;
                        if to == 0 {
                            // Root: switch the world's attention to the
                            // broadcast phase.
                            self.states[0] = RankOp::Allreduce {
                                phase: 1,
                                pending: 0,
                                acc,
                            };
                            for c in tree_children(0, n) {
                                self.send(
                                    c,
                                    Msg {
                                        gen,
                                        kind: MsgKind::Data,
                                        round: 0,
                                        value: acc,
                                        from: 0,
                                    },
                                    0,
                                );
                            }
                            self.mark_complete(0);
                        } else {
                            *phase = 1;
                            let parent = tree_parent(to);
                            self.send(
                                parent,
                                Msg {
                                    gen,
                                    kind: MsgKind::Part,
                                    round: 0,
                                    value: acc,
                                    from: to,
                                },
                                0,
                            );
                        }
                    }
                }
                (_, MsgKind::Data) => {
                    // The reduce phase of this subtree is over once the
                    // result comes down; accept Data in either phase (a
                    // leaf is still in phase 0).
                    let acc = msg.value;
                    self.states[to as usize] = RankOp::Allreduce {
                        phase: 2,
                        pending: 0,
                        acc,
                    };
                    for c in tree_children(to, n) {
                        self.send(
                            c,
                            Msg {
                                gen,
                                kind: MsgKind::Data,
                                round: 0,
                                value: acc,
                                from: to,
                            },
                            0,
                        );
                    }
                    self.mark_complete(to);
                }
                _ => {
                    let now = self.now;
                    self.trace.push(format!("{now} stray {to}"));
                }
            },
            (RankOp::Barrier { round, got }, MsgKind::Token) => {
                if (msg.round as usize) < got.len() {
                    got[msg.round as usize] = true;
                }
                let rounds = Self::barrier_rounds(n);
                let mut to_send = Vec::new();
                while *round < rounds && got[*round as usize] {
                    *round += 1;
                    if *round < rounds {
                        to_send.push(*round);
                    }
                }
                let done = *round >= rounds;
                for r in to_send {
                    let peer = (to + (1 << r)) % n;
                    self.send(
                        peer,
                        Msg {
                            gen,
                            kind: MsgKind::Token,
                            round: r,
                            value: 0,
                            from: to,
                        },
                        0,
                    );
                }
                if done {
                    self.mark_complete(to);
                }
            }
            _ => {
                let now = self.now;
                self.trace
                    .push(format!("{now} stray {} for {to}", kind_name(&msg.kind)));
            }
        }
    }

    fn run_op(&mut self, op: &SimOp) -> OpOutcome {
        let started = self.now;
        let n = self.scenario.ranks;
        let name = match op {
            SimOp::Broadcast { root, .. } => format!("broadcast({root})"),
            SimOp::Reduce { root, .. } => format!("reduce({root})"),
            SimOp::Allreduce { .. } => "allreduce".to_owned(),
            SimOp::Barrier { .. } => "barrier".to_owned(),
            SimOp::Advance { by } => format!("advance({by:?})"),
        };
        self.trace.push(format!("{started} op {name} start"));
        if let SimOp::Advance { by } = op {
            // Pure time passage: chaos events in the window fire, stale
            // messages drain.
            let target = self.now + *by;
            while self.queue.peek().is_some_and(|Reverse(ev)| ev.at <= target) {
                let Reverse(ev) = self.queue.pop().expect("peeked");
                self.now = ev.at;
                self.events_processed += 1;
                if let EvKind::Chaos { idx } = ev.kind {
                    self.apply_chaos(idx);
                }
            }
            self.now = target;
            return OpOutcome {
                op: name,
                completed: true,
                failed_ranks: Vec::new(),
                elapsed: *by,
                result: None,
            };
        }
        let timeout = match *op {
            SimOp::Broadcast { timeout, .. }
            | SimOp::Reduce { timeout, .. }
            | SimOp::Allreduce { timeout }
            | SimOp::Barrier { timeout } => timeout,
            SimOp::Advance { .. } => unreachable!(),
        };
        self.start_op(op);
        let gen = self.gen;
        self.push_ev(self.now + timeout, EvKind::Deadline { gen });
        let mut timed_out = false;
        while self.remaining > 0 {
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            debug_assert!(ev.at >= self.now, "virtual time went backwards");
            self.now = ev.at;
            self.events_processed += 1;
            match ev.kind {
                EvKind::Chaos { idx } => self.apply_chaos(idx),
                EvKind::Deadline { gen: g } => {
                    if g == gen {
                        timed_out = true;
                        break;
                    }
                }
                EvKind::Arrive { to, msg } => {
                    if msg.gen == gen {
                        self.deliver(to, msg, op);
                    }
                }
                EvKind::Retry { to, msg, attempt } => {
                    if msg.gen == gen {
                        self.send(to, msg, attempt + 1);
                    }
                }
            }
        }
        let failed_ranks: Vec<u32> = if timed_out {
            (0..n).filter(|r| !self.complete[*r as usize]).collect()
        } else {
            Vec::new()
        };
        let completed = !timed_out && self.remaining == 0;
        // Agreement check: every completing rank must hold the same value.
        let result = if completed {
            let mut value = None;
            let mut agree = true;
            for r in 0..n as usize {
                let v = match &self.states[r] {
                    RankOp::Reduce { acc, .. } if self.alive[r] => Some(*acc),
                    RankOp::Allreduce { acc, .. } if self.alive[r] => Some(*acc),
                    _ => None,
                };
                if let Some(v) = v {
                    match op {
                        SimOp::Allreduce { .. } => {
                            if let Some(prev) = value {
                                agree &= prev == v;
                            }
                            value = Some(v);
                        }
                        SimOp::Reduce { root, .. } if r as u32 == *root => {
                            value = Some(v);
                        }
                        _ => {}
                    }
                }
            }
            if let SimOp::Broadcast { root, .. } = op {
                value = Some(100 + u64::from(*root));
            }
            if agree {
                value
            } else {
                None
            }
        } else {
            None
        };
        let elapsed = self.now - started;
        let now = self.now;
        self.trace.push(format!(
            "{now} op {name} {} ({} failed)",
            if completed { "complete" } else { "TIMEOUT" },
            failed_ranks.len()
        ));
        OpOutcome {
            op: name,
            completed,
            failed_ranks,
            elapsed,
            result,
        }
    }
}

fn kind_name(k: &MsgKind) -> &'static str {
    match k {
        MsgKind::Data => "data",
        MsgKind::Part => "part",
        MsgKind::Token => "token",
    }
}

// ---------------------------------------------------------------------------
// SimSession: the real-stack Session backend
// ---------------------------------------------------------------------------

/// The shared driver behind a [`SimSession`] world: fabric, virtual
/// clock, and the pump thread that advances both.
#[derive(Debug)]
struct SimDriver {
    net: Arc<SimNet>,
    clock: Arc<VirtualClock>,
    stop: AtomicBool,
    pump: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SimDriver {
    /// Pump policy: when frames are in flight, fast-forward virtual time
    /// to the earliest arrival and deliver; when idle, let virtual time
    /// track real time so virtual-time deadlines (op timeouts, link-down
    /// grace) still fire for stuck worlds.
    const IDLE_QUANTUM: Duration = Duration::from_micros(200);

    fn start(net: Arc<SimNet>, clock: Arc<VirtualClock>) -> Arc<Self> {
        let driver = Arc::new(SimDriver {
            net,
            clock,
            stop: AtomicBool::new(false),
            pump: parking_lot::Mutex::new(None),
        });
        let d = Arc::clone(&driver);
        let handle = std::thread::Builder::new()
            .name("sim-pump".into())
            .spawn(move || d.pump_loop())
            .expect("spawn sim pump");
        *driver.pump.lock() = Some(handle);
        driver
    }

    fn pump_loop(&self) {
        while !self.stop.load(Ordering::Acquire) {
            match self.net.next_due() {
                Some(due) => {
                    self.net.advance_to(due);
                    self.clock.advance_to(due.as_duration());
                }
                None => {
                    let target = self.clock.now() + Self::IDLE_QUANTUM;
                    self.clock.advance_to(target);
                    self.net
                        .advance_to(SimTime::from_nanos(target.as_nanos() as u64));
                    std::thread::sleep(Self::IDLE_QUANTUM);
                }
            }
        }
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for SimDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds simulated in-process worlds (the [`Session`] factory for the
/// SIM interface), and hosts the discrete-event engine for four-digit
/// rank counts — see the module docs for which half fits which scale.
#[derive(Debug)]
pub struct SimWorldBuilder {
    ranks: u32,
    seed: u64,
    policy: LinkPolicy,
}

impl SimWorldBuilder {
    /// A world of `ranks` members over ideal links, seeded with `seed`.
    pub fn new(ranks: u32, seed: u64) -> Self {
        SimWorldBuilder {
            ranks,
            seed,
            policy: LinkPolicy::ideal(),
        }
    }

    /// Shapes every link with `policy` (both directions).
    pub fn policy(mut self, policy: LinkPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Meshes `ranks` real NCS nodes over the SIM interface on one shared
    /// [`VirtualClock`] and starts the pump. Mirrors
    /// [`crate::LocalWorld::create`]'s wiring: full mesh, one bootstrap
    /// connection per pair, dial-up/accept-down.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when the mesh cannot be established.
    pub fn build(self) -> Result<Vec<SimSession>, SessionError> {
        let n = self.ranks;
        if n == 0 {
            return Err(SessionError::Connect("world size must be positive".into()));
        }
        let net = SimNet::new(self.seed);
        let clock = VirtualClock::shared();
        // Pump first: bootstrap handshakes ride the fabric too.
        let driver = SimDriver::start(Arc::clone(&net), Arc::clone(&clock));
        let pkg: Arc<dyn ncs_threads::ThreadPackage> = Arc::new(ncs_threads::KernelPackage::new());
        let reactor = ncs_core::Reactor::with_default_shards(pkg);
        let nodes: Vec<NcsNode> = (0..n)
            .map(|r| {
                NcsNode::builder(&rank_name(r))
                    .rank(r)
                    .reactor(Arc::clone(&reactor))
                    .clock(clock.clone() as Arc<dyn ncs_core::Clock>)
                    .build()
            })
            .collect();
        let mut peer_links: Vec<HashMap<u32, Arc<ncs_core::link::SimLink>>> =
            (0..n).map(|_| HashMap::new()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let (li, lj) = SimLinkPair::create(&net, self.policy.clone(), self.policy.clone());
                let li_dyn: Arc<dyn ncs_core::link::PeerLink> = li.clone();
                let lj_dyn: Arc<dyn ncs_core::link::PeerLink> = lj.clone();
                nodes[i as usize].attach_peer(&rank_name(j), li_dyn);
                nodes[j as usize].attach_peer(&rank_name(i), lj_dyn);
                peer_links[i as usize].insert(j, li);
                peer_links[j as usize].insert(i, lj);
            }
        }
        let mut conns: Vec<HashMap<usize, NcsConnection>> =
            (0..n).map(|_| HashMap::new()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let up =
                    nodes[i as usize].connect(&rank_name(j), ConnectionConfig::unreliable())?;
                let down = nodes[j as usize].accept(Duration::from_secs(30))?;
                conns[i as usize].insert(j as usize, up);
                conns[j as usize].insert(i as usize, down);
            }
        }
        Ok(nodes
            .into_iter()
            .zip(conns)
            .zip(peer_links)
            .enumerate()
            .map(|(rank, ((node, links), peers))| SimSession {
                node,
                rank: rank as u32,
                world: n,
                links,
                peers,
                driver: Arc::clone(&driver),
            })
            .collect())
    }
}

/// One member of a simulated world: the third [`Session`] backend. Real
/// node, real NCS threads — only the network (and the clock its deadlines
/// read) is simulated.
#[derive(Debug)]
pub struct SimSession {
    node: NcsNode,
    rank: u32,
    world: u32,
    links: HashMap<usize, NcsConnection>,
    peers: HashMap<u32, Arc<ncs_core::link::SimLink>>,
    driver: Arc<SimDriver>,
}

impl SimSession {
    /// The bootstrap connection to `rank`, if it is another member.
    pub fn connection(&self, rank: u32) -> Option<&NcsConnection> {
        self.links.get(&(rank as usize))
    }

    /// Current virtual time of the world.
    pub fn virtual_now(&self) -> Duration {
        self.driver.clock.now()
    }

    /// The world's shared [`VirtualClock`]. Advancing it fast-forwards
    /// every deadline in the world — hand it to a
    /// [`crate::MembershipHub`] and jump past `dead_after` to drive a
    /// failure-detection timeline deterministically (the pump thread
    /// only ever moves the clock forward, so explicit jumps compose with
    /// it).
    pub fn clock(&self) -> Arc<VirtualClock> {
        Arc::clone(&self.driver.clock)
    }

    /// The fabric this world rides (delivery/drop counters, manual
    /// chaos).
    pub fn net(&self) -> &Arc<SimNet> {
        &self.driver.net
    }

    /// Raises or cuts this member's outbound traffic towards `peer` on
    /// every channel between them (partition chaos; cut both sides for a
    /// full partition).
    pub fn set_peer_up(&self, peer: u32, up: bool) {
        if let Some(link) = self.peers.get(&peer) {
            link.set_outbound_up(up);
        }
    }

    /// Reshapes this member's outbound traffic towards `peer` (slow-link
    /// chaos).
    pub fn set_peer_policy(&self, peer: u32, policy: LinkPolicy) {
        if let Some(link) = self.peers.get(&peer) {
            link.set_outbound_policy(policy);
        }
    }
}

impl Session for SimSession {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn world_size(&self) -> u32 {
        self.world
    }

    fn node(&self) -> &NcsNode {
        &self.node
    }

    fn connect(&self, peer: u32, cfg: ConnectionConfig) -> Result<NcsConnection, SessionError> {
        if peer == self.rank || peer >= self.world {
            return Err(SessionError::BadRank {
                rank: peer,
                world: self.world,
            });
        }
        Ok(self.node.connect(&rank_name(peer), cfg)?)
    }

    fn accept(&self, timeout: Duration) -> Result<NcsConnection, SessionError> {
        Ok(self.node.accept(timeout)?)
    }

    fn collective_group(&self, id: u32) -> Result<CollectiveGroup, SessionError> {
        Ok(CollectiveGroup::new(
            &self.node,
            id,
            self.rank as usize,
            self.links.clone(),
        )?)
    }

    fn shutdown(&self) {
        self.node.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_shape() {
        assert_eq!(tree_children(0, 8), vec![1, 2, 4]);
        assert_eq!(tree_children(1, 8), vec![3, 5]);
        assert_eq!(tree_children(2, 8), vec![6]);
        assert_eq!(tree_children(4, 8), Vec::<u32>::new());
        assert_eq!(tree_parent(5), 1);
        assert_eq!(tree_parent(6), 2);
        assert_eq!(tree_parent(1), 0);
        // Every non-zero vrank's parent is a strictly smaller vrank.
        for v in 1..1000u32 {
            assert!(tree_parent(v) < v);
        }
    }

    #[test]
    fn clean_broadcast_reaches_everyone() {
        let mut s = Scenario::new("t", 16, 1);
        s.ops = vec![SimOp::Broadcast {
            root: 3,
            timeout: Duration::from_secs(5),
        }];
        let report = SimWorld::new(s).run();
        assert!(report.all_completed(), "{:?}", report.ops);
        assert_eq!(report.ops[0].result, Some(103));
    }

    #[test]
    fn reduce_sums_rank_ids() {
        let mut s = Scenario::new("t", 9, 1);
        s.ops = vec![SimOp::Reduce {
            root: 2,
            timeout: Duration::from_secs(5),
        }];
        let report = SimWorld::new(s).run();
        assert!(report.all_completed(), "{:?}", report.ops);
        assert_eq!(report.ops[0].result, Some((0..9).sum()));
    }

    #[test]
    fn allreduce_agrees_on_the_sum() {
        for n in [2u32, 3, 7, 8, 33] {
            let mut s = Scenario::new("t", n, 5);
            s.ops = vec![SimOp::Allreduce {
                timeout: Duration::from_secs(5),
            }];
            let report = SimWorld::new(s).run();
            assert!(report.all_completed(), "n={n} {:?}", report.ops);
            assert_eq!(
                report.ops[0].result,
                Some(u64::from(n) * u64::from(n - 1) / 2)
            );
        }
    }

    #[test]
    fn barrier_completes_in_log_rounds_of_latency() {
        let mut s = Scenario::new("t", 64, 1);
        s.policy = LinkPolicy {
            jitter: Duration::ZERO,
            ..LinkPolicy::lan()
        };
        s.ops = vec![SimOp::Barrier {
            timeout: Duration::from_secs(5),
        }];
        let report = SimWorld::new(s).run();
        assert!(report.all_completed());
        // 6 dissemination rounds at 50 µs per hop.
        assert_eq!(report.ops[0].elapsed, Duration::from_micros(300));
    }

    #[test]
    fn killed_rank_fails_fast_at_the_deadline() {
        let mut s = Scenario::new("t", 8, 1);
        s.events = vec![ChaosEvent {
            at: Duration::from_micros(1),
            kind: ChaosKind::KillRank { rank: 5 },
        }];
        s.ops = vec![
            SimOp::Advance {
                by: Duration::from_millis(1),
            },
            SimOp::Barrier {
                timeout: Duration::from_millis(50),
            },
        ];
        let report = SimWorld::new(s).run();
        assert!(!report.ops[1].completed);
        assert!(!report.ops[1].failed_ranks.is_empty());
        // The deadline bounded the op: fail-fast, not hang.
        assert_eq!(report.ops[1].elapsed, Duration::from_millis(50));
    }

    #[test]
    fn lossy_world_retransmits_to_completion() {
        let s = Scenario::asymmetric_loss(32, 7);
        let report = SimWorld::new(s).run();
        assert!(report.all_completed(), "{:?}", report.ops);
        assert!(report.telemetry_json.contains("sim_retransmissions_total"));
    }

    #[test]
    fn same_seed_byte_identical_trace() {
        let a = SimWorld::new(Scenario::asymmetric_loss(64, 99)).run();
        let b = SimWorld::new(Scenario::asymmetric_loss(64, 99)).run();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.telemetry_json, b.telemetry_json);
        let c = SimWorld::new(Scenario::asymmetric_loss(64, 100)).run();
        assert_ne!(a.trace, c.trace, "different seeds should diverge");
    }

    #[test]
    fn scenario_script_round_trips_the_documented_example() {
        let script = r"
# partition between 1 and 2, healed at 100ms
scenario partition-heal
ranks 64
seed 42
policy latency=50us jitter=5us loss=0
at 500us cut 1 2
at 500us cut 2 1
at 100ms heal 1 2
at 100ms heal 2 1
op advance 1ms
op allreduce 30s
op barrier 30s
";
        let parsed = Scenario::parse(script).expect("parse");
        assert_eq!(parsed.name, "partition-heal");
        assert_eq!(parsed.ranks, 64);
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed, Scenario::partition_heal(64, 42));
        let report = SimWorld::new(parsed).run();
        assert!(report.all_completed(), "{:?}", report.ops);
    }

    #[test]
    fn scenario_parse_rejects_garbage() {
        assert!(Scenario::parse("bogus directive").is_err());
        assert!(Scenario::parse("ranks 0").is_err());
        assert!(Scenario::parse("ranks 4\nat nonsense cut 0 1").is_err());
        assert!(Scenario::parse("ranks 4\nop allreduce").is_err());
        assert!(Scenario::parse("ranks 4\nop allreduce 5s bogus").is_err());
        assert!(Scenario::parse("ranks 4\nop advance 1ms expect-fail").is_err());
    }

    #[test]
    fn expect_fail_script_token_demands_the_deadline_miss() {
        let script = r"
scenario scripted-kill
ranks 8
seed 3
at 1us kill 2
at 15ms revive 2
op advance 1ms
op allreduce 10ms expect-fail
op advance 10ms
op allreduce 30s
";
        let s = Scenario::parse(script).expect("parse");
        assert_eq!(s.expect_failed, vec![1]);
        let report = SimWorld::new(s).run();
        assert!(!report.all_completed());
        assert!(report.passed(), "{:?}", report.ops);
    }

    #[test]
    fn kill_heal_preset_fails_fast_then_completes() {
        let report = SimWorld::new(Scenario::kill_heal(16, 4)).run();
        assert!(report.passed(), "{:?}", report.ops);
        // The degraded allreduce fail-fasts exactly at its deadline (no
        // hang) with the root among the failed ranks …
        assert!(!report.ops[1].completed);
        assert!(report.ops[1].failed_ranks.contains(&0));
        assert_eq!(report.ops[1].elapsed, Duration::from_millis(10));
        // … and the healed world completes the full-sum allreduce.
        assert!(report.ops[3].completed);
        assert_eq!(report.ops[3].result, Some(16 * 15 / 2));
    }

    #[test]
    fn duration_and_magnitude_parsers() {
        assert_eq!(parse_duration("50us"), Some(Duration::from_micros(50)));
        assert_eq!(parse_duration("10ms"), Some(Duration::from_millis(10)));
        assert_eq!(parse_duration("5s"), Some(Duration::from_secs(5)));
        assert_eq!(parse_duration("oops"), None);
        assert_eq!(parse_u64("1g"), Some(1_000_000_000));
        assert_eq!(parse_u64("155_520_000"), Some(155_520_000));
    }
}
