//! The rendezvous service (`ncsd`): where ranks meet.
//!
//! N processes that should form one NCS world know nothing about each
//! other except one address — the rendezvous service's. Each rank binds
//! its own SCI listener, registers `(rank, listener address)` here, and
//! blocks until the service has seen the whole world; the service then
//! sends every rank the complete roster and the ranks wire themselves up
//! directly (the service is *not* on the data path — the same shape as
//! the lightweight bootstraps of MPWide-style cluster tools).
//!
//! The service is deliberately tiny: one thread, framed SCI messages
//! ([`crate::wire::RvMsg`]), strict validation (protocol version, world
//! size, rank range, duplicates). It can run standalone (the `ncsd`
//! binary), embedded in a launcher ([`mod@crate::launch`]), or embedded in
//! rank 0 of an application.
//!
//! # Membership
//!
//! Since protocol version 2 the service doubles as the world's
//! **membership authority** (see [`crate::membership`] and
//! `docs/MEMBERSHIP.md`): ranks keep a long-lived channel open
//! ([`RvMsg::Subscribe`]) on which they pulse heartbeats and receive
//! epoch-numbered [`View`]s; a [`MembershipTable`] declares silent ranks
//! suspect then dead, graceful leavers send [`RvMsg::Leave`], and a
//! replacement rank re-adopts a vacant slot with [`RvMsg::Rejoin`],
//! receiving the full current view back ([`RvMsg::Replay`]) so it can
//! re-mesh without any other source of truth.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ncs_core::SystemClock;
use ncs_transport::sci::{self, SciConnection, SciListener};
use ncs_transport::{Connection as _, TransportError};

use crate::cluster::ClusterError;
use crate::membership::{MembershipConfig, MembershipTable, View};
use crate::wire::{Roster, RvMsg, PROTOCOL_VERSION};

/// How long the server waits for the `Register` frame of a freshly
/// accepted connection before dropping it (a port-scanner, not a rank).
const REGISTER_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept poll granularity (bounds shutdown latency). When membership is
/// active the serve loop polls at a quarter of the heartbeat interval
/// instead, so failure-detector sweeps and heartbeat acks never stall
/// behind a long accept wait.
const ACCEPT_POLL: Duration = Duration::from_millis(100);

/// Poll granularity of a subscriber connection's reader thread (bounds
/// shutdown latency only — frames are forwarded the moment they arrive).
const SUBSCRIBER_POLL: Duration = Duration::from_millis(200);

/// An embedded rendezvous service for one world.
///
/// Runs on a background thread from [`RendezvousServer::start`] until
/// dropped (or [`RendezvousServer::stop`]). Once the `world`-th rank has
/// registered, the roster goes out to every registered rank; later
/// registrations with a valid identity (e.g. a restarted rank re-fetching)
/// are answered with the same roster immediately.
pub struct RendezvousServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    complete: Arc<AtomicBool>,
    /// Telemetry snapshots pushed by ranks ([`RvMsg::Telemetry`]),
    /// keyed by rank; the latest push wins.
    telemetry: Arc<Mutex<HashMap<u32, String>>>,
    /// The latest membership view published (None until the roster seals
    /// or the first subscriber arrives).
    view: Arc<Mutex<Option<View>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RendezvousServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RendezvousServer")
            .field("addr", &self.addr)
            .field("complete", &self.complete.load(Ordering::Relaxed))
            .finish()
    }
}

impl RendezvousServer {
    /// Binds `listen` (use port 0 for an ephemeral port) and starts
    /// serving a world of `world` ranks, with failure-detector thresholds
    /// from the environment ([`MembershipConfig::from_env`]).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for a zero world, otherwise socket errors.
    pub fn start(listen: &str, world: u32) -> Result<Self, ClusterError> {
        Self::start_with(listen, world, MembershipConfig::from_env())
    }

    /// [`RendezvousServer::start`] with explicit membership thresholds.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for a zero world or unordered thresholds,
    /// otherwise socket errors.
    pub fn start_with(
        listen: &str,
        world: u32,
        cfg: MembershipConfig,
    ) -> Result<Self, ClusterError> {
        if world == 0 {
            return Err(ClusterError::Config("world size must be positive".into()));
        }
        cfg.validate()?;
        let listener = SciListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let complete = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(Mutex::new(HashMap::new()));
        let view = Arc::new(Mutex::new(None));
        let sd = Arc::clone(&shutdown);
        let cp = Arc::clone(&complete);
        let tl = Arc::clone(&telemetry);
        let vw = Arc::clone(&view);
        let handle = std::thread::Builder::new()
            .name("ncsd".into())
            .spawn(move || serve(&listener, world, &cfg, &sd, &cp, &tl, &vw))
            .expect("spawn ncsd thread");
        Ok(RendezvousServer {
            addr,
            shutdown,
            complete,
            telemetry,
            view,
            handle: Some(handle),
        })
    }

    /// The address ranks should register at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the roster has been assembled and broadcast.
    pub fn roster_complete(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }

    /// Blocks until the roster went out, or `timeout`. Returns whether it
    /// did.
    pub fn wait_complete(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.roster_complete() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// The telemetry snapshots ranks have pushed so far, keyed by rank
    /// (the JSON payloads of [`RvMsg::Telemetry`], latest push per rank).
    pub fn telemetry_snapshots(&self) -> HashMap<u32, String> {
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The latest membership view the service has published (`None`
    /// before the roster seals).
    pub fn current_view(&self) -> Option<View> {
        self.view.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stops the service. Idempotent; called by `Drop`.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RendezvousServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One registered rank, held open until the roster goes out.
struct Pending {
    rank: u32,
    conn: Arc<SciConnection>,
}

/// The membership half of the server: the failure-detecting table plus
/// the long-lived subscriber channels views are pushed down.
struct ServerMembership {
    table: MembershipTable,
    subs: HashMap<u32, Arc<SciConnection>>,
}

impl ServerMembership {
    fn new(world: u32, cfg: &MembershipConfig) -> Self {
        ServerMembership {
            table: MembershipTable::new(world, cfg.clone(), SystemClock::shared()),
            subs: HashMap::new(),
        }
    }

    /// Pushes `view` to every subscriber (dropping ones whose channel
    /// broke) and records it as the server's latest.
    fn publish(&mut self, view: &View, latest: &Mutex<Option<View>>) {
        let encoded = RvMsg::View { view: view.clone() }.encode();
        self.subs.retain(|_, conn| conn.send(&encoded).is_ok());
        *latest.lock().unwrap_or_else(|e| e.into_inner()) = Some(view.clone());
    }
}

/// The assembling (then assembled) world state the serve loop owns.
struct WorldState {
    world: u32,
    pending: Vec<Pending>,
    members: Vec<(u32, String)>,
    /// The sealed bootstrap roster, kept current across rejoins so a
    /// restarted rank re-fetching via `Register` gets live addresses.
    sealed: Vec<(u32, String)>,
    roster: Option<RvMsg>,
    membership: Option<ServerMembership>,
}

fn serve(
    listener: &SciListener,
    world: u32,
    cfg: &MembershipConfig,
    shutdown: &Arc<AtomicBool>,
    complete: &AtomicBool,
    telemetry: &Mutex<HashMap<u32, String>>,
    latest_view: &Mutex<Option<View>>,
) {
    let mut st = WorldState {
        world,
        pending: Vec::new(),
        members: Vec::new(),
        sealed: Vec::new(),
        roster: None,
        membership: None,
    };
    // Frames are read off the accept loop: a connection that never sends
    // one (port scanner, health probe) must cost the world nothing but
    // one short-lived reader thread — not REGISTER_TIMEOUT of everyone
    // else's registration latency. Subscriber connections keep their
    // reader looping, forwarding heartbeats/leaves on the same channel.
    let (tx, rx) = std::sync::mpsc::channel::<(Arc<SciConnection>, RvMsg)>();
    // Membership gives the loop a second duty (detector sweeps, ack
    // latency), so poll accepts finely enough that a sweep is never more
    // than a quarter-interval late.
    let poll = ACCEPT_POLL
        .min(cfg.heartbeat_interval / 4)
        .max(Duration::from_millis(5));
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept_timeout(poll) {
            Ok(conn) => {
                let tx = tx.clone();
                let sd = Arc::clone(shutdown);
                std::thread::spawn(move || read_frames(conn, &tx, &sd));
            }
            Err(TransportError::Timeout) => {}
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
        while let Ok((conn, msg)) = rx.try_recv() {
            dispatch(conn, msg, cfg, &mut st, complete, telemetry, latest_view);
        }
        // Failure-detector sweep: anyone silent past the death threshold
        // leaves the view here.
        if let Some(m) = st.membership.as_mut() {
            if let Some(view) = m.table.tick() {
                for dead in &view.dead {
                    m.subs.remove(dead);
                }
                m.publish(&view, latest_view);
            }
        }
    }
}

/// Reads framed `RvMsg`s off one accepted connection and forwards them to
/// the serve loop. Exits after the first frame unless it opened a
/// subscription, in which case the connection is long-lived and every
/// subsequent frame (heartbeats, leaves) is forwarded as it arrives.
fn read_frames(
    conn: SciConnection,
    tx: &std::sync::mpsc::Sender<(Arc<SciConnection>, RvMsg)>,
    shutdown: &AtomicBool,
) {
    let conn = Arc::new(conn);
    let Ok(frame) = conn.recv_timeout(REGISTER_TIMEOUT) else {
        return; // silent connection: drop it
    };
    let Ok(msg) = RvMsg::decode(&frame) else {
        return; // not speaking the protocol
    };
    let long_lived = matches!(msg, RvMsg::Subscribe { .. });
    if tx.send((Arc::clone(&conn), msg)).is_err() {
        return;
    }
    if !long_lived {
        return;
    }
    while !shutdown.load(Ordering::Acquire) {
        match conn.recv_timeout(SUBSCRIBER_POLL) {
            Ok(frame) => {
                let Ok(msg) = RvMsg::decode(&frame) else {
                    continue;
                };
                if tx.send((Arc::clone(&conn), msg)).is_err() {
                    return;
                }
            }
            Err(TransportError::Timeout) => {}
            Err(_) => return, // subscriber hung up (or died)
        }
    }
}

/// Routes one decoded frame to its handler.
fn dispatch(
    conn: Arc<SciConnection>,
    msg: RvMsg,
    cfg: &MembershipConfig,
    st: &mut WorldState,
    complete: &AtomicBool,
    telemetry: &Mutex<HashMap<u32, String>>,
    latest_view: &Mutex<Option<View>>,
) {
    match msg {
        RvMsg::Telemetry { rank, json } => {
            // A rank's shutdown snapshot: stash it for the launcher's
            // world aggregation and acknowledge so the rank may exit.
            telemetry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(rank, json);
            let _ = conn.send(&RvMsg::TelemetryAck.encode());
        }
        RvMsg::Subscribe { rank, .. } => {
            if rank >= st.world {
                return;
            }
            let m = st
                .membership
                .get_or_insert_with(|| ServerMembership::new(st.world, cfg));
            m.table.track(rank);
            m.subs.insert(rank, Arc::clone(&conn));
            // Hand the newcomer the current view at once (epoch 0 — the
            // pre-seal empty view — is discarded client-side).
            let view = m.table.current().clone();
            let _ = conn.send(&RvMsg::View { view }.encode());
        }
        RvMsg::Heartbeat { rank, seq, nanos } => {
            if let Some(m) = st.membership.as_mut() {
                m.table.heartbeat(rank);
                let ack = RvMsg::HeartbeatAck {
                    seq,
                    nanos,
                    view: m.table.current().id,
                    suspects: m.table.suspects().len() as u32,
                };
                let _ = conn.send(&ack.encode());
            }
        }
        RvMsg::Leave { rank } => {
            if let Some(m) = st.membership.as_mut() {
                m.subs.remove(&rank);
                if let Some(view) = m.table.leave(rank) {
                    m.publish(&view, latest_view);
                }
            }
        }
        RvMsg::Rejoin {
            version,
            world: w,
            rank,
            addr,
            incarnation,
        } => handle_rejoin(
            &conn,
            (version, w, rank, addr, incarnation),
            cfg,
            st,
            latest_view,
        ),
        other => handle_register(conn, other, st, complete, cfg, latest_view),
    }
}

/// Processes one decoded registration against the assembling world.
fn handle_register(
    conn: Arc<SciConnection>,
    reg: RvMsg,
    st: &mut WorldState,
    complete: &AtomicBool,
    cfg: &MembershipConfig,
    latest_view: &Mutex<Option<View>>,
) {
    let RvMsg::Register {
        version,
        world: w,
        rank,
        addr,
    } = reg
    else {
        return;
    };
    let reject = |conn: &SciConnection, reason: String| {
        let _ = conn.send(&RvMsg::Reject { reason }.encode());
    };
    if version != PROTOCOL_VERSION {
        reject(
            &conn,
            format!("protocol version {version} (server speaks {PROTOCOL_VERSION})"),
        );
        return;
    }
    if w != st.world {
        reject(
            &conn,
            format!("world size {w} (server expects {})", st.world),
        );
        return;
    }
    if rank >= st.world {
        reject(
            &conn,
            format!("rank {rank} out of range (world {})", st.world),
        );
        return;
    }
    if let Some(r) = &st.roster {
        // World already assembled: a valid identity re-fetching the
        // roster (restart, late diagnostic client) gets it at once.
        let _ = conn.send(&r.encode());
        return;
    }
    if st.pending.iter().any(|p| p.rank == rank) {
        reject(&conn, format!("duplicate rank {rank}"));
        return;
    }
    st.pending.push(Pending { rank, conn });
    st.members.push((rank, addr));
    if st.members.len() == st.world as usize {
        st.members.sort_by_key(|&(r, _)| r);
        st.sealed = std::mem::take(&mut st.members);
        let msg = RvMsg::Roster {
            world: st.world,
            members: st.sealed.clone(),
        };
        // Mark complete before the broadcast: a rank that receives the
        // roster may immediately probe `roster_complete()` (or act on
        // it), and must never observe the flag lagging the send.
        complete.store(true, Ordering::Release);
        let encoded = msg.encode();
        for p in st.pending.drain(..) {
            let _ = p.conn.send(&encoded);
        }
        st.roster = Some(msg);
        // The sealed roster is membership epoch 1. Subscribers that
        // raced ahead of the seal get the seed view pushed now.
        let m = st
            .membership
            .get_or_insert_with(|| ServerMembership::new(st.world, cfg));
        if m.table.current().id == 0 {
            let seed = m.table.seed(&st.sealed).clone();
            m.publish(&seed, latest_view);
        }
    }
}

/// Processes a replacement rank re-adopting a (dead or vacated) slot.
fn handle_rejoin(
    conn: &SciConnection,
    req: (u32, u32, u32, String, u32),
    cfg: &MembershipConfig,
    st: &mut WorldState,
    latest_view: &Mutex<Option<View>>,
) {
    let (version, w, rank, addr, incarnation) = req;
    let reject = |reason: String| {
        let _ = conn.send(&RvMsg::Reject { reason }.encode());
    };
    if version != PROTOCOL_VERSION {
        reject(format!(
            "protocol version {version} (server speaks {PROTOCOL_VERSION})"
        ));
        return;
    }
    if w != st.world {
        reject(format!("world size {w} (server expects {})", st.world));
        return;
    }
    if rank >= st.world {
        reject(format!("rank {rank} out of range (world {})", st.world));
        return;
    }
    if st.roster.is_none() {
        reject("world not yet assembled — rejoin needs a sealed roster".into());
        return;
    }
    let m = st
        .membership
        .get_or_insert_with(|| ServerMembership::new(st.world, cfg));
    if m.table.current().id == 0 {
        let seed = m.table.seed(&st.sealed).clone();
        m.publish(&seed, latest_view);
    }
    let replay = match m.table.join(rank, &addr, incarnation) {
        Some(view) => {
            // Keep the cached roster pointing at the live occupant so a
            // later `Register` re-fetch gets the replacement's address.
            if let Some(slot) = st.sealed.iter_mut().find(|(r, _)| *r == rank) {
                slot.1 = addr;
            }
            st.roster = Some(RvMsg::Roster {
                world: st.world,
                members: st.sealed.clone(),
            });
            m.publish(&view, latest_view);
            view
        }
        // Idempotent retry: the slot already holds this occupant.
        None => m.table.current().clone(),
    };
    let _ = conn.send(&RvMsg::Replay { view: replay }.encode());
}

/// Registers `(rank, my_addr)` with the rendezvous service at `ncsd` and
/// blocks for the world roster.
///
/// Dials with bounded retry/backoff ([`sci::connect_retry`]) — the
/// service may itself still be starting — then waits up to `timeout` for
/// the roster (i.e. for every other rank to register too).
///
/// # Errors
///
/// [`ClusterError::Rendezvous`] when the service rejects the
/// registration or answers nonsense; [`ClusterError::Transport`] /
/// [`ClusterError::Timeout`] for connection failures.
pub fn register(
    ncsd: SocketAddr,
    rank: u32,
    world: u32,
    my_addr: SocketAddr,
    timeout: Duration,
) -> Result<Roster, ClusterError> {
    // One budget for the whole exchange: whatever the dial consumes is no
    // longer available for the roster wait.
    let deadline = Instant::now() + timeout;
    let conn = sci::connect_retry(ncsd, timeout)?;
    conn.send(
        &RvMsg::Register {
            version: PROTOCOL_VERSION,
            world,
            rank,
            addr: my_addr.to_string(),
        }
        .encode(),
    )?;
    let left = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    let frame = conn.recv_timeout(left).map_err(|e| match e {
        TransportError::Timeout => ClusterError::Timeout(format!(
            "no roster within {timeout:?} — are all {world} ranks running?"
        )),
        other => ClusterError::Transport(other),
    })?;
    match RvMsg::decode(&frame).map_err(|e| ClusterError::Rendezvous(e.to_string()))? {
        RvMsg::Roster { world: w, members } => {
            Roster::from_members(w, &members).map_err(|e| ClusterError::Rendezvous(e.to_string()))
        }
        RvMsg::Reject { reason } => Err(ClusterError::Rendezvous(format!(
            "registration rejected: {reason}"
        ))),
        other => Err(ClusterError::Rendezvous(format!(
            "server answered with an unexpected frame: {other:?}"
        ))),
    }
}

/// Pushes one rank's telemetry snapshot to the rendezvous service and
/// waits for the acknowledgement. Used by [`ClusterNode::shutdown`]
/// (when telemetry push is enabled) so `ncs-launch --telemetry` can
/// aggregate the world view after the ranks exit.
///
/// # Errors
///
/// [`ClusterError::Transport`] / [`ClusterError::Timeout`] for dial and
/// I/O failures; [`ClusterError::Rendezvous`] if the service answers
/// anything but an ack.
///
/// [`ClusterNode::shutdown`]: crate::ClusterNode::shutdown
pub fn push_telemetry(
    ncsd: SocketAddr,
    rank: u32,
    json: &str,
    timeout: Duration,
) -> Result<(), ClusterError> {
    let conn = sci::connect_retry(ncsd, timeout)?;
    conn.send(
        &RvMsg::Telemetry {
            rank,
            json: json.to_owned(),
        }
        .encode(),
    )?;
    let frame = conn.recv_timeout(timeout).map_err(|e| match e {
        TransportError::Timeout => ClusterError::Timeout("no telemetry ack".into()),
        other => ClusterError::Transport(other),
    })?;
    match RvMsg::decode(&frame).map_err(|e| ClusterError::Rendezvous(e.to_string()))? {
        RvMsg::TelemetryAck => Ok(()),
        other => Err(ClusterError::Rendezvous(format!(
            "telemetry push answered with {other:?}"
        ))),
    }
}

/// Re-adopts rank slot `rank` for a replacement process: registers
/// `(rank, my_addr, incarnation)` with the membership service at `ncsd`
/// and blocks for the state replay — the current [`View`], which carries
/// every live member's address and is all the replacement needs to
/// re-mesh.
///
/// # Errors
///
/// [`ClusterError::Rendezvous`] when the service refuses the slot (bad
/// version/world/rank, roster not yet sealed);
/// [`ClusterError::Transport`] / [`ClusterError::Timeout`] for
/// connection failures.
pub fn rejoin(
    ncsd: SocketAddr,
    rank: u32,
    world: u32,
    my_addr: SocketAddr,
    incarnation: u32,
    timeout: Duration,
) -> Result<View, ClusterError> {
    let deadline = Instant::now() + timeout;
    let conn = sci::connect_retry(ncsd, timeout)?;
    conn.send(
        &RvMsg::Rejoin {
            version: PROTOCOL_VERSION,
            world,
            rank,
            addr: my_addr.to_string(),
            incarnation,
        }
        .encode(),
    )?;
    let left = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    let frame = conn.recv_timeout(left).map_err(|e| match e {
        TransportError::Timeout => {
            ClusterError::Timeout(format!("no rejoin replay within {timeout:?}"))
        }
        other => ClusterError::Transport(other),
    })?;
    match RvMsg::decode(&frame).map_err(|e| ClusterError::Rendezvous(e.to_string()))? {
        RvMsg::Replay { view } => Ok(view),
        RvMsg::Reject { reason } => Err(ClusterError::Rendezvous(format!(
            "rejoin rejected: {reason}"
        ))),
        other => Err(ClusterError::Rendezvous(format!(
            "rejoin answered with an unexpected frame: {other:?}"
        ))),
    }
}

/// Announces a graceful departure of `rank` to the membership service.
/// Fire-and-forget: the view change propagates to the remaining
/// subscribers; the leaver does not wait for it.
///
/// # Errors
///
/// [`ClusterError::Transport`] when the service cannot be reached.
pub fn leave(ncsd: SocketAddr, rank: u32, timeout: Duration) -> Result<(), ClusterError> {
    let conn = sci::connect_retry(ncsd, timeout)?;
    conn.send(&RvMsg::Leave { rank }.encode())?;
    Ok(())
}
