//! The rendezvous service (`ncsd`): where ranks meet.
//!
//! N processes that should form one NCS world know nothing about each
//! other except one address — the rendezvous service's. Each rank binds
//! its own SCI listener, registers `(rank, listener address)` here, and
//! blocks until the service has seen the whole world; the service then
//! sends every rank the complete roster and the ranks wire themselves up
//! directly (the service is *not* on the data path — the same shape as
//! the lightweight bootstraps of MPWide-style cluster tools).
//!
//! The service is deliberately tiny: one thread, framed SCI messages
//! ([`crate::wire::RvMsg`]), strict validation (protocol version, world
//! size, rank range, duplicates). It can run standalone (the `ncsd`
//! binary), embedded in a launcher ([`mod@crate::launch`]), or embedded in
//! rank 0 of an application.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ncs_transport::sci::{self, SciConnection, SciListener};
use ncs_transport::{Connection as _, TransportError};

use crate::cluster::ClusterError;
use crate::wire::{Roster, RvMsg, PROTOCOL_VERSION};

/// How long the server waits for the `Register` frame of a freshly
/// accepted connection before dropping it (a port-scanner, not a rank).
const REGISTER_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept poll granularity (bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(100);

/// An embedded rendezvous service for one world.
///
/// Runs on a background thread from [`RendezvousServer::start`] until
/// dropped (or [`RendezvousServer::stop`]). Once the `world`-th rank has
/// registered, the roster goes out to every registered rank; later
/// registrations with a valid identity (e.g. a restarted rank re-fetching)
/// are answered with the same roster immediately.
pub struct RendezvousServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    complete: Arc<AtomicBool>,
    /// Telemetry snapshots pushed by ranks ([`RvMsg::Telemetry`]),
    /// keyed by rank; the latest push wins.
    telemetry: Arc<Mutex<HashMap<u32, String>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RendezvousServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RendezvousServer")
            .field("addr", &self.addr)
            .field("complete", &self.complete.load(Ordering::Relaxed))
            .finish()
    }
}

impl RendezvousServer {
    /// Binds `listen` (use port 0 for an ephemeral port) and starts
    /// serving a world of `world` ranks.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for a zero world, otherwise socket errors.
    pub fn start(listen: &str, world: u32) -> Result<Self, ClusterError> {
        if world == 0 {
            return Err(ClusterError::Config("world size must be positive".into()));
        }
        let listener = SciListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let complete = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(Mutex::new(HashMap::new()));
        let sd = Arc::clone(&shutdown);
        let cp = Arc::clone(&complete);
        let tl = Arc::clone(&telemetry);
        let handle = std::thread::Builder::new()
            .name("ncsd".into())
            .spawn(move || serve(&listener, world, &sd, &cp, &tl))
            .expect("spawn ncsd thread");
        Ok(RendezvousServer {
            addr,
            shutdown,
            complete,
            telemetry,
            handle: Some(handle),
        })
    }

    /// The address ranks should register at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the roster has been assembled and broadcast.
    pub fn roster_complete(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }

    /// Blocks until the roster went out, or `timeout`. Returns whether it
    /// did.
    pub fn wait_complete(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.roster_complete() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// The telemetry snapshots ranks have pushed so far, keyed by rank
    /// (the JSON payloads of [`RvMsg::Telemetry`], latest push per rank).
    pub fn telemetry_snapshots(&self) -> HashMap<u32, String> {
        self.telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Stops the service. Idempotent; called by `Drop`.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RendezvousServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One registered rank, held open until the roster goes out.
struct Pending {
    rank: u32,
    conn: SciConnection,
}

fn serve(
    listener: &SciListener,
    world: u32,
    shutdown: &AtomicBool,
    complete: &AtomicBool,
    telemetry: &Mutex<HashMap<u32, String>>,
) {
    let mut pending: Vec<Pending> = Vec::new();
    let mut members: Vec<(u32, String)> = Vec::new();
    let mut roster: Option<RvMsg> = None;
    // Register frames are read off the accept loop: a connection that
    // never sends one (port scanner, health probe) must cost the world
    // nothing but one short-lived reader thread — not REGISTER_TIMEOUT of
    // everyone else's registration latency.
    let (reg_tx, reg_rx) = std::sync::mpsc::channel::<(SciConnection, RvMsg)>();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept_timeout(ACCEPT_POLL) {
            Ok(conn) => {
                let tx = reg_tx.clone();
                std::thread::spawn(move || {
                    let Ok(frame) = conn.recv_timeout(REGISTER_TIMEOUT) else {
                        return; // silent connection: drop it
                    };
                    let Ok(msg) = RvMsg::decode(&frame) else {
                        return; // not speaking the protocol
                    };
                    let _ = tx.send((conn, msg));
                });
            }
            Err(TransportError::Timeout) => {}
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
        while let Ok((conn, reg)) = reg_rx.try_recv() {
            match reg {
                RvMsg::Telemetry { rank, json } => {
                    // A rank's shutdown snapshot: stash it for the
                    // launcher's world aggregation and acknowledge so the
                    // rank may exit.
                    telemetry
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(rank, json);
                    let _ = conn.send(&RvMsg::TelemetryAck.encode());
                }
                other => handle_register(
                    conn,
                    other,
                    world,
                    &mut pending,
                    &mut members,
                    &mut roster,
                    complete,
                ),
            }
        }
    }
}

/// Processes one decoded registration against the assembling world.
fn handle_register(
    conn: SciConnection,
    reg: RvMsg,
    world: u32,
    pending: &mut Vec<Pending>,
    members: &mut Vec<(u32, String)>,
    roster: &mut Option<RvMsg>,
    complete: &AtomicBool,
) {
    let RvMsg::Register {
        version,
        world: w,
        rank,
        addr,
    } = reg
    else {
        return;
    };
    let reject = |conn: &SciConnection, reason: String| {
        let _ = conn.send(&RvMsg::Reject { reason }.encode());
    };
    if version != PROTOCOL_VERSION {
        reject(
            &conn,
            format!("protocol version {version} (server speaks {PROTOCOL_VERSION})"),
        );
        return;
    }
    if w != world {
        reject(&conn, format!("world size {w} (server expects {world})"));
        return;
    }
    if rank >= world {
        reject(&conn, format!("rank {rank} out of range (world {world})"));
        return;
    }
    if let Some(r) = &*roster {
        // World already assembled: a valid identity re-fetching the
        // roster (restart, late diagnostic client) gets it at once.
        let _ = conn.send(&r.encode());
        return;
    }
    if pending.iter().any(|p| p.rank == rank) {
        reject(&conn, format!("duplicate rank {rank}"));
        return;
    }
    pending.push(Pending { rank, conn });
    members.push((rank, addr));
    if members.len() == world as usize {
        members.sort_by_key(|&(r, _)| r);
        let msg = RvMsg::Roster {
            world,
            members: std::mem::take(members),
        };
        let encoded = msg.encode();
        for p in pending.drain(..) {
            let _ = p.conn.send(&encoded);
        }
        *roster = Some(msg);
        complete.store(true, Ordering::Release);
    }
}

/// Registers `(rank, my_addr)` with the rendezvous service at `ncsd` and
/// blocks for the world roster.
///
/// Dials with bounded retry/backoff ([`sci::connect_retry`]) — the
/// service may itself still be starting — then waits up to `timeout` for
/// the roster (i.e. for every other rank to register too).
///
/// # Errors
///
/// [`ClusterError::Rendezvous`] when the service rejects the
/// registration or answers nonsense; [`ClusterError::Transport`] /
/// [`ClusterError::Timeout`] for connection failures.
pub fn register(
    ncsd: SocketAddr,
    rank: u32,
    world: u32,
    my_addr: SocketAddr,
    timeout: Duration,
) -> Result<Roster, ClusterError> {
    // One budget for the whole exchange: whatever the dial consumes is no
    // longer available for the roster wait.
    let deadline = Instant::now() + timeout;
    let conn = sci::connect_retry(ncsd, timeout)?;
    conn.send(
        &RvMsg::Register {
            version: PROTOCOL_VERSION,
            world,
            rank,
            addr: my_addr.to_string(),
        }
        .encode(),
    )?;
    let left = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    let frame = conn.recv_timeout(left).map_err(|e| match e {
        TransportError::Timeout => ClusterError::Timeout(format!(
            "no roster within {timeout:?} — are all {world} ranks running?"
        )),
        other => ClusterError::Transport(other),
    })?;
    match RvMsg::decode(&frame).map_err(|e| ClusterError::Rendezvous(e.to_string()))? {
        RvMsg::Roster { world: w, members } => {
            Roster::from_members(w, &members).map_err(|e| ClusterError::Rendezvous(e.to_string()))
        }
        RvMsg::Reject { reason } => Err(ClusterError::Rendezvous(format!(
            "registration rejected: {reason}"
        ))),
        other => Err(ClusterError::Rendezvous(format!(
            "server answered with an unexpected frame: {other:?}"
        ))),
    }
}

/// Pushes one rank's telemetry snapshot to the rendezvous service and
/// waits for the acknowledgement. Used by [`ClusterNode::shutdown`]
/// (when telemetry push is enabled) so `ncs-launch --telemetry` can
/// aggregate the world view after the ranks exit.
///
/// # Errors
///
/// [`ClusterError::Transport`] / [`ClusterError::Timeout`] for dial and
/// I/O failures; [`ClusterError::Rendezvous`] if the service answers
/// anything but an ack.
///
/// [`ClusterNode::shutdown`]: crate::ClusterNode::shutdown
pub fn push_telemetry(
    ncsd: SocketAddr,
    rank: u32,
    json: &str,
    timeout: Duration,
) -> Result<(), ClusterError> {
    let conn = sci::connect_retry(ncsd, timeout)?;
    conn.send(
        &RvMsg::Telemetry {
            rank,
            json: json.to_owned(),
        }
        .encode(),
    )?;
    let frame = conn.recv_timeout(timeout).map_err(|e| match e {
        TransportError::Timeout => ClusterError::Timeout("no telemetry ack".into()),
        other => ClusterError::Transport(other),
    })?;
    match RvMsg::decode(&frame).map_err(|e| ClusterError::Rendezvous(e.to_string()))? {
        RvMsg::TelemetryAck => Ok(()),
        other => Err(ClusterError::Rendezvous(format!(
            "telemetry push answered with {other:?}"
        ))),
    }
}
