//! Local process launching: the machinery behind `ncs-launch`.
//!
//! Spawns `np` ranks of a command on this machine, wires their
//! environment ([`crate::cluster::env`]) to an embedded — or external —
//! rendezvous service, multiplexes child stdout/stderr onto the parent's
//! with `[rank N]` prefixes (optionally teeing per-rank log files), and
//! reaps everything under a hard deadline so a hung rank can never hang
//! the launcher.

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::cluster::{env, ClusterError};
use crate::rendezvous::RendezvousServer;

/// Reap poll granularity.
const REAP_POLL: Duration = Duration::from_millis(50);

/// What to launch and how.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Number of ranks to spawn.
    pub np: u32,
    /// The command (program + arguments) every rank runs.
    pub command: Vec<String>,
    /// External rendezvous service to use; `None` embeds one for the
    /// launch.
    pub ncsd: Option<SocketAddr>,
    /// Hard deadline for the whole world; survivors are killed when it
    /// expires.
    pub timeout: Duration,
    /// When set, rank output is additionally teed to per-rank files in
    /// this directory: `rank<N>.log` (stdout) and `rank<N>.err.log`
    /// (stderr).
    pub log_dir: Option<PathBuf>,
    /// Collect the telemetry plane: ranks publish their final metrics +
    /// flight-recorder dump (pushed to the rendezvous service and, with a
    /// [`LaunchSpec::log_dir`], written per rank to
    /// `rank<N>.telemetry.json` wrapped with the exit cause), and the
    /// launcher merges them into one world snapshot
    /// ([`LaunchReport::telemetry`], also `telemetry.json` in the log
    /// dir).
    pub telemetry: bool,
    /// Self-healing worlds: when a rank exits nonzero (or dies to a
    /// signal), respawn it into the same slot with a bumped
    /// [`env::INCARNATION`] (up to [`MAX_RESPAWNS`] times per rank)
    /// instead of recording the death. The respawned process sees a
    /// nonzero incarnation and is expected to `ClusterNode::rejoin` the
    /// running world rather than bootstrap it. Ranks exiting zero are
    /// finished, never respawned.
    pub respawn_dead: bool,
}

/// Respawn budget per rank slot under [`LaunchSpec::respawn_dead`] — a
/// crash-looping rank must eventually fail the launch rather than churn
/// forever.
pub const MAX_RESPAWNS: u32 = 3;

impl LaunchSpec {
    /// A spec running `command` on `np` local ranks with a 120 s deadline
    /// and an embedded rendezvous service.
    pub fn new(np: u32, command: Vec<String>) -> Self {
        LaunchSpec {
            np,
            command,
            ncsd: None,
            timeout: Duration::from_secs(120),
            log_dir: None,
            telemetry: false,
            respawn_dead: false,
        }
    }
}

/// One rank's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankExit {
    /// The rank.
    pub rank: u32,
    /// Its exit code; `None` when it was killed at the deadline or died
    /// to a signal.
    pub code: Option<i32>,
}

/// The outcome of a launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchReport {
    /// Every rank's exit, ordered by rank.
    pub exits: Vec<RankExit>,
    /// Whether the deadline expired before every rank exited.
    pub timed_out: bool,
    /// The merged world telemetry snapshot (schema `ncs-telemetry/1`)
    /// when [`LaunchSpec::telemetry`] was set: every rank's final
    /// metrics + flight dump under one `"ranks"` array (`null` entries
    /// for ranks that died before publishing).
    pub telemetry: Option<String>,
}

impl LaunchReport {
    /// Whether every rank exited zero within the deadline.
    pub fn success(&self) -> bool {
        !self.timed_out && self.exits.iter().all(|e| e.code == Some(0))
    }

    /// The exit code the launcher should propagate: 0 on success, the
    /// first failing rank's code otherwise, 124 for a timeout (the
    /// `timeout(1)` convention).
    pub fn exit_code(&self) -> i32 {
        if self.timed_out {
            return 124;
        }
        self.exits
            .iter()
            .find_map(|e| match e.code {
                Some(0) => None,
                Some(c) => Some(c),
                None => Some(1),
            })
            .unwrap_or(0)
    }
}

/// A reader thread pumping one child stream to the parent's, line by
/// line, with a rank prefix (and an optional tee file).
fn pump_stream<R: std::io::Read + Send + 'static>(
    rank: u32,
    stream: R,
    to_stderr: bool,
    tee: Option<std::fs::File>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut tee = tee;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if let Some(f) = &mut tee {
                let _ = writeln!(f, "{line}");
            }
            if to_stderr {
                eprintln!("[rank {rank}] {line}");
            } else {
                println!("[rank {rank}] {line}");
            }
        }
    })
}

struct Running {
    rank: u32,
    child: Child,
    pumps: Vec<std::thread::JoinHandle<()>>,
    killed: bool,
    /// Which incarnation of the rank slot this process is (respawns bump
    /// it; the value is handed down via [`env::INCARNATION`]).
    incarnation: u32,
    respawns_left: u32,
}

/// Spawns one rank process with the world environment. `incarnation` is
/// zero for the initial launch; respawns pass the bumped value (and the
/// log tees switch to append so the death's evidence survives).
fn spawn_rank(
    spec: &LaunchSpec,
    program: &str,
    args: &[String],
    ncsd: SocketAddr,
    rank: u32,
    incarnation: u32,
) -> Result<Running, ClusterError> {
    let mut cmd = Command::new(program);
    cmd.args(args)
        .env(env::RANK, rank.to_string())
        .env(env::WORLD, spec.np.to_string())
        .env(env::NCSD, ncsd.to_string())
        .env(env::INCARNATION, incarnation.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if spec.telemetry {
        cmd.env(ncs_obs::postmortem::TELEMETRY_PUSH_ENV, "1");
        if let Some(dir) = &spec.log_dir {
            cmd.env(
                ncs_obs::postmortem::TELEMETRY_FILE_ENV,
                rank_telemetry_path(dir, rank),
            );
        }
    }
    let mut child = cmd.spawn().map_err(|e| {
        ClusterError::Config(format!("cannot spawn '{program}' for rank {rank}: {e}"))
    })?;
    let tee = |suffix: &str| {
        let path = spec
            .log_dir
            .as_ref()?
            .join(format!("rank{rank}{suffix}.log"));
        let opened = if incarnation == 0 {
            std::fs::File::create(&path)
        } else {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
        };
        match opened {
            Ok(f) => Some(f),
            Err(e) => {
                // The log files exist to diagnose failed runs; losing
                // them must at least be loud.
                eprintln!("ncs-launch: cannot create {}: {e}", path.display());
                None
            }
        }
    };
    let mut pumps = Vec::new();
    if let Some(out) = child.stdout.take() {
        pumps.push(pump_stream(rank, out, false, tee("")));
    }
    if let Some(errs) = child.stderr.take() {
        pumps.push(pump_stream(rank, errs, true, tee(".err")));
    }
    Ok(Running {
        rank,
        child,
        pumps,
        killed: false,
        incarnation,
        respawns_left: if spec.respawn_dead { MAX_RESPAWNS } else { 0 },
    })
}

/// Where rank `rank`'s telemetry lands when a log dir is in play.
fn rank_telemetry_path(dir: &std::path::Path, rank: u32) -> PathBuf {
    dir.join(format!("rank{rank}.telemetry.json"))
}

/// Accepts a rank's file dump only when it plausibly survived the exit
/// intact — a rank killed mid-write leaves a truncated object that would
/// corrupt everything we splice it into.
fn intact_json_object(s: &str) -> Option<&str> {
    let t = s.trim();
    (t.starts_with('{') && t.ends_with('}')).then_some(t)
}

/// Launches the world and blocks until every rank exited or the deadline
/// expired (stragglers are killed).
///
/// # Errors
///
/// [`ClusterError::Config`] for an empty command or zero `np`; spawn
/// failures surface as [`ClusterError::Config`] too (bad program path is
/// a configuration problem, not a runtime one).
pub fn launch(spec: &LaunchSpec) -> Result<LaunchReport, ClusterError> {
    if spec.np == 0 {
        return Err(ClusterError::Config("--np must be positive".into()));
    }
    let Some((program, args)) = spec.command.split_first() else {
        return Err(ClusterError::Config("no command to launch".into()));
    };
    // The rendezvous service every rank will meet at.
    let mut embedded: Option<RendezvousServer> = None;
    let ncsd = match spec.ncsd {
        Some(addr) => addr,
        None => {
            let server = RendezvousServer::start("127.0.0.1:0", spec.np)?;
            let addr = server.addr();
            embedded = Some(server);
            addr
        }
    };
    if let Some(dir) = &spec.log_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| ClusterError::Config(format!("cannot create log dir: {e}")))?;
    }

    let mut world: Vec<Running> = Vec::with_capacity(spec.np as usize);
    for rank in 0..spec.np {
        match spawn_rank(spec, program, args, ncsd, rank, 0) {
            Ok(r) => world.push(r),
            Err(e) => {
                // Kill what we already spawned: a half-world would hang on
                // rendezvous until its own timeout.
                for r in &mut world {
                    let _ = r.child.kill();
                }
                return Err(e);
            }
        }
    }

    // Reap under the deadline.
    let deadline = Instant::now() + spec.timeout;
    let mut exits: Vec<Option<RankExit>> = (0..spec.np).map(|_| None).collect();
    let mut timed_out = false;
    loop {
        let mut all_done = true;
        for r in &mut world {
            if exits[r.rank as usize].is_some() {
                continue;
            }
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    let code = status.code();
                    // Self-healing: a dead (nonzero/signalled) rank with
                    // respawn budget left rejoins the world as the next
                    // incarnation instead of ending the run.
                    if code != Some(0) && r.respawns_left > 0 && Instant::now() < deadline {
                        for p in r.pumps.drain(..) {
                            let _ = p.join();
                        }
                        r.respawns_left -= 1;
                        r.incarnation += 1;
                        eprintln!(
                            "ncs-launch: rank {} died (exit {:?}); respawning as incarnation {}",
                            r.rank, code, r.incarnation
                        );
                        match spawn_rank(spec, program, args, ncsd, r.rank, r.incarnation) {
                            Ok(fresh) => {
                                r.child = fresh.child;
                                r.pumps = fresh.pumps;
                                all_done = false;
                            }
                            Err(e) => {
                                eprintln!("ncs-launch: respawn of rank {} failed: {e}", r.rank);
                                exits[r.rank as usize] = Some(RankExit { rank: r.rank, code });
                            }
                        }
                    } else {
                        exits[r.rank as usize] = Some(RankExit { rank: r.rank, code });
                    }
                }
                Ok(None) => all_done = false,
                Err(_) => {
                    exits[r.rank as usize] = Some(RankExit {
                        rank: r.rank,
                        code: None,
                    });
                }
            }
        }
        if all_done {
            break;
        }
        if Instant::now() >= deadline {
            timed_out = true;
            for r in &mut world {
                if exits[r.rank as usize].is_none() {
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    r.killed = true;
                    exits[r.rank as usize] = Some(RankExit {
                        rank: r.rank,
                        code: None,
                    });
                }
            }
            break;
        }
        std::thread::sleep(REAP_POLL);
    }
    let killed: Vec<bool> = world.iter().map(|r| r.killed).collect();
    for r in world {
        // A killed rank's grandchildren may hold its output pipe open
        // indefinitely; detach those pumps instead of joining (they exit
        // when the pipe finally closes).
        if r.killed {
            continue;
        }
        for p in r.pumps {
            let _ = p.join();
        }
    }
    let exits: Vec<RankExit> = exits.into_iter().map(|e| e.expect("all reaped")).collect();

    // Telemetry aggregation: prefer the dump each rank pushed to the
    // embedded rendezvous service (exact final state), fall back to the
    // file it wrote, then wrap the per-rank file with the exit cause and
    // merge everything into one world snapshot.
    let telemetry = if spec.telemetry {
        let pushed = embedded
            .as_ref()
            .map(|s| s.telemetry_snapshots())
            .unwrap_or_default();
        let mut ranks = Vec::with_capacity(exits.len());
        for e in &exits {
            let file_dump = spec
                .log_dir
                .as_ref()
                .and_then(|d| std::fs::read_to_string(rank_telemetry_path(d, e.rank)).ok());
            let dump = pushed.get(&e.rank).cloned().or_else(|| {
                file_dump
                    .as_deref()
                    .and_then(intact_json_object)
                    .map(str::to_owned)
            });
            if let Some(dir) = &spec.log_dir {
                let wrapped = format!(
                    "{{\"rank\":{},\"exit_code\":{},\"killed\":{},\"telemetry\":{}}}",
                    e.rank,
                    e.code.map_or_else(|| "null".to_owned(), |c| c.to_string()),
                    killed[e.rank as usize],
                    dump.as_deref().unwrap_or("null"),
                );
                let path = rank_telemetry_path(dir, e.rank);
                if let Err(err) = std::fs::write(&path, wrapped) {
                    eprintln!("ncs-launch: cannot write {}: {err}", path.display());
                }
            }
            ranks.push(dump.unwrap_or_else(|| "null".to_owned()));
        }
        let world_view = format!(
            "{{\"schema\":\"ncs-telemetry/1\",\"world\":{},\"ranks\":[{}]}}",
            spec.np,
            ranks.join(",")
        );
        if let Some(dir) = &spec.log_dir {
            let path = dir.join("telemetry.json");
            if let Err(err) = std::fs::write(&path, &world_view) {
                eprintln!("ncs-launch: cannot write {}: {err}", path.display());
            }
        }
        Some(world_view)
    } else {
        None
    };
    drop(embedded);
    Ok(LaunchReport {
        exits,
        timed_out,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_exit_codes() {
        let ok = LaunchReport {
            exits: vec![
                RankExit {
                    rank: 0,
                    code: Some(0),
                },
                RankExit {
                    rank: 1,
                    code: Some(0),
                },
            ],
            timed_out: false,
            telemetry: None,
        };
        assert!(ok.success());
        assert_eq!(ok.exit_code(), 0);
        let failed = LaunchReport {
            exits: vec![
                RankExit {
                    rank: 0,
                    code: Some(0),
                },
                RankExit {
                    rank: 1,
                    code: Some(3),
                },
            ],
            timed_out: false,
            telemetry: None,
        };
        assert!(!failed.success());
        assert_eq!(failed.exit_code(), 3);
        let killed = LaunchReport {
            exits: vec![RankExit {
                rank: 0,
                code: None,
            }],
            timed_out: true,
            telemetry: None,
        };
        assert_eq!(killed.exit_code(), 124);
    }

    #[test]
    fn empty_specs_are_refused() {
        assert!(launch(&LaunchSpec::new(0, vec!["true".into()])).is_err());
        assert!(launch(&LaunchSpec::new(1, vec![])).is_err());
    }

    #[test]
    fn launches_trivial_ranks_and_collects_exits() {
        // Ranks that only echo their identity: exercises env plumbing,
        // prefixed output pumping and the reaper, without NCS traffic.
        let spec = LaunchSpec::new(
            3,
            vec![
                "/bin/sh".into(),
                "-c".into(),
                "echo rank $NCS_RANK of $NCS_WORLD at $NCS_NCSD".into(),
            ],
        );
        let report = launch(&spec).expect("launch");
        assert!(report.success(), "report: {report:?}");
        assert_eq!(report.exits.len(), 3);
    }

    #[test]
    fn respawn_dead_revives_failing_ranks() {
        // Incarnation 0 dies; incarnation 1 exits clean — the respawn
        // policy must turn that into a successful world.
        let cmd = vec![
            "/bin/sh".into(),
            "-c".into(),
            "[ \"$NCS_INCARNATION\" -ge 1 ]".into(),
        ];
        let spec = LaunchSpec {
            respawn_dead: true,
            ..LaunchSpec::new(2, cmd.clone())
        };
        let report = launch(&spec).expect("launch");
        assert!(report.success(), "report: {report:?}");

        // Without the policy the same world fails on first death.
        let report = launch(&LaunchSpec::new(2, cmd)).expect("launch");
        assert!(!report.success());
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn respawn_budget_bounds_crash_loops() {
        let spec = LaunchSpec {
            respawn_dead: true,
            ..LaunchSpec::new(1, vec!["/bin/sh".into(), "-c".into(), "exit 7".into()])
        };
        let t0 = Instant::now();
        let report = launch(&spec).expect("launch");
        assert!(!report.success());
        assert_eq!(report.exit_code(), 7);
        // MAX_RESPAWNS + 1 spawns, not an unbounded churn.
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn deadline_kills_stragglers() {
        let spec = LaunchSpec {
            timeout: Duration::from_millis(300),
            ..LaunchSpec::new(2, vec!["/bin/sh".into(), "-c".into(), "sleep 30".into()])
        };
        let t0 = Instant::now();
        let report = launch(&spec).expect("launch");
        assert!(report.timed_out);
        assert_eq!(report.exit_code(), 124);
        assert!(t0.elapsed() < Duration::from_secs(10));
    }
}
