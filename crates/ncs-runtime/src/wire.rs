//! The cluster bootstrap and membership wire protocol.
//!
//! Three tiny framed exchanges, all carried over SCI (length-prefixed
//! TCP):
//!
//! * **rendezvous** — each rank sends one [`RvMsg::Register`] to `ncsd`
//!   and receives back either the full [`RvMsg::Roster`] (once every rank
//!   of the world has registered) or an [`RvMsg::Reject`];
//! * **membership** — a rank opens a long-lived channel with
//!   [`RvMsg::Subscribe`], pulses [`RvMsg::Heartbeat`]s up it and receives
//!   [`RvMsg::HeartbeatAck`]s and epoch-numbered [`RvMsg::View`]s back; a
//!   replacement rank replays state with [`RvMsg::Rejoin`] /
//!   [`RvMsg::Replay`] (see [`crate::membership`]);
//! * **peer handshake** — the first message on every freshly established
//!   NCS connection between two ranks is a [`ClusterHello`], proving both
//!   sides speak the same protocol version and are the rank the dialer
//!   thinks they are.
//!
//! Everything is hand-encoded big-endian: the protocol must stay readable
//! from any language without a serialisation dependency.

use std::net::SocketAddr;

use crate::membership::{Member, View};

/// Version of the cluster bootstrap protocol. Bumped on any wire change;
/// rendezvous and handshake both refuse mismatched peers outright (a
/// half-understood bootstrap is worse than a failed one). Version 2 added
/// the membership verbs (tags 6–12).
pub const PROTOCOL_VERSION: u32 = 2;

/// Magic prefix of a [`ClusterHello`] frame.
const HELLO_MAGIC: &[u8; 4] = b"NCSW";

/// Decode failures (malformed frame, unknown tag, bad UTF-8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed cluster frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(why: &str) -> WireError {
    WireError(why.to_owned())
}

/// A rendezvous message (rank <-> ncsd).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvMsg {
    /// A rank announcing itself: "I am `rank` of a world of `world`,
    /// reachable at `addr`".
    Register {
        /// The sender's [`PROTOCOL_VERSION`].
        version: u32,
        /// Expected world size (must agree across all ranks and the
        /// server).
        world: u32,
        /// The sender's rank, in `0..world`.
        rank: u32,
        /// The sender's SCI listener address, as `ip:port`.
        addr: String,
    },
    /// The complete world roster, sent to every registered rank once the
    /// last one arrives.
    Roster {
        /// World size.
        world: u32,
        /// `(rank, listener address)` for every member, sorted by rank.
        members: Vec<(u32, String)>,
    },
    /// Registration refused (version/world mismatch, duplicate or
    /// out-of-range rank).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// A rank pushing its telemetry snapshot (the JSON produced by
    /// `Session::telemetry`) to `ncsd`, where `ncs-launch --telemetry`
    /// aggregates the world view.
    Telemetry {
        /// The reporting rank.
        rank: u32,
        /// The rank's telemetry dump (JSON object).
        json: String,
    },
    /// Acknowledgement of a [`RvMsg::Telemetry`] push (lets the rank
    /// shut down knowing the snapshot landed).
    TelemetryAck,
    /// Opens a rank's long-lived membership channel: the same connection
    /// then carries [`RvMsg::Heartbeat`]s up and [`RvMsg::View`]s /
    /// [`RvMsg::HeartbeatAck`]s down until either side closes it.
    Subscribe {
        /// The subscribing rank.
        rank: u32,
        /// The rank's incarnation (0 at first launch, bumped by the
        /// launcher on every respawn).
        incarnation: u32,
    },
    /// One failure-detector pulse from a rank.
    Heartbeat {
        /// The pulsing rank.
        rank: u32,
        /// Monotonic per-rank pulse counter.
        seq: u64,
        /// The sender's local clock reading (nanoseconds), echoed back in
        /// the ack so the sender can compute the round-trip time without
        /// any clock agreement.
        nanos: u64,
    },
    /// The service's answer to a [`RvMsg::Heartbeat`].
    HeartbeatAck {
        /// The pulse being acknowledged.
        seq: u64,
        /// The sender's clock reading, echoed verbatim.
        nanos: u64,
        /// The current view epoch (lets a rank notice it missed a view).
        view: u64,
        /// How many members the failure detector currently suspects.
        suspects: u32,
    },
    /// An epoch-numbered group view, pushed to every subscriber whenever
    /// membership changes.
    View {
        /// The view.
        view: View,
    },
    /// A rank leaving the world gracefully (rolling restart, scale-down).
    Leave {
        /// The departing rank.
        rank: u32,
    },
    /// A recovering or replacement rank announcing itself: re-adopts
    /// `rank` with a fresh listener address and incarnation, and asks for
    /// the roster + view state replay.
    Rejoin {
        /// The sender's [`PROTOCOL_VERSION`].
        version: u32,
        /// Expected world size.
        world: u32,
        /// The rank being re-adopted.
        rank: u32,
        /// The replacement's SCI listener address, as `ip:port`.
        addr: String,
        /// The replacement's incarnation (must exceed the dead one's).
        incarnation: u32,
    },
    /// The state replay answering a [`RvMsg::Rejoin`]: the post-join view
    /// (which carries every live member's address — the roster the
    /// replacement re-meshes against).
    Replay {
        /// The current view, with the rejoiner already a member.
        view: View,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn get_u32(bytes: &[u8], at: &mut usize) -> Result<u32, WireError> {
    let end = *at + 4;
    let v = bytes
        .get(*at..end)
        .ok_or_else(|| err("truncated u32"))?
        .try_into()
        .expect("4 bytes");
    *at = end;
    Ok(u32::from_be_bytes(v))
}

fn get_u64(bytes: &[u8], at: &mut usize) -> Result<u64, WireError> {
    let end = *at + 8;
    let v = bytes
        .get(*at..end)
        .ok_or_else(|| err("truncated u64"))?
        .try_into()
        .expect("8 bytes");
    *at = end;
    Ok(u64::from_be_bytes(v))
}

/// Encodes a rank list as a u32 count plus the ranks.
fn put_ranks(out: &mut Vec<u8>, ranks: &[u32]) {
    out.extend_from_slice(&(ranks.len() as u32).to_be_bytes());
    for r in ranks {
        out.extend_from_slice(&r.to_be_bytes());
    }
}

fn get_ranks(bytes: &[u8], at: &mut usize) -> Result<Vec<u32>, WireError> {
    let n = get_u32(bytes, at)?;
    if n > 1 << 20 {
        return Err(err("implausible rank list size"));
    }
    (0..n).map(|_| get_u32(bytes, at)).collect()
}

fn put_view(out: &mut Vec<u8>, view: &View) {
    out.extend_from_slice(&view.id.to_be_bytes());
    out.extend_from_slice(&view.world.to_be_bytes());
    out.extend_from_slice(&(view.members.len() as u32).to_be_bytes());
    for m in &view.members {
        out.extend_from_slice(&m.rank.to_be_bytes());
        put_str(out, &m.addr);
        out.extend_from_slice(&m.incarnation.to_be_bytes());
    }
    put_ranks(out, &view.joined);
    put_ranks(out, &view.left);
    put_ranks(out, &view.dead);
}

fn get_view(bytes: &[u8], at: &mut usize) -> Result<View, WireError> {
    let id = get_u64(bytes, at)?;
    let world = get_u32(bytes, at)?;
    let n = get_u32(bytes, at)?;
    if n > 1 << 20 {
        return Err(err("implausible view size"));
    }
    let mut members = Vec::with_capacity(n as usize);
    for _ in 0..n {
        members.push(Member {
            rank: get_u32(bytes, at)?,
            addr: get_str(bytes, at)?,
            incarnation: get_u32(bytes, at)?,
        });
    }
    Ok(View {
        id,
        world,
        members,
        joined: get_ranks(bytes, at)?,
        left: get_ranks(bytes, at)?,
        dead: get_ranks(bytes, at)?,
    })
}

/// Telemetry dumps routinely exceed the `u16` string limit, so they ride
/// a 4-byte length prefix of their own.
fn put_str32(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn get_str32(bytes: &[u8], at: &mut usize) -> Result<String, WireError> {
    let len = get_u32(bytes, at)? as usize;
    if len > 1 << 26 {
        return Err(err("implausible telemetry payload size"));
    }
    let end = *at + len;
    let s = bytes.get(*at..end).ok_or_else(|| err("truncated string"))?;
    *at = end;
    String::from_utf8(s.to_vec()).map_err(|_| err("string is not UTF-8"))
}

fn get_str(bytes: &[u8], at: &mut usize) -> Result<String, WireError> {
    let lend = *at + 2;
    let len = u16::from_be_bytes(
        bytes
            .get(*at..lend)
            .ok_or_else(|| err("truncated string length"))?
            .try_into()
            .expect("2 bytes"),
    ) as usize;
    let end = lend + len;
    let s = bytes
        .get(lend..end)
        .ok_or_else(|| err("truncated string"))?;
    *at = end;
    String::from_utf8(s.to_vec()).map_err(|_| err("string is not UTF-8"))
}

impl RvMsg {
    /// Encodes this message as one SCI frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RvMsg::Register {
                version,
                world,
                rank,
                addr,
            } => {
                out.push(1);
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&world.to_be_bytes());
                out.extend_from_slice(&rank.to_be_bytes());
                put_str(&mut out, addr);
            }
            RvMsg::Roster { world, members } => {
                out.push(2);
                out.extend_from_slice(&world.to_be_bytes());
                out.extend_from_slice(&(members.len() as u32).to_be_bytes());
                for (rank, addr) in members {
                    out.extend_from_slice(&rank.to_be_bytes());
                    put_str(&mut out, addr);
                }
            }
            RvMsg::Reject { reason } => {
                out.push(3);
                put_str(&mut out, reason);
            }
            RvMsg::Telemetry { rank, json } => {
                out.push(4);
                out.extend_from_slice(&rank.to_be_bytes());
                put_str32(&mut out, json);
            }
            RvMsg::TelemetryAck => out.push(5),
            RvMsg::Subscribe { rank, incarnation } => {
                out.push(6);
                out.extend_from_slice(&rank.to_be_bytes());
                out.extend_from_slice(&incarnation.to_be_bytes());
            }
            RvMsg::Heartbeat { rank, seq, nanos } => {
                out.push(7);
                out.extend_from_slice(&rank.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&nanos.to_be_bytes());
            }
            RvMsg::HeartbeatAck {
                seq,
                nanos,
                view,
                suspects,
            } => {
                out.push(8);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&nanos.to_be_bytes());
                out.extend_from_slice(&view.to_be_bytes());
                out.extend_from_slice(&suspects.to_be_bytes());
            }
            RvMsg::View { view } => {
                out.push(9);
                put_view(&mut out, view);
            }
            RvMsg::Leave { rank } => {
                out.push(10);
                out.extend_from_slice(&rank.to_be_bytes());
            }
            RvMsg::Rejoin {
                version,
                world,
                rank,
                addr,
                incarnation,
            } => {
                out.push(11);
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&world.to_be_bytes());
                out.extend_from_slice(&rank.to_be_bytes());
                put_str(&mut out, addr);
                out.extend_from_slice(&incarnation.to_be_bytes());
            }
            RvMsg::Replay { view } => {
                out.push(12);
                put_view(&mut out, view);
            }
        }
        out
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on anything that is not a well-formed message.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let tag = *bytes.first().ok_or_else(|| err("empty frame"))?;
        let mut at = 1;
        let msg = match tag {
            1 => {
                let version = get_u32(bytes, &mut at)?;
                let world = get_u32(bytes, &mut at)?;
                let rank = get_u32(bytes, &mut at)?;
                let addr = get_str(bytes, &mut at)?;
                RvMsg::Register {
                    version,
                    world,
                    rank,
                    addr,
                }
            }
            2 => {
                let world = get_u32(bytes, &mut at)?;
                let n = get_u32(bytes, &mut at)?;
                if n > 1 << 20 {
                    return Err(err("implausible roster size"));
                }
                let mut members = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let rank = get_u32(bytes, &mut at)?;
                    let addr = get_str(bytes, &mut at)?;
                    members.push((rank, addr));
                }
                RvMsg::Roster { world, members }
            }
            3 => RvMsg::Reject {
                reason: get_str(bytes, &mut at)?,
            },
            4 => RvMsg::Telemetry {
                rank: get_u32(bytes, &mut at)?,
                json: get_str32(bytes, &mut at)?,
            },
            5 => RvMsg::TelemetryAck,
            6 => RvMsg::Subscribe {
                rank: get_u32(bytes, &mut at)?,
                incarnation: get_u32(bytes, &mut at)?,
            },
            7 => RvMsg::Heartbeat {
                rank: get_u32(bytes, &mut at)?,
                seq: get_u64(bytes, &mut at)?,
                nanos: get_u64(bytes, &mut at)?,
            },
            8 => RvMsg::HeartbeatAck {
                seq: get_u64(bytes, &mut at)?,
                nanos: get_u64(bytes, &mut at)?,
                view: get_u64(bytes, &mut at)?,
                suspects: get_u32(bytes, &mut at)?,
            },
            9 => RvMsg::View {
                view: get_view(bytes, &mut at)?,
            },
            10 => RvMsg::Leave {
                rank: get_u32(bytes, &mut at)?,
            },
            11 => {
                let version = get_u32(bytes, &mut at)?;
                let world = get_u32(bytes, &mut at)?;
                let rank = get_u32(bytes, &mut at)?;
                let addr = get_str(bytes, &mut at)?;
                let incarnation = get_u32(bytes, &mut at)?;
                RvMsg::Rejoin {
                    version,
                    world,
                    rank,
                    addr,
                    incarnation,
                }
            }
            12 => RvMsg::Replay {
                view: get_view(bytes, &mut at)?,
            },
            other => return Err(err(&format!("unknown tag {other}"))),
        };
        if at != bytes.len() {
            return Err(err("trailing bytes"));
        }
        Ok(msg)
    }
}

/// The world roster a rank receives from rendezvous: who is where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roster {
    /// World size.
    pub world: u32,
    /// `(rank, SCI listener address)`, sorted by rank, one per member.
    pub members: Vec<(u32, SocketAddr)>,
}

impl Roster {
    /// Parses and validates a [`RvMsg::Roster`]'s members: exactly the
    /// ranks `0..world`, each with a parseable socket address.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the member set is not exactly `0..world` or an
    /// address does not parse.
    pub fn from_members(world: u32, raw: &[(u32, String)]) -> Result<Self, WireError> {
        if raw.len() != world as usize {
            return Err(err(&format!(
                "roster has {} members for a world of {world}",
                raw.len()
            )));
        }
        let mut members = Vec::with_capacity(raw.len());
        for (rank, addr) in raw {
            if *rank >= world {
                return Err(err(&format!("rank {rank} out of range (world {world})")));
            }
            let parsed: SocketAddr = addr
                .parse()
                .map_err(|_| err(&format!("unparseable member address '{addr}'")))?;
            members.push((*rank, parsed));
        }
        members.sort_by_key(|&(r, _)| r);
        if members.iter().enumerate().any(|(i, &(r, _))| r != i as u32) {
            return Err(err("roster ranks are not exactly 0..world"));
        }
        Ok(Roster { world, members })
    }

    /// The listener address of `rank`.
    pub fn addr_of(&self, rank: u32) -> Option<SocketAddr> {
        self.members
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, a)| a)
    }
}

/// The first message both ends exchange on every freshly established
/// cluster connection: protocol version plus the sender's identity, so a
/// miswired or skewed peer is refused before any data flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterHello {
    /// The sender's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// The sender's rank.
    pub rank: u32,
    /// The sender's world size.
    pub world: u32,
}

impl ClusterHello {
    /// Encodes the 16-byte hello frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(HELLO_MAGIC);
        out.extend_from_slice(&self.version.to_be_bytes());
        out.extend_from_slice(&self.rank.to_be_bytes());
        out.extend_from_slice(&self.world.to_be_bytes());
        out
    }

    /// Decodes a hello frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] unless the frame is exactly a magic-prefixed hello.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() != 16 || &bytes[..4] != HELLO_MAGIC {
            return Err(err("not a cluster hello"));
        }
        let mut at = 4;
        Ok(ClusterHello {
            version: get_u32(bytes, &mut at)?,
            rank: get_u32(bytes, &mut at)?,
            world: get_u32(bytes, &mut at)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rv_messages_round_trip() {
        let msgs = vec![
            RvMsg::Register {
                version: PROTOCOL_VERSION,
                world: 4,
                rank: 2,
                addr: "127.0.0.1:4711".into(),
            },
            RvMsg::Roster {
                world: 2,
                members: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
            },
            RvMsg::Reject {
                reason: "duplicate rank 2".into(),
            },
            RvMsg::Telemetry {
                rank: 1,
                // Exceeds the u16 string limit: rides the u32 length.
                json: format!("{{\"node\":\"rank1\",\"pad\":\"{}\"}}", "x".repeat(70_000)),
            },
            RvMsg::TelemetryAck,
            RvMsg::Subscribe {
                rank: 3,
                incarnation: 1,
            },
            RvMsg::Heartbeat {
                rank: 2,
                seq: u64::MAX - 1,
                nanos: 123_456_789_000,
            },
            RvMsg::HeartbeatAck {
                seq: 7,
                nanos: 123_456_789_000,
                view: 42,
                suspects: 1,
            },
            RvMsg::View {
                view: View {
                    id: 9,
                    world: 4,
                    members: vec![
                        Member {
                            rank: 0,
                            addr: "127.0.0.1:1".into(),
                            incarnation: 0,
                        },
                        Member {
                            rank: 2,
                            addr: "127.0.0.1:3".into(),
                            incarnation: 2,
                        },
                    ],
                    joined: vec![2],
                    left: vec![],
                    dead: vec![1, 3],
                },
            },
            RvMsg::Leave { rank: 1 },
            RvMsg::Rejoin {
                version: PROTOCOL_VERSION,
                world: 4,
                rank: 2,
                addr: "127.0.0.1:4712".into(),
                incarnation: 1,
            },
            RvMsg::Replay {
                view: View {
                    id: 1,
                    world: 2,
                    members: vec![],
                    joined: vec![],
                    left: vec![],
                    dead: vec![],
                },
            },
        ];
        for m in msgs {
            assert_eq!(RvMsg::decode(&m.encode()), Ok(m.clone()));
        }
    }

    #[test]
    fn rv_decode_rejects_garbage() {
        assert!(RvMsg::decode(&[]).is_err());
        assert!(RvMsg::decode(&[9, 1, 2]).is_err());
        let mut ok = RvMsg::Reject { reason: "x".into() }.encode();
        ok.push(0); // trailing byte
        assert!(RvMsg::decode(&ok).is_err());
        let truncated = &RvMsg::Register {
            version: 1,
            world: 2,
            rank: 0,
            addr: "127.0.0.1:9".into(),
        }
        .encode()[..7];
        assert!(RvMsg::decode(truncated).is_err());
    }

    #[test]
    fn roster_validates_member_set() {
        let ok = Roster::from_members(2, &[(1, "127.0.0.1:2".into()), (0, "127.0.0.1:1".into())])
            .unwrap();
        assert_eq!(ok.members[0].0, 0); // sorted
        assert_eq!(ok.addr_of(1), Some("127.0.0.1:2".parse().unwrap()));
        assert!(ok.addr_of(2).is_none());
        // Wrong count, duplicate rank, out-of-range rank, bad address.
        assert!(Roster::from_members(2, &[(0, "127.0.0.1:1".into())]).is_err());
        assert!(
            Roster::from_members(2, &[(0, "127.0.0.1:1".into()), (0, "127.0.0.1:2".into())])
                .is_err()
        );
        assert!(
            Roster::from_members(2, &[(0, "127.0.0.1:1".into()), (5, "127.0.0.1:2".into())])
                .is_err()
        );
        assert!(
            Roster::from_members(2, &[(0, "127.0.0.1:1".into()), (1, "not-an-addr".into())])
                .is_err()
        );
    }

    #[test]
    fn hello_round_trips_and_rejects_noise() {
        let h = ClusterHello {
            version: PROTOCOL_VERSION,
            rank: 3,
            world: 8,
        };
        assert_eq!(ClusterHello::decode(&h.encode()), Ok(h));
        assert!(ClusterHello::decode(b"NCSWxx").is_err());
        assert!(ClusterHello::decode(b"XXXX0123456789ab").is_err());
    }
}
