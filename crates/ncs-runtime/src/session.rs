//! [`Session`]: one façade over every way of being a member of an NCS
//! world.
//!
//! The ROADMAP's north star demands one coherent surface for every
//! scenario. Before this module, a program written against
//! [`ClusterNode`] (multi-process, `ncs-launch`) could not run against an
//! in-process node world (tests, single-machine experiments) without
//! rewriting its plumbing. `Session` is the missing abstraction: rank
//! identity, world size, point-to-point connect/accept and the
//! collectives engine behind one trait, implemented by
//!
//! * [`ClusterNode`] — the multi-process world bootstrapped through
//!   `ncsd` rendezvous over real sockets; and
//! * [`LocalSession`] — one member of a [`LocalWorld`]: N in-process
//!   [`NcsNode`]s fully meshed over the HPI interface, one per
//!   application thread (or green thread — the world can run on either
//!   thread package).
//!
//! The same application body drives both:
//!
//! ```
//! use ncs_runtime::{LocalWorld, Session};
//! use ncs_collectives::ReduceOp;
//!
//! fn member(s: &impl Session) -> f64 {
//!     let group = s.collective_group(1).expect("group");
//!     group
//!         .allreduce(vec![s.rank() as f64], ReduceOp::Sum)
//!         .expect("allreduce")[0]
//! }
//!
//! let world = LocalWorld::create(3).expect("world");
//! let handles: Vec<_> = world
//!     .into_iter()
//!     .map(|s| std::thread::spawn(move || member(&s)))
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap(), 0.0 + 1.0 + 2.0);
//! }
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ncs_collectives::{CollectiveError, CollectiveGroup};
use ncs_core::link::HpiLinkPair;
use ncs_core::{AcceptError, ConnectError, ConnectionConfig, NcsConnection, NcsNode};
use ncs_threads::ThreadPackage;

use crate::cluster::{rank_name, ClusterError, ClusterNode};

/// Errors from [`Session`] operations, unifying the backends' error
/// families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// An invalid member rank (out of range, or this member itself).
    BadRank {
        /// The offending rank.
        rank: u32,
        /// World size.
        world: u32,
    },
    /// Establishing a connection failed.
    Connect(String),
    /// Accepting a connection failed.
    Accept(String),
    /// Building the collectives engine failed.
    Collective(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BadRank { rank, world } => {
                write!(f, "rank {rank} is not a peer in a world of {world}")
            }
            SessionError::Connect(why) => write!(f, "session connect failed: {why}"),
            SessionError::Accept(why) => write!(f, "session accept failed: {why}"),
            SessionError::Collective(why) => write!(f, "session collectives failed: {why}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ConnectError> for SessionError {
    fn from(e: ConnectError) -> Self {
        SessionError::Connect(e.to_string())
    }
}

impl From<AcceptError> for SessionError {
    fn from(e: AcceptError) -> Self {
        SessionError::Accept(e.to_string())
    }
}

impl From<CollectiveError> for SessionError {
    fn from(e: CollectiveError) -> Self {
        SessionError::Collective(e.to_string())
    }
}

/// One member's handle on an NCS world, whatever backs it.
///
/// Implemented by [`ClusterNode`] (multi-process, over real sockets) and
/// [`LocalSession`] (in-process node world), so examples, tests and
/// applications can be written once and run in either mode — see the
/// module docs.
pub trait Session {
    /// This member's rank (`0..world_size`).
    fn rank(&self) -> u32;

    /// Number of members in the world.
    fn world_size(&self) -> u32;

    /// The underlying NCS node (pool statistics, thread package, raw
    /// primitives).
    fn node(&self) -> &NcsNode;

    /// Opens a fresh point-to-point connection to `peer` (which must call
    /// [`Session::accept`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::BadRank`] for an invalid peer, otherwise connect
    /// failures.
    fn connect(&self, peer: u32, cfg: ConnectionConfig) -> Result<NcsConnection, SessionError>;

    /// Accepts the next incoming point-to-point connection from any peer.
    ///
    /// # Errors
    ///
    /// [`SessionError::Accept`] on timeout or shutdown.
    fn accept(&self, timeout: Duration) -> Result<NcsConnection, SessionError>;

    /// Builds the collectives engine over the world's bootstrap links.
    ///
    /// The group's pump threads take ownership of those links' delivery
    /// queues: build at most one live group, and use
    /// [`Session::connect`] / [`Session::accept`] for point-to-point
    /// traffic alongside it.
    ///
    /// # Errors
    ///
    /// [`SessionError::Collective`] when the engine cannot start.
    fn collective_group(&self, id: u32) -> Result<CollectiveGroup, SessionError>;

    /// This member's full telemetry dump — the node's metrics snapshot
    /// plus every live connection's flight-recorder ring, as one JSON
    /// object (see [`NcsNode::telemetry`]). This is the per-rank payload
    /// `ncs-launch --telemetry` aggregates into a world snapshot.
    fn telemetry(&self) -> String {
        self.node().telemetry()
    }

    /// Shuts this member down (closes its connections, stops its NCS
    /// threads). Idempotent.
    fn shutdown(&self);
}

impl Session for ClusterNode {
    fn rank(&self) -> u32 {
        ClusterNode::rank(self)
    }

    fn world_size(&self) -> u32 {
        self.size()
    }

    fn node(&self) -> &NcsNode {
        ClusterNode::node(self)
    }

    fn connect(&self, peer: u32, cfg: ConnectionConfig) -> Result<NcsConnection, SessionError> {
        self.open_connection(peer, cfg).map_err(|e| match e {
            ClusterError::Config(_) => SessionError::BadRank {
                rank: peer,
                world: self.size(),
            },
            other => SessionError::Connect(other.to_string()),
        })
    }

    fn accept(&self, timeout: Duration) -> Result<NcsConnection, SessionError> {
        self.accept_connection(timeout)
            .map_err(|e| SessionError::Accept(e.to_string()))
    }

    fn collective_group(&self, id: u32) -> Result<CollectiveGroup, SessionError> {
        Ok(ClusterNode::collective_group(self, id)?)
    }

    fn shutdown(&self) {
        ClusterNode::shutdown(self);
    }
}

/// An in-process NCS world: the [`Session`] backend for tests,
/// single-machine experiments and any program that wants the cluster
/// programming model without processes.
///
/// [`LocalWorld::create`] builds N nodes, meshes them over the HPI
/// interface and pre-establishes one bootstrap connection per pair
/// (mirroring [`ClusterNode::bootstrap`]'s dial-up/accept-down wiring),
/// returning one [`LocalSession`] per member. Hand each session to its
/// own thread — or green thread; [`LocalWorld::with_package`] runs the
/// world's NCS threads on either package.
#[derive(Debug)]
pub struct LocalWorld;

impl LocalWorld {
    /// Builds an `n`-member in-process world on the kernel-level thread
    /// package.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when the mesh cannot be established.
    pub fn create(n: u32) -> Result<Vec<LocalSession>, SessionError> {
        Self::build(n, None)
    }

    /// [`LocalWorld::create`] with every node's NCS threads on `pkg`.
    ///
    /// # Errors
    ///
    /// As [`LocalWorld::create`].
    pub fn with_package(
        n: u32,
        pkg: Arc<dyn ThreadPackage>,
    ) -> Result<Vec<LocalSession>, SessionError> {
        Self::build(n, Some(pkg))
    }

    fn build(
        n: u32,
        pkg: Option<Arc<dyn ThreadPackage>>,
    ) -> Result<Vec<LocalSession>, SessionError> {
        if n == 0 {
            return Err(SessionError::Connect("world size must be positive".into()));
        }
        // All co-located members share one readiness reactor: the world
        // runs O(cores) event loops total, not O(cores) per rank.
        let reactor_pkg = pkg
            .clone()
            .unwrap_or_else(|| Arc::new(ncs_threads::KernelPackage::new()));
        let reactor = ncs_core::Reactor::with_default_shards(reactor_pkg);
        let nodes: Vec<NcsNode> = (0..n)
            .map(|r| {
                let mut b = NcsNode::builder(&rank_name(r))
                    .rank(r)
                    .reactor(Arc::clone(&reactor));
                if let Some(p) = &pkg {
                    b = b.thread_package(Arc::clone(p));
                }
                b.build()
            })
            .collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let (li, lj) = HpiLinkPair::with_capacity(2048);
                nodes[i as usize].attach_peer(&rank_name(j), li);
                nodes[j as usize].attach_peer(&rank_name(i), lj);
            }
        }
        // Bootstrap links, wired like the cluster runtime: each member
        // dials every higher rank and accepts from every lower one. HPI
        // rides reliable in-process mailboxes, so the links use the §3.1
        // bypass exactly as the SCI cluster defaults do.
        let mut links: Vec<HashMap<usize, NcsConnection>> =
            (0..n).map(|_| HashMap::new()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let up =
                    nodes[i as usize].connect(&rank_name(j), ConnectionConfig::unreliable())?;
                let down = nodes[j as usize].accept(Duration::from_secs(30))?;
                links[i as usize].insert(j as usize, up);
                links[j as usize].insert(i as usize, down);
            }
        }
        Ok(nodes
            .into_iter()
            .zip(links)
            .enumerate()
            .map(|(rank, (node, links))| LocalSession {
                node,
                rank: rank as u32,
                world: n,
                links,
            })
            .collect())
    }
}

/// One member of a [`LocalWorld`] (the in-process [`Session`] backend).
#[derive(Debug)]
pub struct LocalSession {
    node: NcsNode,
    rank: u32,
    world: u32,
    links: HashMap<usize, NcsConnection>,
}

impl LocalSession {
    /// The bootstrap connection to `rank`, if it is another member.
    pub fn connection(&self, rank: u32) -> Option<&NcsConnection> {
        self.links.get(&(rank as usize))
    }
}

impl Session for LocalSession {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn world_size(&self) -> u32 {
        self.world
    }

    fn node(&self) -> &NcsNode {
        &self.node
    }

    fn connect(&self, peer: u32, cfg: ConnectionConfig) -> Result<NcsConnection, SessionError> {
        if peer == self.rank || peer >= self.world {
            return Err(SessionError::BadRank {
                rank: peer,
                world: self.world,
            });
        }
        Ok(self.node.connect(&rank_name(peer), cfg)?)
    }

    fn accept(&self, timeout: Duration) -> Result<NcsConnection, SessionError> {
        Ok(self.node.accept(timeout)?)
    }

    fn collective_group(&self, id: u32) -> Result<CollectiveGroup, SessionError> {
        Ok(CollectiveGroup::new(
            &self.node,
            id,
            self.rank as usize,
            self.links.clone(),
        )?)
    }

    fn shutdown(&self) {
        self.node.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_member_world_is_rejected() {
        assert!(LocalWorld::create(0).is_err());
    }

    #[test]
    fn local_world_wires_ranks_and_links() {
        let world = LocalWorld::create(3).expect("world");
        assert_eq!(world.len(), 3);
        for (i, s) in world.iter().enumerate() {
            assert_eq!(s.rank(), i as u32);
            assert_eq!(s.world_size(), 3);
            assert_eq!(s.node().rank(), Some(i as u32));
            for j in 0..3u32 {
                assert_eq!(s.connection(j).is_some(), j != i as u32);
            }
        }
        // Bootstrap links carry point-to-point traffic member to member.
        world[0].connection(2).unwrap().send(b"hi two").unwrap();
        assert_eq!(world[2].connection(0).unwrap().recv().unwrap(), b"hi two");
        for s in &world {
            s.shutdown();
        }
    }

    #[test]
    fn session_connect_validates_ranks() {
        let world = LocalWorld::create(2).expect("world");
        assert!(matches!(
            world[0].connect(0, ConnectionConfig::unreliable()),
            Err(SessionError::BadRank { rank: 0, world: 2 })
        ));
        assert!(matches!(
            world[0].connect(7, ConnectionConfig::unreliable()),
            Err(SessionError::BadRank { rank: 7, world: 2 })
        ));
        for s in &world {
            s.shutdown();
        }
    }
}
