//! Criterion micro-benchmarks for the hot paths under the paper's
//! experiments: checksums, AAL5 SAR, NCS packet codecs, the ack bitmap,
//! mailbox handoffs and green-thread context switches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_crc32(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| atm_sim::crc::crc32(black_box(data)));
        });
    }
    g.finish();
}

fn bench_aal5(c: &mut Criterion) {
    let mut g = c.benchmark_group("aal5");
    let vc = atm_sim::cell::Vc::new(42);
    for size in [4096usize, 65535] {
        let frame = vec![0x3Cu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("segment", size), &frame, |b, frame| {
            b.iter(|| atm_sim::aal5::segment(vc, black_box(frame)).unwrap());
        });
        let cells = atm_sim::aal5::segment(vc, &frame).unwrap();
        g.bench_with_input(BenchmarkId::new("reassemble", size), &cells, |b, cells| {
            b.iter(|| {
                let mut r = atm_sim::aal5::Reassembler::new();
                let mut out = None;
                for cell in cells {
                    if let Some(done) = r.push(black_box(cell)) {
                        out = Some(done);
                    }
                }
                out.unwrap().unwrap()
            });
        });
    }
    g.finish();
}

fn bench_packet_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("ncs_packet");
    for size in [1usize, 4096] {
        let packet = ncs_core::packet::DataPacket {
            header: ncs_core::packet::DataHeader {
                conn: 1,
                src_conn: 2,
                session: 3,
                seq: 4,
                end: true,
                tagged: false,
            },
            payload: vec![9u8; size],
        };
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("encode", size), &packet, |b, p| {
            b.iter(|| black_box(p).encode());
        });
        let bytes = packet.encode();
        g.bench_with_input(BenchmarkId::new("decode", size), &bytes, |b, bytes| {
            b.iter(|| ncs_core::packet::DataPacket::decode(black_box(bytes)).unwrap());
        });
    }
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    c.bench_function("ack_bitmap_1024_sdu_cycle", |b| {
        b.iter(|| {
            let mut bm = ncs_core::seq::AckBitmap::all_missing(1024);
            for i in 0..1024 {
                bm.mark_received(i);
            }
            black_box(bm.any_missing())
        });
    });
}

fn bench_mailbox(c: &mut Criterion) {
    c.bench_function("mailbox_send_recv", |b| {
        let m = ncs_threads::sync::Mailbox::unbounded();
        b.iter(|| {
            m.send(black_box(7u64));
            black_box(m.recv())
        });
    });
}

fn bench_context_switch(c: &mut Criterion) {
    // Measures round-trip green-thread switches: primary <-> child, 1000
    // yields per runtime entry, amortised.
    c.bench_function("green_ctx_switch_pair", |b| {
        b.iter_custom(|iters| {
            let runs = iters.max(1);
            let start = std::time::Instant::now();
            ncs_threads::UserRuntime::default().run(move |pkg| {
                use ncs_threads::{ThreadPackage, ThreadPackageExt};
                let pkg2 = pkg.clone();
                let inner = runs;
                let child = pkg.spawn_typed("pong", move || {
                    for _ in 0..inner {
                        pkg2.yield_now();
                    }
                });
                for _ in 0..runs {
                    pkg.yield_now();
                }
                child.join().unwrap();
            });
            start.elapsed()
        });
    });
}

fn bench_hpi_roundtrip(c: &mut Criterion) {
    c.bench_function("hpi_send_recv_1b", |b| {
        let (a, rx) = ncs_transport::hpi::pair(1024);
        let a = Arc::new(a);
        b.iter(|| {
            use ncs_transport::Connection;
            a.send(black_box(b"x")).unwrap();
            black_box(rx.recv().unwrap())
        });
    });
}

criterion_group!(
    benches,
    bench_crc32,
    bench_aal5,
    bench_packet_codec,
    bench_bitmap,
    bench_mailbox,
    bench_context_switch,
    bench_hpi_roundtrip,
);
criterion_main!(benches);
