//! perf_gate — the data-plane performance gate CI tracks.
//!
//! Drives round-trip latency and bulk one-way throughput over all four
//! communication interfaces (HPI, PIPE, SCI, ACI) under both thread
//! packages (kernel-level and user-level), and writes the results to
//! `BENCH_dataplane.json`.
//!
//! Alongside time, the gate reports **allocations per message**, counted
//! through the node's [`BufPool`] statistics: every pool *checkout* is one
//! heap allocation the unpooled seed path performed at the same call site
//! (`Packet::encode` into a fresh `Vec`), while every pool *miss* is an
//! allocation the pooled path actually made. The ratio
//! `checkouts / misses` is therefore the measured allocation improvement
//! of the pooled data plane over the seed, and the run **fails** (exit 1)
//! unless the HPI bulk path shows at least [`GATE_MIN_IMPROVEMENT`]x.
//!
//! A second section drives the **collectives engine**: allreduce and
//! broadcast latency against group size over HPI, under both thread
//! packages, comparing the binomial-tree broadcast with the repetitive
//! flat multicast. The run fails unless the tree beats flat for every
//! group of at least [`COLL_GATE_MIN_GROUP`] members.
//!
//! An **mt_msgrate** section measures aggregate message rate when 1/2/4
//! application threads hammer one connection through per-thread
//! [`Channel`]s (HPI + SCI, both packages), and fails unless the
//! 4-thread aggregate on HPI under the kernel package clears a
//! parallelism-aware multiple of the 1-thread figure
//! ([`msgrate::scaling_threshold`]: 2.0x where the host offers >= 4
//! CPUs, degrading to a documented no-collapse bound on smaller hosts).
//!
//! A **sim** section drives the deterministic [`ncs_runtime::SimWorld`]
//! engine through a [`SIM_RANKS`]-rank broadcast + barrier scenario under
//! virtual time, reporting events/sec and wall time, and fails unless the
//! run stays under [`SIM_GATE_MAX_WALL_SECS`] *and* a second run with the
//! same seed reproduces the event trace and telemetry byte-for-byte.
//!
//! A **c10k** section holds [`C10K_CONNECTIONS`] simultaneous connections
//! open between two in-process nodes sharing one readiness reactor and
//! fails unless the OS thread count stays bounded (O(cores) event loops,
//! never threads-per-connection) and the p99 round-trip time across all
//! connections stays within [`C10K_MAX_P99_RATIO`] of the
//! [`C10K_BASELINE`]-connection figure.
//!
//! A **membership** section drives a real `ncsd` + [`MemberAgent`] world
//! of [`MEMBERSHIP_NP`] ranks over loopback through repeated silence →
//! death-view → rejoin → join-view cycles, and fails unless the median
//! failure-detection latency (victim silenced → death view applied by
//! the slowest survivor) stays within
//! [`MEMBERSHIP_GATE_MAX_DETECT_INTERVALS`] heartbeat intervals, the
//! median view-propagation latency (rejoin accepted → join view applied
//! by the slowest survivor) stays under [`MEMBERSHIP_GATE_MAX_PROP_MS`]
//! ms, and every survivor observed strictly increasing view epochs.
//!
//! [`MemberAgent`]: ncs_runtime::MemberAgent
//!
//! Usage: `perf_gate [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks iteration counts for CI; `--out` overrides the output
//! path (default `BENCH_dataplane.json` in the current directory).
//!
//! [`BufPool`]: ncs_core::BufPool
//! [`Channel`]: ncs_core::Channel

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncs_bench::msgrate;
use ncs_collectives::{CollectiveGroup, ReduceOp, Topology};
use ncs_core::link::{AciLink, HpiLinkPair, PipeLinkPair, SciLink};
use ncs_core::{ConnectionConfig, NcsConnection, NcsNode, PoolStats};
use ncs_runtime::{ClusterConfig, ClusterNode, MembershipConfig, RendezvousServer};
use ncs_threads::sync::Event;
use ncs_threads::{
    KernelPackage, SwitchMech, ThreadPackage, ThreadPackageExt, UserConfig, UserRuntime,
};
use ncs_transport::pipe::PipeConfig;
use ncs_transport::sci::SciListener;

/// The acceptance threshold on the HPI bulk path's allocation improvement.
const GATE_MIN_IMPROVEMENT: f64 = 2.0;

/// Group sizes the collectives section sweeps.
const COLL_GROUP_SIZES: [usize; 3] = [2, 4, 8];

/// Elements per member in the allreduce latency probe.
const COLL_ALLREDUCE_ELEMS: usize = 64;

/// Broadcast payload (bytes) for the binomial-vs-flat comparison: large
/// enough that per-child fan-out work is visible next to the fixed
/// submit/complete handoff, small enough that a round's frames fit the
/// bounded send queues (no backpressure — the window must measure the
/// origin's own work, not downstream drain).
const COLL_BCAST_BYTES: usize = 32 * 1024;

/// Untimed rounds before each measured broadcast window (warms the buffer
/// pool's free lists and every thread's wake path, so the first topology
/// measured is not penalised).
const COLL_BCAST_WARMUP: usize = 4;

/// Groups of at least this size must show the binomial tree beating the
/// repetitive flat fan-out.
const COLL_GATE_MIN_GROUP: usize = 4;

/// Minimum origin-egress improvement (flat frames / binomial frames) the
/// tree must show for gated group sizes. The structural ratio is
/// `(n-1) / ⌈log₂ n⌉` — 1.5 at n=4 — so 1.3 leaves slack only for
/// bookkeeping traffic, not for a broken topology.
const COLL_GATE_MIN_EGRESS_RATIO: f64 = 1.3;

/// Latency probe payload (bytes).
const LAT_BYTES: usize = 64;

/// Bulk message size (bytes); four SDUs at the default 4 KB SDU.
const BULK_BYTES: usize = 16 * 1024;

/// End-of-phase sentinel (1 byte, distinguishable from every payload).
const SENTINEL: u8 = 0xFF;

/// Bulk warm-up messages before the measured window: enough frames to
/// charge the buffer pool's recycling window (the send queue plus a couple
/// of in-flight batches), so the measurement reports steady state.
const BULK_WARMUP: usize = 50;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Iface {
    Hpi,
    Pipe,
    Sci,
    Aci,
}

impl Iface {
    const ALL: [Iface; 4] = [Iface::Hpi, Iface::Pipe, Iface::Sci, Iface::Aci];

    fn name(self) -> &'static str {
        match self {
            Iface::Hpi => "HPI",
            Iface::Pipe => "PIPE",
            Iface::Sci => "SCI",
            Iface::Aci => "ACI",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Package {
    Kernel,
    User,
}

impl Package {
    fn name(self) -> &'static str {
        match self {
            Package::Kernel => "kernel",
            Package::User => "user",
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct BenchCfg {
    lat_iters: usize,
    bulk_msgs: usize,
}

#[derive(Debug)]
struct CaseResult {
    iface: &'static str,
    package: &'static str,
    lat_iters: usize,
    lat_median_us: f64,
    lat_p99_us: f64,
    bulk_msgs: usize,
    bulk_received: usize,
    bulk_secs: f64,
    bulk_mib_s: f64,
    pool: PoolStats,
    allocs_per_msg_seed_equiv: f64,
    allocs_per_msg_pooled: f64,
    alloc_improvement: f64,
}

/// Two connected NCS nodes over one interface, plus whatever must stay
/// alive for the link to work.
struct Pair {
    tx_node: NcsNode,
    rx_node: NcsNode,
    _fabric: Option<Arc<ncs_transport::aci::AciFabric>>,
}

impl Pair {
    fn shutdown(self) {
        self.tx_node.shutdown();
        self.rx_node.shutdown();
        if let Some(f) = self._fabric {
            f.shutdown();
        }
    }
}

/// Builds a connected node pair over `iface`; the sender node runs its NCS
/// threads on `pkg` (the receiver stands in for a remote process on the
/// default kernel package, as in the paper's experiments).
fn build_pair(iface: Iface, pkg: Arc<dyn ThreadPackage>) -> Pair {
    let tx_node = NcsNode::builder("gate-tx").thread_package(pkg).build();
    let rx_node = NcsNode::builder("gate-rx").build();
    let mut fabric = None;
    match iface {
        Iface::Hpi => {
            let (la, lb) = HpiLinkPair::with_capacity(1024);
            tx_node.attach_peer("gate-rx", la);
            rx_node.attach_peer("gate-tx", lb);
        }
        Iface::Pipe => {
            // A fast local pipe: generous buffer, instant drain.
            let wire = PipeConfig {
                buffer_bytes: 256 * 1024,
                drain_bytes_per_sec: None,
                latency: Duration::ZERO,
                time_scale: 1.0,
            };
            let (la, lb) = PipeLinkPair::create(wire, None, None);
            tx_node.attach_peer("gate-rx", la);
            rx_node.attach_peer("gate-tx", lb);
        }
        Iface::Sci => {
            let ltx = Arc::new(SciListener::bind("127.0.0.1:0").expect("bind tx"));
            let lrx = Arc::new(SciListener::bind("127.0.0.1:0").expect("bind rx"));
            let addr_tx = ltx.local_addr().expect("tx addr");
            let addr_rx = lrx.local_addr().expect("rx addr");
            tx_node.attach_peer("gate-rx", SciLink::new(addr_rx, ltx));
            rx_node.attach_peer("gate-tx", SciLink::new(addr_tx, lrx));
        }
        Iface::Aci => {
            use atm_sim::{LinkSpec, NetworkBuilder, PumpConfig, QosParams};
            use ncs_transport::aci::AciFabric;
            let net = NetworkBuilder::new()
                .host("gate-tx")
                .host("gate-rx")
                .switch("sw")
                .link("gate-tx", "sw", LinkSpec::oc3())
                .link("gate-rx", "sw", LinkSpec::oc3())
                .build()
                .expect("atm network");
            let fab = AciFabric::start(net, PumpConfig::default());
            let dev_tx = Arc::new(fab.device("gate-tx").expect("tx device"));
            let dev_rx = Arc::new(fab.device("gate-rx").expect("rx device"));
            tx_node.attach_peer(
                "gate-rx",
                AciLink::new(dev_tx, "gate-rx", QosParams::unspecified()),
            );
            rx_node.attach_peer(
                "gate-tx",
                AciLink::new(dev_rx, "gate-tx", QosParams::unspecified()),
            );
            fabric = Some(fab);
        }
    }
    Pair {
        tx_node,
        rx_node,
        _fabric: fabric,
    }
}

/// Connection configuration per phase: the §3.1 bypass for reliable wires
/// and for the latency probe; credit-based flow control plus selective
/// repeat where the interface itself can drop frames under load.
fn bulk_config(iface: Iface) -> ConnectionConfig {
    match iface {
        // HPI overruns and ACI cell loss make FC/EC mandatory for bulk.
        Iface::Hpi | Iface::Aci => ConnectionConfig::reliable(),
        // PIPE and SCI are reliable: NCS bypasses its control threads.
        Iface::Pipe | Iface::Sci => ConnectionConfig::unreliable(),
    }
}

/// Interfaces the mt_msgrate section sweeps (HPI = fastest in-process
/// path, SCI = real sockets).
const MSGRATE_IFACES: [Iface; 2] = [Iface::Hpi, Iface::Sci];

/// Messages per thread for one mt_msgrate point, per interface and mode
/// (multiples of the 64-message window).
fn msgrate_msgs(iface: Iface, smoke: bool) -> usize {
    match (iface, smoke) {
        (Iface::Hpi, false) => 64 * 512,
        (Iface::Hpi, true) => 64 * 32,
        (_, false) => 64 * 64,
        (_, true) => 64 * 8,
    }
}

#[derive(Debug)]
struct MsgRateCaseResult {
    iface: &'static str,
    package: &'static str,
    threads: usize,
    msgs_per_thread: usize,
    per_thread_mmsgs_s: Vec<f64>,
    aggregate_mmsgs_s: f64,
}

/// Runs one mt_msgrate point: `threads` sender/receiver thread pairs on
/// `pkg`, each pair on its own per-thread channel over one connection.
fn run_msgrate_case(
    iface: Iface,
    package: Package,
    pkg: Arc<dyn ThreadPackage>,
    threads: usize,
    msgs_per_thread: usize,
) -> MsgRateCaseResult {
    let pair = build_pair(iface, Arc::clone(&pkg));
    let conn_tx = pair
        .tx_node
        .connect("gate-rx", bulk_config(iface))
        .expect("msgrate connect");
    let conn_rx = pair.rx_node.accept_default().expect("msgrate accept");
    // One untimed window per channel charges the pool and wake paths.
    msgrate::measure(&conn_tx, &conn_rx, &pkg, threads, msgrate::WINDOW_SIZE);
    let m = msgrate::measure(&conn_tx, &conn_rx, &pkg, threads, msgs_per_thread);
    drop(conn_tx);
    drop(conn_rx);
    pair.shutdown();
    MsgRateCaseResult {
        iface: iface.name(),
        package: package.name(),
        threads: m.threads,
        msgs_per_thread: m.msgs_per_thread,
        per_thread_mmsgs_s: m.per_thread_mmsgs_s,
        aggregate_mmsgs_s: m.aggregate_mmsgs_s,
    }
}

/// The telemetry gate: with the flight recorder enabled (every message
/// stamps lifecycle events into the per-connection ring), the HPI message
/// rate must stay within this percentage of the kill-switch baseline
/// (recorder disabled — one relaxed load per would-be event, the
/// "compiled-out" cost floor).
const TELEMETRY_GATE_MAX_OVERHEAD_PCT: f64 = 5.0;

/// Measurement rounds per recorder state; the best round of each state is
/// compared, which cancels scheduler noise that a single pairing would
/// read as instrumentation cost.
const TELEMETRY_ROUNDS: usize = 3;

#[derive(Debug)]
struct TelemetryCaseResult {
    package: &'static str,
    threads: usize,
    msgs_per_thread: usize,
    enabled_mmsgs_s: f64,
    disabled_mmsgs_s: f64,
    overhead_pct: f64,
}

/// Measures the flight recorder's message-rate cost: the same msgrate
/// point with recording on versus off over one HPI connection.
fn run_telemetry_case(
    package: Package,
    pkg: Arc<dyn ThreadPackage>,
    smoke: bool,
) -> TelemetryCaseResult {
    let threads = 1;
    let msgs = msgrate_msgs(Iface::Hpi, smoke);
    let pair = build_pair(Iface::Hpi, Arc::clone(&pkg));
    let conn_tx = pair
        .tx_node
        .connect("gate-rx", bulk_config(Iface::Hpi))
        .expect("telemetry connect");
    let conn_rx = pair.rx_node.accept_default().expect("telemetry accept");
    msgrate::measure(&conn_tx, &conn_rx, &pkg, threads, msgrate::WINDOW_SIZE);
    let mut best_on: f64 = 0.0;
    let mut best_off: f64 = 0.0;
    for _ in 0..TELEMETRY_ROUNDS {
        for (on, best) in [(true, &mut best_on), (false, &mut best_off)] {
            conn_tx.set_flight_recording(on);
            conn_rx.set_flight_recording(on);
            let m = msgrate::measure(&conn_tx, &conn_rx, &pkg, threads, msgs);
            *best = best.max(m.aggregate_mmsgs_s);
        }
    }
    conn_tx.set_flight_recording(true);
    drop(conn_tx);
    drop(conn_rx);
    pair.shutdown();
    TelemetryCaseResult {
        package: package.name(),
        threads,
        msgs_per_thread: msgs,
        enabled_mmsgs_s: best_on,
        disabled_mmsgs_s: best_off,
        overhead_pct: (1.0 - best_on / best_off.max(f64::MIN_POSITIVE)) * 100.0,
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Echo server: returns every message until the 1-byte sentinel arrives,
/// then fires `done`.
fn spawn_echo(conn: NcsConnection, done: Arc<Event>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        loop {
            match conn.recv_timeout(Duration::from_secs(30)) {
                Ok(m) if m.len() == 1 && m[0] == SENTINEL => break,
                Ok(m) => {
                    if conn.send(&m).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        done.fire();
    })
}

/// Sink server: counts `expect` messages, firing `warmed` once the
/// warm-up prefix arrived and `done` once all arrived.
fn spawn_sink(
    conn: NcsConnection,
    expect: usize,
    received: Arc<AtomicUsize>,
    warmed: Arc<Event>,
    done: Arc<Event>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while conn.recv_timeout(Duration::from_secs(30)).is_ok() {
            let n = received.fetch_add(1, Ordering::Relaxed) + 1;
            if n == BULK_WARMUP {
                warmed.fire();
            }
            if n >= expect {
                break;
            }
        }
        done.fire();
    })
}

/// Runs one interface × package combination. Everything here blocks only
/// through package-aware primitives (mailboxes, events), so the same code
/// runs as the root green thread of the user-level runtime.
fn run_case(
    iface: Iface,
    package: Package,
    pkg: Arc<dyn ThreadPackage>,
    cfg: BenchCfg,
) -> CaseResult {
    // --- Phase 1: round-trip latency over the bypass configuration. -----
    let pair = build_pair(iface, Arc::clone(&pkg));
    let conn_tx = pair
        .tx_node
        .connect("gate-rx", ConnectionConfig::unreliable())
        .expect("latency connect");
    let conn_rx = pair.rx_node.accept_default().expect("latency accept");
    let echo_done = Arc::new(Event::new());
    let echo = spawn_echo(conn_rx, Arc::clone(&echo_done));
    let payload = vec![0xA5u8; LAT_BYTES];
    // Warm-up: fills the pipeline and the buffer pool's free lists.
    conn_tx.send(&payload).expect("warmup send");
    let _ = conn_tx
        .recv_timeout(Duration::from_secs(10))
        .expect("warmup recv");
    let mut rtts_us = Vec::with_capacity(cfg.lat_iters);
    for _ in 0..cfg.lat_iters {
        let t0 = Instant::now();
        conn_tx.send(&payload).expect("latency send");
        let back = conn_tx
            .recv_timeout(Duration::from_secs(10))
            .expect("latency recv");
        rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(back.len(), LAT_BYTES, "echo length mismatch");
    }
    conn_tx.send(&[SENTINEL]).expect("latency sentinel");
    // Wait cooperatively (a bare join would block the green scheduler).
    echo_done.wait_timeout(Duration::from_secs(30));
    let _ = echo.join();
    rtts_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lat_median_us = percentile(&rtts_us, 0.50);
    let lat_p99_us = percentile(&rtts_us, 0.99);
    pair.shutdown();

    // --- Phase 2: bulk one-way throughput + allocations per message. ----
    let pair = build_pair(iface, pkg);
    let conn_tx = pair
        .tx_node
        .connect("gate-rx", bulk_config(iface))
        .expect("bulk connect");
    let conn_rx = pair.rx_node.accept_default().expect("bulk accept");
    let received = Arc::new(AtomicUsize::new(0));
    let warmup_seen = Arc::new(Event::new());
    let sink_done = Arc::new(Event::new());
    // The sink expects the warm-up prefix plus the measured batch.
    let sink = spawn_sink(
        conn_rx,
        cfg.bulk_msgs + BULK_WARMUP,
        Arc::clone(&received),
        Arc::clone(&warmup_seen),
        Arc::clone(&sink_done),
    );
    let payload = vec![0xB7u8; BULK_BYTES];
    // Warm-up burst, outside the measured window and the pool delta
    // (the wait is cooperative: green threads keep the pipeline moving).
    for _ in 0..BULK_WARMUP {
        conn_tx.send(&payload).expect("bulk warmup");
    }
    assert!(
        warmup_seen.wait_timeout(Duration::from_secs(60)),
        "bulk warm-up never arrived"
    );
    let pool_before = pair.tx_node.pool_stats();
    let t0 = Instant::now();
    for _ in 0..cfg.bulk_msgs {
        conn_tx.send(&payload).expect("bulk send");
    }
    sink_done.wait_timeout(Duration::from_secs(120));
    let bulk_secs = t0.elapsed().as_secs_f64();
    let pool = pair.tx_node.pool_stats().since(&pool_before);
    let _ = sink.join();
    let bulk_received = received.load(Ordering::Relaxed).saturating_sub(BULK_WARMUP);
    pair.shutdown();

    let msgs = cfg.bulk_msgs as f64;
    let allocs_per_msg_seed_equiv = pool.checkouts as f64 / msgs;
    let allocs_per_msg_pooled = pool.misses as f64 / msgs;
    let alloc_improvement = pool.checkouts as f64 / pool.misses.max(1) as f64;
    CaseResult {
        iface: iface.name(),
        package: package.name(),
        lat_iters: cfg.lat_iters,
        lat_median_us,
        lat_p99_us,
        bulk_msgs: cfg.bulk_msgs,
        bulk_received,
        bulk_secs,
        bulk_mib_s: (bulk_received as f64 * BULK_BYTES as f64) / bulk_secs / (1024.0 * 1024.0),
        pool,
        allocs_per_msg_seed_equiv,
        allocs_per_msg_pooled,
        alloc_improvement,
    }
}

// ---------------------------------------------------------------------------
// Collectives section
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct CollCaseResult {
    package: &'static str,
    group_size: usize,
    allreduce_iters: usize,
    allreduce_median_us: f64,
    bcast_rounds: usize,
    /// Root-side broadcast cost per round (blocking call at the origin).
    bcast_root_binomial_us: f64,
    bcast_root_flat_us: f64,
    /// Fence-confirmed completion per round (until every member holds the
    /// payload).
    bcast_done_binomial_us: f64,
    bcast_done_flat_us: f64,
    /// Data frames the origin transmitted during each topology's window —
    /// the paper's spanning-tree claim (O(log n) copies instead of n-1),
    /// measured from the root's connection counters.
    root_frames_binomial: u64,
    root_frames_flat: u64,
    /// Origin egress improvement: flat frames / binomial frames.
    egress_ratio: f64,
}

/// Builds an `n`-member collective group over an HPI full mesh, every node
/// on `pkg`.
fn build_coll_members(
    n: usize,
    pkg: &Arc<dyn ThreadPackage>,
) -> (Vec<NcsNode>, Vec<Arc<CollectiveGroup>>, Vec<NcsConnection>) {
    let nodes: Vec<NcsNode> = (0..n)
        .map(|i| {
            NcsNode::builder(&format!("coll{i}"))
                .thread_package(Arc::clone(pkg))
                .build()
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let (li, lj) = HpiLinkPair::with_capacity(4096);
            nodes[i].attach_peer(&format!("coll{j}"), li);
            nodes[j].attach_peer(&format!("coll{i}"), lj);
        }
    }
    let mut conns: Vec<HashMap<usize, NcsConnection>> = (0..n).map(|_| HashMap::new()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let cij = nodes[i]
                .connect(&format!("coll{j}"), ConnectionConfig::unreliable())
                .expect("collectives connect");
            let cji = nodes[j].accept_default().expect("collectives accept");
            conns[i].insert(j, cij);
            conns[j].insert(i, cji);
        }
    }
    let root_conns: Vec<NcsConnection> = conns[0].values().cloned().collect();
    let groups = nodes
        .iter()
        .zip(conns)
        .enumerate()
        .map(|(rank, (node, links))| {
            Arc::new(CollectiveGroup::new(node, 1, rank, links).expect("collective group"))
        })
        .collect();
    (nodes, groups, root_conns)
}

/// The schedule every member runs; rank 0 (the caller's thread, with its
/// group-link clones in `root_conns`) returns the timings: allreduce
/// median, then per broadcast topology the root's blocking cost per
/// round, the fence-confirmed completion per round (the closing 1-element
/// allreduce cannot finish until every member consumed the batch), and
/// the data frames the origin transmitted in the window.
fn coll_schedule(
    rank: usize,
    g: &CollectiveGroup,
    root_conns: &[NcsConnection],
    lat_iters: usize,
    bcast_rounds: usize,
) -> (f64, [(f64, f64, u64); 2]) {
    let bcast_elems = COLL_BCAST_BYTES / 8;
    // Allreduce latency (inherently synchronised; measured at rank 0).
    let contrib = vec![rank as f64 + 1.0; COLL_ALLREDUCE_ELEMS];
    let mut lat_us = Vec::with_capacity(lat_iters);
    for _ in 0..lat_iters {
        let t0 = Instant::now();
        let s = g
            .allreduce(contrib.clone(), ReduceOp::Sum)
            .expect("allreduce");
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        debug_assert!(s.len() == COLL_ALLREDUCE_ELEMS);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let allreduce_median_us = percentile(&lat_us, 0.50);
    // Broadcast: binomial tree vs repetitive flat fan-out.
    let mut per_topo = [(0.0f64, 0.0f64, 0u64); 2];
    for (slot, topo) in [Topology::BinomialTree, Topology::Flat]
        .into_iter()
        .enumerate()
    {
        for _ in 0..COLL_BCAST_WARMUP {
            let buf = vec![0u64; bcast_elems];
            g.broadcast_with(0, buf, topo).expect("warmup broadcast");
        }
        let fence = g
            .allreduce(vec![1.0f64], ReduceOp::Sum)
            .expect("warmup fence");
        debug_assert!(fence[0] >= 1.0);
        let frames_before: u64 = root_conns.iter().map(|c| c.stats().packets_sent).sum();
        let t0 = Instant::now();
        for round in 0..bcast_rounds {
            let buf: Vec<u64> = if rank == 0 {
                vec![round as u64; bcast_elems]
            } else {
                vec![0u64; bcast_elems]
            };
            let got = g.broadcast_with(0, buf, topo).expect("broadcast");
            debug_assert!(got[0] == round as u64);
        }
        let root_us = t0.elapsed().as_secs_f64() * 1e6 / bcast_rounds as f64;
        let fence = g.allreduce(vec![1.0f64], ReduceOp::Sum).expect("fence");
        debug_assert!(fence[0] >= 1.0);
        let done_us = t0.elapsed().as_secs_f64() * 1e6 / bcast_rounds as f64;
        // The fence guarantees every queued frame was transmitted, so the
        // counter delta is the window's complete origin egress.
        let frames_after: u64 = root_conns.iter().map(|c| c.stats().packets_sent).sum();
        per_topo[slot] = (root_us, done_us, frames_after - frames_before);
    }
    (allreduce_median_us, per_topo)
}

fn run_coll_case(
    group_size: usize,
    package: Package,
    pkg: Arc<dyn ThreadPackage>,
    smoke: bool,
) -> CollCaseResult {
    let (lat_iters, bcast_rounds) = if smoke { (40, 12) } else { (200, 32) };
    let (nodes, groups, root_conns) = build_coll_members(group_size, &pkg);
    // Ranks 1.. run on package threads; rank 0 measures on this thread.
    let members: Vec<_> = groups
        .iter()
        .enumerate()
        .skip(1)
        .map(|(rank, g)| {
            let g = Arc::clone(g);
            pkg.spawn_typed(&format!("coll-member-{rank}"), move || {
                coll_schedule(rank, &g, &[], lat_iters, bcast_rounds);
            })
        })
        .collect();
    let (allreduce_median_us, per_topo) =
        coll_schedule(0, &groups[0], &root_conns, lat_iters, bcast_rounds);
    for m in members {
        m.join().expect("collective member");
    }
    drop(groups);
    for node in nodes {
        node.shutdown();
    }
    let (bcast_root_binomial_us, bcast_done_binomial_us, root_frames_binomial) = per_topo[0];
    let (bcast_root_flat_us, bcast_done_flat_us, root_frames_flat) = per_topo[1];
    CollCaseResult {
        package: package.name(),
        group_size,
        allreduce_iters: lat_iters,
        allreduce_median_us,
        bcast_rounds,
        bcast_root_binomial_us,
        bcast_root_flat_us,
        bcast_done_binomial_us,
        bcast_done_flat_us,
        root_frames_binomial,
        root_frames_flat,
        egress_ratio: root_frames_flat as f64 / root_frames_binomial.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Requests section (isend/irecv vs the blocking wrappers; MsgView vs recv)
// ---------------------------------------------------------------------------

/// Ping-pong payload for the request-vs-blocking RTT probe (bytes).
const REQ_LAT_BYTES: usize = 64;

/// One-way message size for the allocations probe (bytes); fits one SDU,
/// so each message costs the receive path exactly one delivery buffer.
const REQ_BULK_BYTES: usize = 2048;

/// Messages per paced window of the allocations probe. The sink
/// acknowledges each window with a 1-byte token before the sender
/// continues, bounding the delivery buffers outstanding at any moment —
/// the probe measures steady-state recycling, not how far an unpaced
/// burst can outrun one consumer thread.
const REQ_WINDOW: usize = 32;

/// Warm-up windows before each allocations measurement (charges the
/// receive node's free lists so the window reports steady state).
const REQ_WARMUP_WINDOWS: usize = 3;

/// The zero-copy receive path must allocate at least this factor fewer
/// buffers per message than the `Vec`-returning `recv` path. `recv`
/// detaches every pooled delivery buffer (≈ 1 allocation per message);
/// dropping a `MsgView` recycles it (≈ 0 after warm-up), so 2x is a
/// floor with a wide margin, not a stretch goal.
const REQ_GATE_MIN_RATIO: f64 = 2.0;

#[derive(Debug)]
struct RequestsCaseResult {
    package: &'static str,
    lat_iters: usize,
    blocking_rtt_median_us: f64,
    blocking_rtt_p99_us: f64,
    request_rtt_median_us: f64,
    request_rtt_p99_us: f64,
    bulk_msgs: usize,
    /// Receive-node pool misses per message when draining with `recv()`
    /// (every delivery buffer detaches with the returned `Vec`).
    allocs_per_msg_recv: f64,
    /// Same window drained with `irecv`/`recv_view` + drop (buffers
    /// recycle).
    allocs_per_msg_msgview: f64,
    /// recv misses / max(msgview misses, 1).
    alloc_ratio: f64,
}

/// Echo peer for the RTT phases: bounces `count` messages back.
fn spawn_request_echo(conn: NcsConnection, count: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for _ in 0..count {
            match conn.recv_view(Duration::from_secs(30)) {
                Ok(m) => {
                    if conn.send(&m).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    })
}

/// Sink for the allocations phases: drains `windows` windows of
/// [`REQ_WINDOW`] messages in the given style, acknowledging each window
/// with a token so the sender stays paced, then fires `done`.
fn spawn_request_sink(
    conn: NcsConnection,
    windows: usize,
    zero_copy: bool,
    done: Arc<Event>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        'outer: for _ in 0..windows {
            for _ in 0..REQ_WINDOW {
                if zero_copy {
                    // MsgView path: the pooled delivery buffer recycles
                    // on drop.
                    if conn.recv_view(Duration::from_secs(30)).is_err() {
                        break 'outer;
                    }
                } else {
                    // Compatibility path: recv() detaches the buffer as
                    // a Vec.
                    if conn.recv_timeout(Duration::from_secs(30)).is_err() {
                        break 'outer;
                    }
                }
            }
            if conn.send(&[0xA1]).is_err() {
                break;
            }
        }
        done.fire();
    })
}

/// Sender half of one paced allocations phase: `windows` windows of
/// [`REQ_WINDOW`] messages, each acknowledged by the sink's token.
fn drive_request_windows(conn_tx: &NcsConnection, payload: &[u8], windows: usize) {
    for _ in 0..windows {
        for _ in 0..REQ_WINDOW {
            conn_tx.send(payload).expect("bulk send");
        }
        let token = conn_tx
            .recv_timeout(Duration::from_secs(30))
            .expect("window token");
        debug_assert_eq!(token.len(), 1);
    }
}

/// Measures one package's requests case over HPI (the §3.1 bypass, where
/// receives reassemble straight into pooled buffers).
fn run_requests_case(
    package: Package,
    pkg: Arc<dyn ThreadPackage>,
    smoke: bool,
) -> RequestsCaseResult {
    let lat_iters = if smoke { 60 } else { 400 };
    let bulk_msgs: usize = if smoke { 160 } else { 1024 };

    // --- RTT: blocking send/recv vs isend/irecv on the same wire. --------
    let pair = build_pair(Iface::Hpi, Arc::clone(&pkg));
    let conn_tx = pair
        .tx_node
        .connect("gate-rx", ConnectionConfig::unreliable())
        .expect("requests connect");
    let conn_rx = pair.rx_node.accept_default().expect("requests accept");
    let echo = spawn_request_echo(conn_rx, 2 * lat_iters + 2);
    let payload = vec![0xD4u8; REQ_LAT_BYTES];

    // Warm-up + blocking window.
    conn_tx.send(&payload).expect("warmup send");
    let _ = conn_tx
        .recv_timeout(Duration::from_secs(10))
        .expect("warmup recv");
    let mut blocking_us = Vec::with_capacity(lat_iters);
    for _ in 0..lat_iters {
        let t0 = Instant::now();
        conn_tx.send(&payload).expect("blocking send");
        let back = conn_tx
            .recv_timeout(Duration::from_secs(10))
            .expect("blocking recv");
        blocking_us.push(t0.elapsed().as_secs_f64() * 1e6);
        debug_assert_eq!(back.len(), REQ_LAT_BYTES);
    }

    // Request window: post irecv before isend, wait the pair.
    conn_tx.send(&payload).expect("warmup send");
    let _ = conn_tx
        .recv_timeout(Duration::from_secs(10))
        .expect("warmup recv");
    let mut request_us = Vec::with_capacity(lat_iters);
    for _ in 0..lat_iters {
        let t0 = Instant::now();
        let want = conn_tx.irecv();
        let sent = conn_tx.isend(&payload).expect("isend");
        sent.wait_timeout(Duration::from_secs(10))
            .expect("isend completion");
        let back = want
            .wait_timeout(Duration::from_secs(10))
            .expect("irecv completion");
        request_us.push(t0.elapsed().as_secs_f64() * 1e6);
        debug_assert_eq!(back.len(), REQ_LAT_BYTES);
    }
    let _ = echo.join();
    pair.shutdown();
    blocking_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    request_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // --- Allocations per message: recv() vs MsgView, paced one-way. ------
    let windows = bulk_msgs.div_ceil(REQ_WINDOW);
    let bulk_msgs = windows * REQ_WINDOW;
    let mut allocs = [0.0f64; 2]; // [recv, msgview]
    for (slot, zero_copy) in [false, true].into_iter().enumerate() {
        let pair = build_pair(Iface::Hpi, Arc::clone(&pkg));
        let conn_tx = pair
            .tx_node
            .connect("gate-rx", ConnectionConfig::unreliable())
            .expect("bulk connect");
        let conn_rx = pair.rx_node.accept_default().expect("bulk accept");
        let payload = vec![0xE5u8; REQ_BULK_BYTES];
        let rx_node = pair.rx_node.clone();
        let done = Arc::new(Event::new());
        let sink = spawn_request_sink(
            conn_rx,
            REQ_WARMUP_WINDOWS + windows,
            zero_copy,
            Arc::clone(&done),
        );
        // Warm-up in the same consumption style, then snapshot.
        drive_request_windows(&conn_tx, &payload, REQ_WARMUP_WINDOWS);
        let before = rx_node.pool_stats();
        drive_request_windows(&conn_tx, &payload, windows);
        assert!(
            done.wait_timeout(Duration::from_secs(120)),
            "request bulk never drained"
        );
        let delta = rx_node.pool_stats().since(&before);
        let _ = sink.join();
        allocs[slot] = delta.misses as f64 / bulk_msgs as f64;
        pair.shutdown();
    }
    let [allocs_per_msg_recv, allocs_per_msg_msgview] = allocs;
    let alloc_ratio = (allocs_per_msg_recv * bulk_msgs as f64)
        / (allocs_per_msg_msgview * bulk_msgs as f64).max(1.0);

    RequestsCaseResult {
        package: package.name(),
        lat_iters,
        blocking_rtt_median_us: percentile(&blocking_us, 0.50),
        blocking_rtt_p99_us: percentile(&blocking_us, 0.99),
        request_rtt_median_us: percentile(&request_us, 0.50),
        request_rtt_p99_us: percentile(&request_us, 0.99),
        bulk_msgs,
        allocs_per_msg_recv,
        allocs_per_msg_msgview,
        alloc_ratio,
    }
}

// ---------------------------------------------------------------------------
// SimWorld section (the deterministic thousand-rank engine)
// ---------------------------------------------------------------------------

/// World size of the sim perf case.
const SIM_RANKS: u32 = 1000;

/// Seed of the sim perf case (any value works; fixed so the snapshot's
/// event count is reproducible to the byte).
const SIM_SEED: u64 = 2026;

/// The wall-time gate: the 1,000-rank broadcast + barrier scenario must
/// complete in under this many seconds of real time (the ISSUE bound is
/// 60 s for a full allreduce world; this engine does it in milliseconds,
/// so the gate guards against pathological regressions, not noise).
const SIM_GATE_MAX_WALL_SECS: f64 = 60.0;

#[derive(Debug)]
struct SimCaseResult {
    scenario: &'static str,
    ranks: u32,
    seed: u64,
    events_processed: u64,
    virtual_ms: f64,
    wall_secs: f64,
    events_per_sec: f64,
    /// Second run with the same seed reproduced trace + telemetry
    /// byte-for-byte.
    deterministic: bool,
}

fn run_sim_case() -> SimCaseResult {
    use ncs_runtime::sim::{Scenario, SimOp};
    let mut scenario = Scenario::new("perf-broadcast", SIM_RANKS, SIM_SEED);
    scenario.ops = vec![
        SimOp::Broadcast {
            root: 0,
            timeout: Duration::from_secs(30),
        },
        SimOp::Barrier {
            timeout: Duration::from_secs(30),
        },
    ];
    let started = Instant::now();
    let report = ncs_runtime::SimWorld::new(scenario.clone()).run();
    let wall_secs = started.elapsed().as_secs_f64();
    let second = ncs_runtime::SimWorld::new(scenario).run();
    let deterministic = report.all_completed()
        && second.trace == report.trace
        && second.telemetry_json == report.telemetry_json;
    SimCaseResult {
        scenario: "perf-broadcast",
        ranks: SIM_RANKS,
        seed: SIM_SEED,
        events_processed: report.events_processed,
        virtual_ms: report.virtual_elapsed.as_secs_f64() * 1e3,
        wall_secs,
        events_per_sec: report.events_processed as f64 / wall_secs.max(f64::MIN_POSITIVE),
        deterministic,
    }
}

// ---------------------------------------------------------------------------
// Cross-process cluster section (real sockets between real OS processes)
// ---------------------------------------------------------------------------

/// World sizes the cluster section sweeps.
const CLUSTER_WORLDS: [u32; 2] = [2, 4];

/// RTT probe payload between ranks 0 and 1 (bytes).
const CLUSTER_RTT_BYTES: usize = 64;

/// Elements per member in the cross-process allreduce probe.
const CLUSTER_ALLREDUCE_ELEMS: usize = 64;

#[derive(Debug)]
struct ClusterCaseResult {
    np: u32,
    rtt_iters: usize,
    rtt_median_us: f64,
    rtt_p99_us: f64,
    allreduce_iters: usize,
    allreduce_median_us: f64,
    /// Child ranks that exited 0 (the parent is rank 0 and not counted).
    children_ok: usize,
}

fn cluster_iters(smoke: bool) -> (usize, usize) {
    if smoke {
        (40, 20)
    } else {
        (200, 100)
    }
}

/// The schedule every rank of a cluster case runs. Ranks 0 and 1 first
/// ping-pong over a dedicated point-to-point connection (so the RTT is a
/// clean two-process socket round trip, not collective machinery), then
/// the whole world allreduces. Rank 0 returns the measurements.
fn cluster_schedule(cluster: &ClusterNode, smoke: bool) -> Option<(Vec<f64>, f64)> {
    let (rtt_iters, ar_iters) = cluster_iters(smoke);
    let rank = cluster.rank();
    let payload = vec![0xC3u8; CLUSTER_RTT_BYTES];
    let mut rtts_us = Vec::new();
    if rank == 0 {
        let conn = cluster
            .open_connection(1, ConnectionConfig::unreliable())
            .expect("rtt connect");
        // Warm-up exchange, outside the measured window.
        conn.send(&payload).expect("rtt warmup send");
        conn.recv_timeout(Duration::from_secs(30))
            .expect("rtt warmup recv");
        for _ in 0..rtt_iters {
            let t0 = Instant::now();
            conn.send(&payload).expect("rtt send");
            let back = conn
                .recv_timeout(Duration::from_secs(30))
                .expect("rtt recv");
            rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(back.len(), CLUSTER_RTT_BYTES);
        }
        conn.send(&[SENTINEL]).expect("rtt sentinel");
    } else if rank == 1 {
        let conn = cluster
            .accept_connection(Duration::from_secs(30))
            .expect("rtt accept");
        loop {
            match conn.recv_timeout(Duration::from_secs(30)) {
                Ok(m) if m.len() == 1 && m[0] == SENTINEL => break,
                Ok(m) => conn.send(&m).expect("rtt echo"),
                Err(e) => panic!("rtt echo recv: {e}"),
            }
        }
    }
    // Cross-process allreduce over the whole world (the collectives
    // engine, unmodified, across OS processes).
    let group = cluster.collective_group(1).expect("cluster group");
    let contrib = vec![1.0f64; CLUSTER_ALLREDUCE_ELEMS];
    let mut ar_us = Vec::with_capacity(ar_iters);
    for _ in 0..ar_iters {
        let t0 = Instant::now();
        let sum = group
            .allreduce(contrib.clone(), ReduceOp::Sum)
            .expect("cluster allreduce");
        ar_us.push(t0.elapsed().as_secs_f64() * 1e6);
        // A hard assert (not debug_assert): the gate must verify the data
        // that crossed process boundaries, not just time it — a wrong sum
        // exits this rank nonzero and trips the cluster gate.
        assert!(
            sum.len() == CLUSTER_ALLREDUCE_ELEMS && sum.iter().all(|&v| v == cluster.size() as f64),
            "cross-process allreduce produced a wrong result on rank {rank}: {:?}",
            &sum[..sum.len().min(4)]
        );
    }
    group.barrier().expect("cluster barrier");
    drop(group);
    if rank == 0 {
        rtts_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ar_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some((rtts_us, percentile(&ar_us, 0.50)))
    } else {
        None
    }
}

/// Runs as a spawned child rank (`perf_gate --cluster-child`): bootstrap
/// from the environment, run the schedule, exit.
fn run_cluster_child() -> ! {
    let smoke = std::env::var("NCS_GATE_SMOKE").as_deref() == Ok("1");
    let cfg = ClusterConfig::from_env().expect("cluster child env");
    let cluster = ClusterNode::bootstrap(cfg).expect("cluster child bootstrap");
    cluster_schedule(&cluster, smoke);
    cluster.shutdown();
    std::process::exit(0);
}

/// One cross-process case: this process embeds the rendezvous service and
/// runs rank 0; ranks `1..np` are real spawned OS processes (this same
/// binary with `--cluster-child`).
fn run_cluster_case(np: u32, smoke: bool) -> ClusterCaseResult {
    let server = RendezvousServer::start("127.0.0.1:0", np).expect("embedded ncsd");
    let me = std::env::current_exe().expect("current exe");
    let mut children: Vec<std::process::Child> = (1..np)
        .map(|rank| {
            std::process::Command::new(&me)
                .arg("--cluster-child")
                .env("NCS_RANK", rank.to_string())
                .env("NCS_WORLD", np.to_string())
                .env("NCS_NCSD", server.addr().to_string())
                .env("NCS_GATE_SMOKE", if smoke { "1" } else { "0" })
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn cluster child")
        })
        .collect();
    let cluster =
        ClusterNode::bootstrap(ClusterConfig::new(0, np, server.addr())).expect("rank 0 bootstrap");
    let (rtts_us, allreduce_median_us) =
        cluster_schedule(&cluster, smoke).expect("rank 0 measures");
    cluster.shutdown();
    // Reap under a deadline: one hung child must not hang the gate.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut children_ok = 0;
    let mut done = vec![false; children.len()];
    while !done.iter().all(|&d| d) && Instant::now() < deadline {
        for (c, d) in children.iter_mut().zip(done.iter_mut()) {
            if *d {
                continue;
            }
            if let Ok(Some(status)) = c.try_wait() {
                *d = true;
                if status.success() {
                    children_ok += 1;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for (c, d) in children.iter_mut().zip(done.iter()) {
        if !*d {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
    let (rtt_iters, ar_iters) = cluster_iters(smoke);
    ClusterCaseResult {
        np,
        rtt_iters,
        rtt_median_us: percentile(&rtts_us, 0.50),
        rtt_p99_us: percentile(&rtts_us, 0.99),
        allreduce_iters: ar_iters,
        allreduce_median_us,
        children_ok,
    }
}

// ---------------------------------------------------------------------------
// c10k section: connection scalability under the readiness reactor.
// ---------------------------------------------------------------------------

/// Connections the c10k section holds open concurrently (both nodes live
/// in this process, so 2x this many endpoints ride the shared reactor).
const C10K_CONNECTIONS: usize = 1024;

/// Baseline connection count whose p99 RTT anchors the latency gate.
const C10K_BASELINE: usize = 8;

/// HPI ring capacity per c10k channel, in frames. Deliberately small:
/// 2 x 1024 channels exist at once and each probe has one frame in flight.
const C10K_RING: usize = 32;

/// Ceiling on the process's OS thread count while every c10k connection
/// is open. The Figure-4 design spent five threads per connection — over
/// 5,000 threads here; the reactor multiplexes every connection onto
/// O(cores) event loops plus the O(peers) control plane, so the whole
/// process stays far under this bound.
const C10K_MAX_THREADS: usize = 128;

/// The loaded p99 RTT may be at most this multiple of the baseline p99.
const C10K_MAX_P99_RATIO: f64 = 2.0;

#[derive(Debug)]
struct C10kResult {
    rtt_iters: usize,
    baseline_median_us: f64,
    baseline_p99_us: f64,
    loaded_median_us: f64,
    loaded_p99_us: f64,
    p99_ratio: f64,
    os_threads_baseline: usize,
    os_threads_loaded: usize,
    reactor: ncs_core::ReactorStats,
    thread_gate_pass: bool,
    latency_gate_pass: bool,
}

/// OS threads in this process, from procfs. 0 when the platform has no
/// `/proc` — the thread gate then rests on the reactor's own shard count.
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Round-robin ping-pong across connection pairs, driven from this thread
/// (HPI completes both directions synchronously, so one thread measures a
/// full application-level round trip). Returns sorted microseconds.
fn c10k_rtt(pairs: &[(NcsConnection, NcsConnection)], iters: usize) -> Vec<f64> {
    let payload = vec![0x42u8; LAT_BYTES];
    // One untimed round so every connection's reactor task has run at
    // least once before the measured window.
    for (ca, cb) in pairs {
        ca.send(&payload).expect("c10k warmup send");
        let m = cb
            .recv_timeout(Duration::from_secs(10))
            .expect("c10k warmup recv");
        cb.send(&m).expect("c10k warmup echo");
        ca.recv_timeout(Duration::from_secs(10))
            .expect("c10k warmup return");
    }
    let mut samples = Vec::with_capacity(iters);
    for k in 0..iters {
        let (ca, cb) = &pairs[k % pairs.len()];
        let t0 = Instant::now();
        ca.send(&payload).expect("c10k send");
        let m = cb.recv_timeout(Duration::from_secs(10)).expect("c10k recv");
        cb.send(&m).expect("c10k echo");
        ca.recv_timeout(Duration::from_secs(10))
            .expect("c10k return");
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples
}

/// Holds [`C10K_CONNECTIONS`] connections open between two in-process
/// nodes sharing one reactor, and checks that (a) the OS thread count
/// stays O(cores) + O(peers) rather than O(connections), and (b) the p99
/// round-trip time across all connections stays within
/// [`C10K_MAX_P99_RATIO`] of the [`C10K_BASELINE`]-connection figure.
fn run_c10k_case(smoke: bool) -> C10kResult {
    let rtt_iters = if smoke {
        2 * C10K_CONNECTIONS
    } else {
        8 * C10K_CONNECTIONS
    };
    let pkg: Arc<dyn ThreadPackage> = Arc::new(KernelPackage::new());
    let reactor = ncs_core::Reactor::with_default_shards(Arc::clone(&pkg));
    let a = NcsNode::builder("c10k-a")
        .thread_package(Arc::clone(&pkg))
        .reactor(Arc::clone(&reactor))
        .build();
    let b = NcsNode::builder("c10k-b")
        .thread_package(Arc::clone(&pkg))
        .reactor(Arc::clone(&reactor))
        .build();
    let (la, lb) = HpiLinkPair::with_capacity(C10K_RING);
    a.attach_peer("c10k-b", la);
    b.attach_peer("c10k-a", lb);

    let open_pairs = |n: usize| -> Vec<(NcsConnection, NcsConnection)> {
        // Accepts queue autonomously on the peer's master thread, so one
        // thread can open then drain sequentially; arrival order matches
        // connect order on the single link.
        let ca: Vec<NcsConnection> = (0..n)
            .map(|_| {
                a.connect("c10k-b", ConnectionConfig::unreliable())
                    .expect("c10k connect")
            })
            .collect();
        ca.into_iter()
            .map(|c| (c, b.accept_default().expect("c10k accept")))
            .collect()
    };

    let mut pairs = open_pairs(C10K_BASELINE);
    let baseline = c10k_rtt(&pairs, rtt_iters);
    let os_threads_baseline = os_thread_count();

    eprintln!("  opening {} connections...", C10K_CONNECTIONS);
    pairs.extend(open_pairs(C10K_CONNECTIONS - C10K_BASELINE));
    let loaded = c10k_rtt(&pairs, rtt_iters);
    let os_threads_loaded = os_thread_count();
    let reactor_stats = reactor.stats();

    for (ca, cb) in &pairs {
        ca.close();
        cb.close();
    }
    a.shutdown();
    b.shutdown();
    reactor.shutdown();

    let baseline_p99_us = percentile(&baseline, 0.99);
    let loaded_p99_us = percentile(&loaded, 0.99);
    let p99_ratio = loaded_p99_us / baseline_p99_us.max(f64::EPSILON);
    C10kResult {
        rtt_iters,
        baseline_median_us: percentile(&baseline, 0.50),
        baseline_p99_us,
        loaded_median_us: percentile(&loaded, 0.50),
        loaded_p99_us,
        p99_ratio,
        os_threads_baseline,
        os_threads_loaded,
        thread_gate_pass: os_threads_loaded <= C10K_MAX_THREADS,
        latency_gate_pass: p99_ratio <= C10K_MAX_P99_RATIO,
        reactor: reactor_stats,
    }
}

// ---------------------------------------------------------------------------
// Membership section: view propagation + failure detection over loopback.
// ---------------------------------------------------------------------------

/// World size of the membership section; the highest rank is the victim
/// that is repeatedly silenced and rejoined.
const MEMBERSHIP_NP: u32 = 4;

/// Failure detection (victim silenced → death view applied by the last
/// survivor) must land within this multiple of the heartbeat interval.
const MEMBERSHIP_GATE_MAX_DETECT_INTERVALS: f64 = 3.0;

/// View propagation (rejoin accepted by `ncsd` → new view applied by the
/// last survivor) must land within this many milliseconds. Views are
/// pushed on the subscribers' long-lived channels, so the real figure is
/// a couple of loopback hops plus one serve-loop poll (≤ a quarter
/// heartbeat interval); the bound only has to catch a broken push path.
const MEMBERSHIP_GATE_MAX_PROP_MS: f64 = 150.0;

/// Detector tuning for the section. `dead_after` is two heartbeat
/// intervals, so the end-to-end detection figure (silence → sweep →
/// push → sink) has half an interval of headroom under the 3× gate
/// while staying lax enough that a stalled runner doesn't convict a
/// pulsing survivor.
fn membership_cfg() -> MembershipConfig {
    MembershipConfig {
        heartbeat_interval: Duration::from_millis(100),
        suspect_after: Duration::from_millis(150),
        dead_after: Duration::from_millis(200),
    }
}

/// Kill/rejoin cycles the membership section drives.
fn membership_cycles(smoke: bool) -> usize {
    if smoke {
        2
    } else {
        5
    }
}

#[derive(Debug)]
struct MembershipCaseResult {
    np: u32,
    cycles: usize,
    heartbeat_ms: f64,
    /// Per-cycle silence → death-view latency (worst survivor), sorted, ms.
    detect_ms: Vec<f64>,
    /// Per-cycle rejoin → join-view latency (worst survivor), sorted, ms.
    prop_ms: Vec<f64>,
    /// Every survivor saw strictly increasing view epochs.
    views_in_order: bool,
}

/// One timestamped view observation at a survivor's sink.
type MembershipLog = Arc<std::sync::Mutex<Vec<(Instant, ncs_runtime::View)>>>;

/// Blocks until every log holds a view matching `pred`, returning the
/// worst (latest) arrival timestamp across the logs.
fn membership_wait_all(
    logs: &[MembershipLog],
    what: &str,
    pred: impl Fn(&ncs_runtime::View) -> bool,
) -> Instant {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut worst = Instant::now();
    for log in logs {
        loop {
            if let Some((at, _)) = log
                .lock()
                .expect("membership log")
                .iter()
                .find(|(_, v)| pred(v))
            {
                worst = worst.max(*at);
                break;
            }
            assert!(
                Instant::now() < deadline,
                "membership section timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    worst
}

/// Drives a real `RendezvousServer` + `MemberAgent` world over loopback
/// through `cycles` silence → death-view → rejoin → join-view rounds,
/// timing the failure detector and the view push at the survivors' sinks.
fn run_membership_case(smoke: bool) -> MembershipCaseResult {
    use ncs_runtime::{rendezvous, MemberAgent, MembershipMetrics};

    let cfg = membership_cfg();
    let np = MEMBERSHIP_NP;
    let victim = np - 1;
    let cycles = membership_cycles(smoke);
    let server =
        RendezvousServer::start_with("127.0.0.1:0", np, cfg.clone()).expect("membership ncsd");
    let ncsd = server.addr();

    // Seal the roster (membership epoch 1) with placeholder listener
    // addresses: the section measures the control plane — nothing ever
    // dials a member.
    let registrars: Vec<_> = (0..np)
        .map(|r| {
            std::thread::spawn(move || {
                let addr: std::net::SocketAddr =
                    format!("127.0.0.1:{}", 40_000 + r).parse().expect("addr");
                rendezvous::register(ncsd, r, np, addr, Duration::from_secs(10))
                    .expect("membership register")
            })
        })
        .collect();
    for h in registrars {
        h.join().expect("register thread");
    }

    let logs: Vec<MembershipLog> = (0..victim).map(|_| MembershipLog::default()).collect();
    let mut survivors: Vec<MemberAgent> = logs
        .iter()
        .enumerate()
        .map(|(r, log)| {
            let log = Arc::clone(log);
            MemberAgent::start(
                ncsd,
                r as u32,
                0,
                cfg.clone(),
                MembershipMetrics::detached(),
                Arc::new(move |v: &ncs_runtime::View| {
                    log.lock()
                        .expect("membership log")
                        .push((Instant::now(), v.clone()));
                }),
            )
            .expect("survivor agent")
        })
        .collect();
    let mut victim_agent = Some(
        MemberAgent::start(
            ncsd,
            victim,
            0,
            cfg.clone(),
            MembershipMetrics::detached(),
            Arc::new(|_: &ncs_runtime::View| {}),
        )
        .expect("victim agent"),
    );
    membership_wait_all(&logs, "seed view", |v| v.id == 1 && v.is_full());

    let rejoin_addr: std::net::SocketAddr = "127.0.0.1:40999".parse().expect("addr");
    let mut detect_ms = Vec::with_capacity(cycles);
    let mut prop_ms = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        // Views advance deterministically: seed is 1, then one death and
        // one join view per cycle.
        let death_id = 2 + 2 * cycle as u64;
        victim_agent.take().expect("victim alive").stop();
        let t0 = Instant::now();
        let seen = membership_wait_all(&logs, "death view", |v| {
            v.id == death_id && v.dead.contains(&victim)
        });
        detect_ms.push(seen.saturating_duration_since(t0).as_secs_f64() * 1e3);

        let incarnation = cycle as u32 + 1;
        let t1 = Instant::now();
        rendezvous::rejoin(
            ncsd,
            victim,
            np,
            rejoin_addr,
            incarnation,
            Duration::from_secs(10),
        )
        .expect("membership rejoin");
        let seen = membership_wait_all(&logs, "join view", |v| {
            v.id == death_id + 1 && v.joined.contains(&victim)
        });
        prop_ms.push(seen.saturating_duration_since(t1).as_secs_f64() * 1e3);
        victim_agent = Some(
            MemberAgent::start(
                ncsd,
                victim,
                incarnation,
                cfg.clone(),
                MembershipMetrics::detached(),
                Arc::new(|_: &ncs_runtime::View| {}),
            )
            .expect("victim agent restart"),
        );
    }

    let views_in_order = logs.iter().all(|log| {
        let ids: Vec<u64> = log
            .lock()
            .expect("membership log")
            .iter()
            .map(|(_, v)| v.id)
            .collect();
        ids.windows(2).all(|w| w[0] < w[1])
    });

    if let Some(mut v) = victim_agent {
        v.stop();
    }
    for a in &mut survivors {
        a.stop();
    }

    detect_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    prop_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    MembershipCaseResult {
        np,
        cycles,
        heartbeat_ms: cfg.heartbeat_interval.as_secs_f64() * 1e3,
        detect_ms,
        prop_ms,
        views_in_order,
    }
}

fn case_cfg(iface: Iface, package: Package, smoke: bool) -> BenchCfg {
    let (mut lat_iters, mut bulk_msgs) = if smoke { (30, 60) } else { (300, 500) };
    if iface == Iface::Sci && package == Package::User {
        // SCI receives are blocking system calls; under the user-level
        // package they stall the whole scheduler between frames (the §4.1
        // pathology the paper documents). Keep the combination honest but
        // short.
        lat_iters = lat_iters.min(30);
        bulk_msgs = bulk_msgs.min(60);
    }
    BenchCfg {
        lat_iters,
        bulk_msgs,
    }
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is a static identifier; guard the invariant.
    debug_assert!(s
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || "-_./".contains(c)));
    s
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    out: &mut String,
    results: &[CaseResult],
    coll_results: &[CollCaseResult],
    req_results: &[RequestsCaseResult],
    msgrate_results: &[MsgRateCaseResult],
    telemetry_results: &[TelemetryCaseResult],
    cluster_results: &[ClusterCaseResult],
    sim: &SimCaseResult,
    c10k: &C10kResult,
    smoke: bool,
    gate_value: f64,
    gate_pass: bool,
    coll_gate_value: f64,
    coll_gate_pass: bool,
    req_gate_value: f64,
    req_gate_pass: bool,
    msgrate_cpus: usize,
    msgrate_threshold: f64,
    msgrate_gate_value: f64,
    msgrate_gate_pass: bool,
    telemetry_gate_value: f64,
    telemetry_gate_pass: bool,
    cluster_gate_pass: bool,
    membership: &MembershipCaseResult,
    membership_detect_value: f64,
    membership_detect_pass: bool,
    membership_prop_value: f64,
    membership_prop_pass: bool,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"ncs-dataplane-bench/9\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"latency_bytes\": {LAT_BYTES},");
    let _ = writeln!(out, "  \"bulk_message_bytes\": {BULK_BYTES},");
    let _ = writeln!(
        out,
        "  \"alloc_metric\": \"pool checkouts = seed-path allocations at the same call sites; \
         pool misses = pooled-path allocations; improvement = checkouts / max(misses, 1)\","
    );
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(
        out,
        "    \"metric\": \"min HPI bulk alloc_improvement across packages\","
    );
    let _ = writeln!(out, "    \"threshold\": {GATE_MIN_IMPROVEMENT:.1},");
    let _ = writeln!(out, "    \"value\": {gate_value:.2},");
    let _ = writeln!(out, "    \"pass\": {gate_pass}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"collectives\": {{");
    let _ = writeln!(out, "    \"interface\": \"HPI\",");
    let _ = writeln!(out, "    \"allreduce_elems\": {COLL_ALLREDUCE_ELEMS},");
    let _ = writeln!(out, "    \"broadcast_bytes\": {COLL_BCAST_BYTES},");
    let _ = writeln!(out, "    \"gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"min origin egress improvement (flat frames / binomial frames) for groups >= {COLL_GATE_MIN_GROUP}\","
    );
    let _ = writeln!(out, "      \"threshold\": {COLL_GATE_MIN_EGRESS_RATIO:.1},");
    let _ = writeln!(out, "      \"value\": {coll_gate_value:.2},");
    let _ = writeln!(out, "      \"pass\": {coll_gate_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    for (i, r) in coll_results.iter().enumerate() {
        let comma = if i + 1 < coll_results.len() { "," } else { "" };
        let _ = writeln!(out, "      {{");
        let _ = writeln!(
            out,
            "        \"package\": \"{}\", \"group_size\": {},",
            json_escape_free(r.package),
            r.group_size
        );
        let _ = writeln!(
            out,
            "        \"allreduce\": {{ \"iters\": {}, \"median_us\": {:.2} }},",
            r.allreduce_iters, r.allreduce_median_us
        );
        let _ = writeln!(
            out,
            "        \"broadcast\": {{ \"rounds\": {}, \"root_binomial_us\": {:.2}, \"root_flat_us\": {:.2}, \
             \"done_binomial_us\": {:.2}, \"done_flat_us\": {:.2},",
            r.bcast_rounds,
            r.bcast_root_binomial_us,
            r.bcast_root_flat_us,
            r.bcast_done_binomial_us,
            r.bcast_done_flat_us,
        );
        let _ = writeln!(
            out,
            "          \"root_frames_binomial\": {}, \"root_frames_flat\": {}, \"egress_ratio\": {:.2} }}",
            r.root_frames_binomial, r.root_frames_flat, r.egress_ratio
        );
        let _ = writeln!(out, "      }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"requests\": {{");
    let _ = writeln!(out, "    \"interface\": \"HPI\",");
    let _ = writeln!(out, "    \"latency_bytes\": {REQ_LAT_BYTES},");
    let _ = writeln!(out, "    \"bulk_message_bytes\": {REQ_BULK_BYTES},");
    let _ = writeln!(out, "    \"gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"min (recv allocs/msg / MsgView allocs/msg) across packages — the zero-copy receive path must allocate >= {REQ_GATE_MIN_RATIO:.0}x fewer buffers per message\","
    );
    let _ = writeln!(out, "      \"threshold\": {REQ_GATE_MIN_RATIO:.1},");
    let _ = writeln!(out, "      \"value\": {req_gate_value:.2},");
    let _ = writeln!(out, "      \"pass\": {req_gate_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    for (i, r) in req_results.iter().enumerate() {
        let comma = if i + 1 < req_results.len() { "," } else { "" };
        let _ = writeln!(out, "      {{");
        let _ = writeln!(
            out,
            "        \"package\": \"{}\",",
            json_escape_free(r.package)
        );
        let _ = writeln!(
            out,
            "        \"rtt\": {{ \"iters\": {}, \"blocking_median_us\": {:.2}, \"blocking_p99_us\": {:.2}, \
             \"request_median_us\": {:.2}, \"request_p99_us\": {:.2} }},",
            r.lat_iters,
            r.blocking_rtt_median_us,
            r.blocking_rtt_p99_us,
            r.request_rtt_median_us,
            r.request_rtt_p99_us,
        );
        let _ = writeln!(
            out,
            "        \"allocs\": {{ \"messages\": {}, \"per_msg_recv\": {:.3}, \"per_msg_msgview\": {:.3}, \"ratio\": {:.2} }}",
            r.bulk_msgs, r.allocs_per_msg_recv, r.allocs_per_msg_msgview, r.alloc_ratio,
        );
        let _ = writeln!(out, "      }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"mt_msgrate\": {{");
    let _ = writeln!(out, "    \"message_bytes\": {},", msgrate::MESSAGE_SIZE);
    let _ = writeln!(out, "    \"window\": {},", msgrate::WINDOW_SIZE);
    let _ = writeln!(out, "    \"gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"HPI kernel-package aggregate Mmsgs/s at 4 threads over 1 thread; \
         threshold is parallelism-aware (2.0 at >= 4 CPUs, 1.2 at 2-3, 0.5 no-collapse at 1 — \
         see docs/BENCH_SCHEMA.md)\","
    );
    let _ = writeln!(out, "      \"cpus\": {msgrate_cpus},");
    let _ = writeln!(out, "      \"threshold\": {msgrate_threshold:.1},");
    let _ = writeln!(out, "      \"value\": {msgrate_gate_value:.2},");
    let _ = writeln!(out, "      \"pass\": {msgrate_gate_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    for (i, r) in msgrate_results.iter().enumerate() {
        let comma = if i + 1 < msgrate_results.len() {
            ","
        } else {
            ""
        };
        let per_thread = r
            .per_thread_mmsgs_s
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "      {{");
        let _ = writeln!(
            out,
            "        \"interface\": \"{}\", \"package\": \"{}\", \"threads\": {},",
            json_escape_free(r.iface),
            json_escape_free(r.package),
            r.threads
        );
        let _ = writeln!(
            out,
            "        \"msgs_per_thread\": {}, \"aggregate_mmsgs_s\": {:.3}, \
             \"per_thread_mmsgs_s\": [{per_thread}]",
            r.msgs_per_thread, r.aggregate_mmsgs_s
        );
        let _ = writeln!(out, "      }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"telemetry\": {{");
    let _ = writeln!(out, "    \"interface\": \"HPI\",");
    let _ = writeln!(out, "    \"message_bytes\": {},", msgrate::MESSAGE_SIZE);
    let _ = writeln!(out, "    \"gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"max HPI msgrate overhead of the flight recorder across packages \
         (recording enabled vs kill-switch disabled), percent\","
    );
    let _ = writeln!(
        out,
        "      \"threshold\": {TELEMETRY_GATE_MAX_OVERHEAD_PCT:.1},"
    );
    let _ = writeln!(out, "      \"value\": {telemetry_gate_value:.2},");
    let _ = writeln!(out, "      \"pass\": {telemetry_gate_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    for (i, r) in telemetry_results.iter().enumerate() {
        let comma = if i + 1 < telemetry_results.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "      {{");
        let _ = writeln!(
            out,
            "        \"package\": \"{}\", \"threads\": {}, \"msgs_per_thread\": {},",
            json_escape_free(r.package),
            r.threads,
            r.msgs_per_thread
        );
        let _ = writeln!(
            out,
            "        \"enabled_mmsgs_s\": {:.3}, \"disabled_mmsgs_s\": {:.3}, \"overhead_pct\": {:.2}",
            r.enabled_mmsgs_s, r.disabled_mmsgs_s, r.overhead_pct
        );
        let _ = writeln!(out, "      }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"cluster\": {{");
    let _ = writeln!(out, "    \"transport\": \"SCI\",");
    let _ = writeln!(out, "    \"rtt_bytes\": {CLUSTER_RTT_BYTES},");
    let _ = writeln!(out, "    \"allreduce_elems\": {CLUSTER_ALLREDUCE_ELEMS},");
    let _ = writeln!(out, "    \"gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"every child rank of every cross-process case exits 0 and rank 0 measures non-zero latencies\","
    );
    let _ = writeln!(out, "      \"pass\": {cluster_gate_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    for (i, r) in cluster_results.iter().enumerate() {
        let comma = if i + 1 < cluster_results.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "      {{");
        let _ = writeln!(
            out,
            "        \"np\": {}, \"children_ok\": {},",
            r.np, r.children_ok
        );
        let _ = writeln!(
            out,
            "        \"rtt\": {{ \"iters\": {}, \"median_us\": {:.2}, \"p99_us\": {:.2} }},",
            r.rtt_iters, r.rtt_median_us, r.rtt_p99_us
        );
        let _ = writeln!(
            out,
            "        \"allreduce\": {{ \"iters\": {}, \"median_us\": {:.2} }}",
            r.allreduce_iters, r.allreduce_median_us
        );
        let _ = writeln!(out, "      }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"sim\": {{");
    let _ = writeln!(out, "    \"engine\": \"SimWorld\",");
    let _ = writeln!(out, "    \"wall_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"wall seconds for the {SIM_RANKS}-rank broadcast + barrier scenario \
         under virtual time\","
    );
    let _ = writeln!(out, "      \"threshold\": {SIM_GATE_MAX_WALL_SECS:.1},");
    let _ = writeln!(out, "      \"value\": {:.4},", sim.wall_secs);
    let _ = writeln!(
        out,
        "      \"pass\": {}",
        sim.wall_secs <= SIM_GATE_MAX_WALL_SECS
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"determinism_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"same seed run twice reproduces the event trace and telemetry \
         byte-for-byte, with every op completing\","
    );
    let _ = writeln!(out, "      \"pass\": {}", sim.deterministic);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    let _ = writeln!(out, "      {{");
    let _ = writeln!(
        out,
        "        \"scenario\": \"{}\", \"ranks\": {}, \"seed\": {},",
        json_escape_free(sim.scenario),
        sim.ranks,
        sim.seed
    );
    let _ = writeln!(
        out,
        "        \"events_processed\": {}, \"virtual_ms\": {:.3}, \"wall_secs\": {:.4}, \
         \"events_per_sec\": {:.0}",
        sim.events_processed, sim.virtual_ms, sim.wall_secs, sim.events_per_sec
    );
    let _ = writeln!(out, "      }}");
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"c10k\": {{");
    let _ = writeln!(out, "    \"interface\": \"HPI\",");
    let _ = writeln!(out, "    \"connections\": {C10K_CONNECTIONS},");
    let _ = writeln!(out, "    \"latency_bytes\": {LAT_BYTES},");
    let _ = writeln!(out, "    \"thread_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"OS threads with {C10K_CONNECTIONS} connections open — the reactor \
         multiplexes every connection onto O(cores) event loops, never one thread (let alone \
         five) per connection\","
    );
    let _ = writeln!(out, "      \"threshold\": {C10K_MAX_THREADS},");
    let _ = writeln!(out, "      \"value\": {},", c10k.os_threads_loaded);
    let _ = writeln!(out, "      \"pass\": {}", c10k.thread_gate_pass);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"latency_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"p99 RTT round-robin across all {C10K_CONNECTIONS} connections, as a \
         multiple of the {C10K_BASELINE}-connection p99\","
    );
    let _ = writeln!(out, "      \"threshold\": {C10K_MAX_P99_RATIO:.1},");
    let _ = writeln!(out, "      \"value\": {:.2},", c10k.p99_ratio);
    let _ = writeln!(out, "      \"pass\": {}", c10k.latency_gate_pass);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(
        out,
        "    \"baseline\": {{ \"connections\": {C10K_BASELINE}, \"iters\": {}, \
         \"median_us\": {:.2}, \"p99_us\": {:.2}, \"os_threads\": {} }},",
        c10k.rtt_iters, c10k.baseline_median_us, c10k.baseline_p99_us, c10k.os_threads_baseline
    );
    let _ = writeln!(
        out,
        "    \"loaded\": {{ \"connections\": {C10K_CONNECTIONS}, \"iters\": {}, \
         \"median_us\": {:.2}, \"p99_us\": {:.2}, \"os_threads\": {} }},",
        c10k.rtt_iters, c10k.loaded_median_us, c10k.loaded_p99_us, c10k.os_threads_loaded
    );
    let r = &c10k.reactor;
    let _ = writeln!(
        out,
        "    \"reactor\": {{ \"workers\": {}, \"endpoints\": {}, \"polls\": {}, \
         \"wakeups\": {}, \"task_runs\": {}, \"timer_fires\": {}, \"fd_events\": {}, \
         \"stalled_tasks\": {}, \"blocking_spawned\": {}, \"blocking_active\": {} }}",
        r.workers,
        r.endpoints,
        r.polls,
        r.wakeups,
        r.task_runs,
        r.timer_fires,
        r.fd_events,
        r.stalled_tasks,
        r.blocking_spawned,
        r.blocking_active
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"membership\": {{");
    let _ = writeln!(out, "    \"np\": {},", membership.np);
    let _ = writeln!(out, "    \"heartbeat_ms\": {:.0},", membership.heartbeat_ms);
    let _ = writeln!(
        out,
        "    \"suspect_ms\": {:.0},",
        membership_cfg().suspect_after.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "    \"dead_ms\": {:.0},",
        membership_cfg().dead_after.as_secs_f64() * 1e3
    );
    let _ = writeln!(out, "    \"detection_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"median silence -> death-view latency at the slowest survivor, \
         in heartbeat intervals\","
    );
    let _ = writeln!(
        out,
        "      \"threshold\": {MEMBERSHIP_GATE_MAX_DETECT_INTERVALS:.1},"
    );
    let _ = writeln!(out, "      \"value\": {membership_detect_value:.2},");
    let _ = writeln!(out, "      \"pass\": {membership_detect_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"propagation_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"median rejoin -> join-view latency at the slowest survivor, ms\","
    );
    let _ = writeln!(
        out,
        "      \"threshold\": {MEMBERSHIP_GATE_MAX_PROP_MS:.1},"
    );
    let _ = writeln!(out, "      \"value\": {membership_prop_value:.2},");
    let _ = writeln!(out, "      \"pass\": {membership_prop_pass}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"ordering_gate\": {{");
    let _ = writeln!(
        out,
        "      \"metric\": \"every survivor observed strictly increasing view epochs\","
    );
    let _ = writeln!(out, "      \"pass\": {}", membership.views_in_order);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"cases\": [");
    let _ = writeln!(out, "      {{");
    let _ = writeln!(
        out,
        "        \"np\": {}, \"cycles\": {},",
        membership.np, membership.cycles
    );
    let _ = writeln!(
        out,
        "        \"detection\": {{ \"median_ms\": {:.2}, \"max_ms\": {:.2} }},",
        percentile(&membership.detect_ms, 0.5),
        membership.detect_ms.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(
        out,
        "        \"propagation\": {{ \"median_ms\": {:.2}, \"max_ms\": {:.2} }}",
        percentile(&membership.prop_ms, 0.5),
        membership.prop_ms.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(out, "      }}");
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"interface\": \"{}\",",
            json_escape_free(r.iface)
        );
        let _ = writeln!(
            out,
            "      \"package\": \"{}\",",
            json_escape_free(r.package)
        );
        let _ = writeln!(
            out,
            "      \"latency\": {{ \"iters\": {}, \"median_us\": {:.2}, \"p99_us\": {:.2} }},",
            r.lat_iters, r.lat_median_us, r.lat_p99_us
        );
        let _ = writeln!(out, "      \"bulk\": {{");
        let _ = writeln!(
            out,
            "        \"messages\": {}, \"received\": {}, \"seconds\": {:.4}, \"throughput_mib_s\": {:.2},",
            r.bulk_msgs, r.bulk_received, r.bulk_secs, r.bulk_mib_s
        );
        let _ = writeln!(
            out,
            "        \"pool\": {{ \"checkouts\": {}, \"hits\": {}, \"misses\": {}, \"returns\": {}, \"discards\": {} }},",
            r.pool.checkouts, r.pool.hits, r.pool.misses, r.pool.returns, r.pool.discards
        );
        let _ = writeln!(
            out,
            "        \"allocs_per_msg_seed_equiv\": {:.3}, \"allocs_per_msg_pooled\": {:.3}, \"alloc_improvement\": {:.2}",
            r.allocs_per_msg_seed_equiv, r.allocs_per_msg_pooled, r.alloc_improvement
        );
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_dataplane.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            // Internal: this process is a spawned rank of the
            // cross-process section.
            "--cluster-child" => run_cluster_child(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_gate [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut results = Vec::new();
    for package in [Package::Kernel, Package::User] {
        for iface in Iface::ALL {
            let cfg = case_cfg(iface, package, smoke);
            eprintln!(
                "perf_gate: {} over {} ({} rtt iters, {} bulk msgs)...",
                package.name(),
                iface.name(),
                cfg.lat_iters,
                cfg.bulk_msgs
            );
            let result = match package {
                Package::Kernel => run_case(
                    iface,
                    package,
                    Arc::new(KernelPackage::new()) as Arc<dyn ThreadPackage>,
                    cfg,
                ),
                Package::User => UserRuntime::new(UserConfig {
                    mech: SwitchMech::Native,
                    ..UserConfig::default()
                })
                .run(move |pkg| {
                    run_case(iface, package, Arc::new(pkg) as Arc<dyn ThreadPackage>, cfg)
                }),
            };
            eprintln!(
                "  rtt p50 {:.1} us / p99 {:.1} us; bulk {:.1} MiB/s; \
                 allocs/msg {:.2} -> {:.2} ({:.0}x)",
                result.lat_median_us,
                result.lat_p99_us,
                result.bulk_mib_s,
                result.allocs_per_msg_seed_equiv,
                result.allocs_per_msg_pooled,
                result.alloc_improvement,
            );
            results.push(result);
        }
    }

    // Collectives: allreduce + broadcast latency against group size, both
    // packages, binomial tree vs repetitive flat fan-out.
    let mut coll_results = Vec::new();
    for package in [Package::Kernel, Package::User] {
        for group_size in COLL_GROUP_SIZES {
            eprintln!(
                "perf_gate: collectives, {} package, {group_size} members...",
                package.name()
            );
            let result = match package {
                Package::Kernel => run_coll_case(
                    group_size,
                    package,
                    Arc::new(KernelPackage::new()) as Arc<dyn ThreadPackage>,
                    smoke,
                ),
                Package::User => UserRuntime::new(UserConfig {
                    mech: SwitchMech::Native,
                    ..UserConfig::default()
                })
                .run(move |pkg| {
                    run_coll_case(
                        group_size,
                        package,
                        Arc::new(pkg) as Arc<dyn ThreadPackage>,
                        smoke,
                    )
                }),
            };
            eprintln!(
                "  allreduce p50 {:.1} us; bcast done {:.1} us binomial vs {:.1} us flat; \
                 origin egress {} vs {} frames ({:.2}x)",
                result.allreduce_median_us,
                result.bcast_done_binomial_us,
                result.bcast_done_flat_us,
                result.root_frames_binomial,
                result.root_frames_flat,
                result.egress_ratio,
            );
            coll_results.push(result);
        }
    }

    // Requests section: isend/irecv vs the blocking wrappers, and the
    // zero-copy MsgView receive path vs recv()'s detaching Vec.
    let mut req_results = Vec::new();
    for package in [Package::Kernel, Package::User] {
        eprintln!("perf_gate: requests, {} package...", package.name());
        let result = match package {
            Package::Kernel => run_requests_case(
                package,
                Arc::new(KernelPackage::new()) as Arc<dyn ThreadPackage>,
                smoke,
            ),
            Package::User => UserRuntime::new(UserConfig {
                mech: SwitchMech::Native,
                ..UserConfig::default()
            })
            .run(move |pkg| {
                run_requests_case(package, Arc::new(pkg) as Arc<dyn ThreadPackage>, smoke)
            }),
        };
        eprintln!(
            "  rtt p50 {:.1} us blocking vs {:.1} us requests; allocs/msg {:.2} recv vs {:.2} MsgView ({:.0}x)",
            result.blocking_rtt_median_us,
            result.request_rtt_median_us,
            result.allocs_per_msg_recv,
            result.allocs_per_msg_msgview,
            result.alloc_ratio,
        );
        req_results.push(result);
    }
    let req_gate_value = req_results
        .iter()
        .map(|r| r.alloc_ratio)
        .fold(f64::INFINITY, f64::min);
    let req_gate_pass = req_gate_value >= REQ_GATE_MIN_RATIO;

    // mt_msgrate: aggregate message rate as application threads multiply,
    // each thread on its own channel (per-thread delivery shard).
    let mut msgrate_results = Vec::new();
    for package in [Package::Kernel, Package::User] {
        for iface in MSGRATE_IFACES {
            let msgs = msgrate_msgs(iface, smoke);
            for threads in msgrate::THREAD_COUNTS {
                eprintln!(
                    "perf_gate: mt_msgrate, {} over {}, {threads} threads x {msgs} msgs...",
                    package.name(),
                    iface.name(),
                );
                let result = match package {
                    Package::Kernel => run_msgrate_case(
                        iface,
                        package,
                        Arc::new(KernelPackage::new()) as Arc<dyn ThreadPackage>,
                        threads,
                        msgs,
                    ),
                    Package::User => UserRuntime::new(UserConfig {
                        mech: SwitchMech::Native,
                        ..UserConfig::default()
                    })
                    .run(move |pkg| {
                        run_msgrate_case(
                            iface,
                            package,
                            Arc::new(pkg) as Arc<dyn ThreadPackage>,
                            threads,
                            msgs,
                        )
                    }),
                };
                eprintln!("  aggregate {:.3} Mmsgs/s", result.aggregate_mmsgs_s);
                msgrate_results.push(result);
            }
        }
    }
    // The scaling gate reads the kernel-package HPI sweep: the user
    // package is M:1 by construction (green threads share one core), so
    // only kernel threads can exhibit CPU parallelism. The threshold is
    // parallelism-aware — see msgrate::scaling_threshold.
    let msgrate_cpus = msgrate::host_cpus();
    let msgrate_threshold = msgrate::scaling_threshold(msgrate_cpus);
    let msgrate_agg = |threads: usize| {
        msgrate_results
            .iter()
            .find(|r| r.iface == "HPI" && r.package == "kernel" && r.threads == threads)
            .map(|r| r.aggregate_mmsgs_s)
            .unwrap_or(0.0)
    };
    let msgrate_gate_value = msgrate_agg(4) / msgrate_agg(1).max(f64::MIN_POSITIVE);
    let msgrate_gate_pass = msgrate_gate_value >= msgrate_threshold;

    // Telemetry section: the flight recorder must be production-cheap —
    // its enabled-vs-kill-switch msgrate delta is the instrumentation
    // cost the gate bounds.
    let mut telemetry_results = Vec::new();
    for package in [Package::Kernel, Package::User] {
        eprintln!(
            "perf_gate: telemetry overhead, {} package over HPI...",
            package.name()
        );
        let result = match package {
            Package::Kernel => run_telemetry_case(
                package,
                Arc::new(KernelPackage::new()) as Arc<dyn ThreadPackage>,
                smoke,
            ),
            Package::User => UserRuntime::new(UserConfig {
                mech: SwitchMech::Native,
                ..UserConfig::default()
            })
            .run(move |pkg| {
                run_telemetry_case(package, Arc::new(pkg) as Arc<dyn ThreadPackage>, smoke)
            }),
        };
        eprintln!(
            "  {:.3} Mmsgs/s recording vs {:.3} Mmsgs/s kill-switch ({:+.1}% overhead)",
            result.enabled_mmsgs_s, result.disabled_mmsgs_s, result.overhead_pct,
        );
        telemetry_results.push(result);
    }
    let telemetry_gate_value = telemetry_results
        .iter()
        .map(|r| r.overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let telemetry_gate_pass = telemetry_gate_value <= TELEMETRY_GATE_MAX_OVERHEAD_PCT;

    // Cross-process cluster section: this binary re-executes itself as
    // child ranks; every number here crossed a real process boundary over
    // real sockets.
    let mut cluster_results = Vec::new();
    for np in CLUSTER_WORLDS {
        eprintln!("perf_gate: cross-process cluster, {np} ranks over SCI...");
        let result = run_cluster_case(np, smoke);
        eprintln!(
            "  rtt p50 {:.1} us / p99 {:.1} us; allreduce p50 {:.1} us; {}/{} children ok",
            result.rtt_median_us,
            result.rtt_p99_us,
            result.allreduce_median_us,
            result.children_ok,
            np - 1,
        );
        cluster_results.push(result);
    }
    let cluster_gate_pass = cluster_results.iter().all(|r| {
        r.children_ok == (r.np - 1) as usize && r.rtt_median_us > 0.0 && r.allreduce_median_us > 0.0
    });

    // SimWorld: the deterministic thousand-rank engine must stay fast
    // (events/sec) and bit-reproducible.
    eprintln!("perf_gate: sim, {SIM_RANKS}-rank broadcast + barrier under virtual time...");
    let sim = run_sim_case();
    eprintln!(
        "  {} events in {:.3}s wall ({:.0} events/s), virtual {:.3} ms, deterministic: {}",
        sim.events_processed, sim.wall_secs, sim.events_per_sec, sim.virtual_ms, sim.deterministic,
    );

    // c10k: 1,000+ connections multiplexed onto the shared reactor must
    // neither inflate the OS thread count nor the tail latency.
    eprintln!("perf_gate: c10k, {C10K_CONNECTIONS} connections over HPI on one reactor...");
    let c10k = run_c10k_case(smoke);
    eprintln!(
        "  rtt p99 {:.1} us baseline ({} conns) -> {:.1} us loaded ({} conns, {:.2}x); \
         {} OS threads, {} reactor workers",
        c10k.baseline_p99_us,
        C10K_BASELINE,
        c10k.loaded_p99_us,
        C10K_CONNECTIONS,
        c10k.p99_ratio,
        c10k.os_threads_loaded,
        c10k.reactor.workers,
    );

    // Membership: the control plane's failure detector and view push must
    // stay fast while the section churns a real ncsd world over loopback.
    eprintln!(
        "perf_gate: membership, {MEMBERSHIP_NP} ranks, {} kill/rejoin cycles over loopback...",
        membership_cycles(smoke)
    );
    let membership = run_membership_case(smoke);
    let membership_detect_value = percentile(&membership.detect_ms, 0.5) / membership.heartbeat_ms;
    let membership_detect_pass = membership_detect_value <= MEMBERSHIP_GATE_MAX_DETECT_INTERVALS;
    let membership_prop_value = percentile(&membership.prop_ms, 0.5);
    let membership_prop_pass = membership_prop_value <= MEMBERSHIP_GATE_MAX_PROP_MS;
    eprintln!(
        "  detection p50 {:.1} ms ({:.2} heartbeat intervals), view propagation p50 {:.1} ms, \
         epochs in order: {}",
        percentile(&membership.detect_ms, 0.5),
        membership_detect_value,
        membership_prop_value,
        membership.views_in_order,
    );

    // The gate: the pooled+batched HPI bulk path must allocate at least
    // GATE_MIN_IMPROVEMENT times less than the seed path did.
    let gate_value = results
        .iter()
        .filter(|r| r.iface == "HPI")
        .map(|r| r.alloc_improvement)
        .fold(f64::INFINITY, f64::min);
    let gate_pass = gate_value >= GATE_MIN_IMPROVEMENT;

    // The collectives gate: the binomial tree must beat the repetitive
    // flat fan-out on origin egress for every measured group of
    // >= COLL_GATE_MIN_GROUP.
    let coll_gate_value = coll_results
        .iter()
        .filter(|r| r.group_size >= COLL_GATE_MIN_GROUP)
        .map(|r| r.egress_ratio)
        .fold(f64::INFINITY, f64::min);
    let coll_gate_pass = coll_gate_value >= COLL_GATE_MIN_EGRESS_RATIO;

    let mut json = String::new();
    emit_json(
        &mut json,
        &results,
        &coll_results,
        &req_results,
        &msgrate_results,
        &telemetry_results,
        &cluster_results,
        &sim,
        &c10k,
        smoke,
        gate_value,
        gate_pass,
        coll_gate_value,
        coll_gate_pass,
        req_gate_value,
        req_gate_pass,
        msgrate_cpus,
        msgrate_threshold,
        msgrate_gate_value,
        msgrate_gate_pass,
        telemetry_gate_value,
        telemetry_gate_pass,
        cluster_gate_pass,
        &membership,
        membership_detect_value,
        membership_detect_pass,
        membership_prop_value,
        membership_prop_pass,
    );
    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write output file");
    eprintln!("perf_gate: wrote {out_path}");

    // Every bulk phase must actually have delivered its traffic.
    let lost: Vec<&CaseResult> = results
        .iter()
        .filter(|r| r.bulk_received < r.bulk_msgs)
        .collect();
    if !lost.is_empty() {
        for r in &lost {
            eprintln!(
                "perf_gate: FAIL — {}/{} delivered only {}/{} bulk messages",
                r.iface, r.package, r.bulk_received, r.bulk_msgs
            );
        }
        std::process::exit(1);
    }
    if !gate_pass {
        eprintln!(
            "perf_gate: FAIL — HPI bulk allocation improvement {gate_value:.2}x \
             is below the {GATE_MIN_IMPROVEMENT:.1}x gate"
        );
        std::process::exit(1);
    }
    if !coll_gate_pass {
        eprintln!(
            "perf_gate: FAIL — binomial-tree broadcast origin egress is only \
             {coll_gate_value:.2}x better than the flat fan-out for some group of \
             >= {COLL_GATE_MIN_GROUP} (must be >= {COLL_GATE_MIN_EGRESS_RATIO:.1}x)"
        );
        std::process::exit(1);
    }
    if !req_gate_pass {
        eprintln!(
            "perf_gate: FAIL — the zero-copy MsgView receive path allocates only \
             {req_gate_value:.2}x fewer buffers per message than recv() \
             (must be >= {REQ_GATE_MIN_RATIO:.1}x)"
        );
        std::process::exit(1);
    }
    if !msgrate_gate_pass {
        eprintln!(
            "perf_gate: FAIL — 4-thread aggregate message rate on HPI (kernel package) is \
             only {msgrate_gate_value:.2}x the 1-thread figure (must be >= \
             {msgrate_threshold:.1}x on this {msgrate_cpus}-CPU host)"
        );
        std::process::exit(1);
    }
    if !telemetry_gate_pass {
        eprintln!(
            "perf_gate: FAIL — the flight recorder costs {telemetry_gate_value:.2}% of the \
             HPI message rate over the kill-switch baseline (must be <= \
             {TELEMETRY_GATE_MAX_OVERHEAD_PCT:.1}%)"
        );
        std::process::exit(1);
    }
    if !cluster_gate_pass {
        eprintln!(
            "perf_gate: FAIL — a cross-process cluster case lost a child rank or \
             measured nothing (see the cluster section of the JSON)"
        );
        std::process::exit(1);
    }
    if sim.wall_secs > SIM_GATE_MAX_WALL_SECS {
        eprintln!(
            "perf_gate: FAIL — the {SIM_RANKS}-rank sim scenario took {:.1}s of wall time \
             (must be <= {SIM_GATE_MAX_WALL_SECS:.1}s)",
            sim.wall_secs
        );
        std::process::exit(1);
    }
    if !sim.deterministic {
        eprintln!(
            "perf_gate: FAIL — the sim engine is not deterministic (same seed {SIM_SEED} \
             produced a different trace or telemetry, or an op failed)"
        );
        std::process::exit(1);
    }
    if !c10k.thread_gate_pass {
        eprintln!(
            "perf_gate: FAIL — {} OS threads with {C10K_CONNECTIONS} connections open \
             (must be <= {C10K_MAX_THREADS}; the reactor must not scale threads with \
             connections)",
            c10k.os_threads_loaded
        );
        std::process::exit(1);
    }
    if !c10k.latency_gate_pass {
        eprintln!(
            "perf_gate: FAIL — p99 RTT across {C10K_CONNECTIONS} connections is \
             {:.2}x the {C10K_BASELINE}-connection p99 (must be <= {C10K_MAX_P99_RATIO:.1}x)",
            c10k.p99_ratio
        );
        std::process::exit(1);
    }
    if !membership_detect_pass {
        eprintln!(
            "perf_gate: FAIL — median failure detection took {membership_detect_value:.2} \
             heartbeat intervals (must be <= {MEMBERSHIP_GATE_MAX_DETECT_INTERVALS:.1}); the \
             detector sweep or the view push is stalling"
        );
        std::process::exit(1);
    }
    if !membership_prop_pass {
        eprintln!(
            "perf_gate: FAIL — median view propagation took {membership_prop_value:.2} ms \
             (must be <= {MEMBERSHIP_GATE_MAX_PROP_MS:.1} ms); views are supposed to be \
             pushed on the subscribers' channels, not polled"
        );
        std::process::exit(1);
    }
    if !membership.views_in_order {
        eprintln!(
            "perf_gate: FAIL — a survivor observed view epochs out of order or repeated \
             (every sink must see strictly increasing view ids)"
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf_gate: PASS — HPI bulk allocation improvement {gate_value:.2}x, \
         binomial broadcast origin egress {coll_gate_value:.2}x flat for groups \
         >= {COLL_GATE_MIN_GROUP}, zero-copy receives {req_gate_value:.2}x fewer \
         allocs/msg than recv(), 4-thread message rate {msgrate_gate_value:.2}x the \
         1-thread figure (>= {msgrate_threshold:.1}x on {msgrate_cpus} CPUs), \
         flight-recorder overhead {telemetry_gate_value:.2}% (<= \
         {TELEMETRY_GATE_MAX_OVERHEAD_PCT:.1}%), cross-process cluster cases complete, \
         {C10K_CONNECTIONS} connections on {} reactor threads with p99 {:.2}x baseline, \
         {SIM_RANKS}-rank sim at {:.0} events/s deterministic, membership detection \
         {membership_detect_value:.2} heartbeat intervals with view propagation \
         {membership_prop_value:.1} ms",
        c10k.reactor.workers, c10k.p99_ratio, sim.events_per_sec
    );
}
