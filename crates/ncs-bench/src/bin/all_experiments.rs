//! Runs every paper-reproduction experiment in sequence (Table I,
//! Figures 10-13). Equivalent to running each dedicated binary.

use std::process::Command;

fn main() {
    let bins = [
        "table1_send_breakdown",
        "fig10_thread_packages",
        "fig11_overhead_ratio",
        "fig12_same_platform",
        "fig13_heterogeneous",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory");
    let mut failures = 0;
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} FAILED with {status}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nall experiments completed");
}
