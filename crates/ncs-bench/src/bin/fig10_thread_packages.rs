//! Figure 10 (test code: Figure 9) — user-level vs kernel-level thread
//! packages.
//!
//! The paper's §4.1 experiment: per iteration, `NCS_send(msgsize)` hands
//! the message to the Send Thread, then the application computes for a
//! fixed load; the kernel socket buffer is 32 KB. Two regimes emerge:
//!
//! * **small messages** — nothing blocks; the difference is the thread
//!   package's send-path cost (context switch + synchronisation), where
//!   the user-level package wins;
//! * **messages larger than the socket buffer** — the `write` blocks until
//!   the buffer drains. Under the user-level package (QuickThreads
//!   analogue) the blocking system call stalls the whole process, so the
//!   blocked time adds to the iteration; under the kernel-level package
//!   (Pthread analogue) only the Send Thread blocks and the computation
//!   overlaps it.
//!
//! The paper's crossover fell at 4 KB (SunOS socket internals started
//! blocking well below SO_SNDBUF); in this reproduction the crossover sits
//! exactly where messages exceed the kernel buffer, which is the mechanism
//! the paper identifies (§4.1: "the kernel finally runs out of the socket
//! buffer and blocks the Send Thread").

use std::sync::Arc;
use std::time::{Duration, Instant};

use ncs_bench::{compute_load, env_f64, env_usize, human_size, FIG10_SIZES};
use ncs_core::link::PipeLinkPair;
use ncs_core::{ConnectionConfig, NcsConnection, NcsNode};
use ncs_threads::{SwitchMech, ThreadPackage, UserConfig, UserRuntime};
use ncs_transport::pipe::PipeConfig;

struct Bench {
    conn: NcsConnection,
    sender: NcsNode,
    receiver: NcsNode,
}

fn setup(pkg: Arc<dyn ThreadPackage>, wire: PipeConfig) -> Bench {
    let (link_tx, link_rx) = PipeLinkPair::create(wire, None, None);
    let sender = NcsNode::builder("fig10-tx").thread_package(pkg).build();
    let receiver = NcsNode::builder("fig10-rx").build();
    sender.attach_peer("fig10-rx", link_tx);
    receiver.attach_peer("fig10-tx", link_rx);
    let config = ConnectionConfig {
        sdu_size: ConnectionConfig::MAX_SDU,
        ..ConnectionConfig::unreliable()
    };
    let conn = sender.connect("fig10-rx", config).expect("fig10 connect");
    Bench {
        conn,
        sender,
        receiver,
    }
}

/// One Figure-9 pass: `iters` x (`NCS_send(size)`; `Computation(load)`);
/// returns the mean iteration time.
fn run_pass(
    pkg: Arc<dyn ThreadPackage>,
    size: usize,
    iters: usize,
    load: Duration,
    wire: PipeConfig,
) -> Duration {
    let bench = setup(pkg, wire);
    let payload = vec![0x5Au8; size];
    bench.conn.send_handoff(&payload).expect("warmup");
    // Let the warm-up drain so every pass starts with an empty buffer.
    std::thread::sleep(Duration::from_millis(30));
    let start = Instant::now();
    for _ in 0..iters {
        bench.conn.send_handoff(&payload).expect("send");
        compute_load(load);
    }
    let avg = start.elapsed() / iters as u32;
    bench.sender.shutdown();
    bench.receiver.shutdown();
    avg
}

fn user_runtime() -> UserRuntime {
    UserRuntime::new(UserConfig {
        mech: SwitchMech::Native,
        ..UserConfig::default()
    })
}

fn main() {
    let iters = env_usize("NCS_ITERS", 10);
    let load = Duration::from_secs_f64(env_f64("NCS_FIG10_LOAD_MS", 10.0) / 1e3);
    // Drain sized so the largest message drains in exactly one load
    // period: messages above the buffer block the writer, but the pipeline
    // never saturates — the regime where overlap is measurable.
    let drain = (65536.0 / load.as_secs_f64()) as u64;
    let wire = PipeConfig {
        buffer_bytes: 32 * 1024, // the paper's socket buffer
        drain_bytes_per_sec: Some(drain),
        latency: Duration::ZERO,
        time_scale: 1.0,
    };

    println!(
        "Figure 10 reproduction: NCS_send + {} ms computation per iteration, \
         32 KB socket buffer draining at {} KB/s, {} iterations\n",
        load.as_millis(),
        drain / 1024,
        iters
    );

    // Panel A — the Figure 9 loop.
    println!("panel A: mean iteration time (send + computation)");
    println!(
        "{:>10}{:>18}{:>18}{:>10}",
        "size", "user-level (ms)", "kernel-level (ms)", "ratio"
    );
    for &size in FIG10_SIZES {
        let (w, l, i) = (wire.clone(), load, iters);
        let user_avg = user_runtime().run(move |pkg| run_pass(Arc::new(pkg), size, i, l, w));
        let kernel_avg = run_pass(
            Arc::new(ncs_threads::KernelPackage::new()),
            size,
            iters,
            load,
            wire.clone(),
        );
        println!(
            "{:>10}{:>18.2}{:>18.2}{:>10.2}",
            human_size(size),
            user_avg.as_secs_f64() * 1e3,
            kernel_avg.as_secs_f64() * 1e3,
            user_avg.as_secs_f64() / kernel_avg.as_secs_f64(),
        );
    }
    println!(
        "\n  -> above the 32 KB buffer the user-level package pays the blocked\n\
         \u{20}    write inside the iteration; the kernel-level package overlaps it"
    );

    // Panel B — the send path alone (no computation), where the
    // user-level package's cheap switches win (the paper's < 4 KB regime).
    println!("\npanel B: bare NCS_send hand-off cost (no load, drained wire)");
    println!(
        "{:>10}{:>18}{:>18}{:>10}",
        "size", "user-level (us)", "kernel-level (us)", "ratio"
    );
    let fast_wire = PipeConfig {
        buffer_bytes: 1 << 20,
        drain_bytes_per_sec: None,
        latency: Duration::ZERO,
        time_scale: 1.0,
    };
    let bare_iters = env_usize("NCS_ITERS", 10) * 100;
    for &size in &FIG10_SIZES[..7] {
        let (w, i) = (fast_wire.clone(), bare_iters);
        let user_avg =
            user_runtime().run(move |pkg| run_pass(Arc::new(pkg), size, i, Duration::ZERO, w));
        let kernel_avg = run_pass(
            Arc::new(ncs_threads::KernelPackage::new()),
            size,
            bare_iters,
            Duration::ZERO,
            fast_wire.clone(),
        );
        println!(
            "{:>10}{:>18.2}{:>18.2}{:>10.2}",
            human_size(size),
            user_avg.as_secs_f64() * 1e6,
            kernel_avg.as_secs_f64() * 1e6,
            user_avg.as_secs_f64() / kernel_avg.as_secs_f64(),
        );
    }
    println!(
        "\n  -> with nothing blocking, the user-level package's synchronisation\n\
         \u{20}    is the cheaper send path (the paper's small-message advantage)"
    );
}
