//! Figure 13 — point-to-point round-trip performance over ATM between
//! heterogeneous platforms (SUN-4 <-> RS6000).
//!
//! Expected shape (paper §4.3): NCS outperforms all others (it converts
//! nothing); PVM next (tuned XDR); p4 worse (nominal XDR both sides);
//! MPI collapses for large messages (conservative packing + rendezvous).

use std::sync::Arc;
use std::time::Duration;

use ncs_bench::{build_pair, echo_roundtrip, env_f64, env_usize, print_table, System, FIG12_SIZES};
use netmodel::PlatformProfile;

fn main() {
    let time_scale = env_f64("NCS_TIME_SCALE", 0.25);
    let iters = env_usize("NCS_ITERS", 5);
    println!(
        "Figure 13 reproduction: echo round trip, SUN-4 <-> RS6000 over ATM \
         (model time; time_scale={time_scale}, iters={iters})"
    );
    let sun = Arc::new(PlatformProfile::sun4());
    let rs = Arc::new(PlatformProfile::rs6000());
    let mut columns: Vec<(String, Vec<Duration>)> = Vec::new();
    for system in System::ALL {
        let mut series = Vec::new();
        for &size in FIG12_SIZES {
            let (mut client, server) =
                build_pair(system, Arc::clone(&sun), Arc::clone(&rs), time_scale);
            series.push(echo_roundtrip(
                client.as_mut(),
                server,
                size,
                iters,
                time_scale,
            ));
        }
        columns.push((system.name().to_owned(), series));
    }
    print_table("Figure 13: SUN-4 <-> RS6000", FIG12_SIZES, &columns);
    println!("\nshape checks at 64K: NCS < PVM < p4 < MPI (MPI worst by a wide margin)");
}
