//! Figure 11 — thread overhead by ratio to the native socket.
//!
//! For each message size, the full `NCS_send` through the Send Thread is
//! measured against a native send on the same interface; the ratio starts
//! well above 1 for small messages (the constant session overhead
//! dominates) and decays towards 1 as the per-byte transmit cost takes
//! over — for both thread packages.

use std::sync::Arc;
use std::time::Instant;

use ncs_bench::{env_f64, env_usize, human_size, FIG10_SIZES};
use ncs_core::link::PipeLinkPair;
use ncs_core::{ConnectionConfig, NcsNode};
use ncs_threads::{SwitchMech, ThreadPackage, UserConfig, UserRuntime};
use ncs_transport::pipe::{self, EndpointModel, PipeConfig};
use ncs_transport::Connection;
use netmodel::{Pacer, PlatformProfile};

fn wire(time_scale: f64) -> PipeConfig {
    PipeConfig {
        // Uncontended wire: the ratio isolates the send path itself, so
        // neither side may stall on buffer admission.
        buffer_bytes: 1 << 20,
        drain_bytes_per_sec: None,
        latency: std::time::Duration::ZERO,
        time_scale,
    }
}

fn model(time_scale: f64) -> EndpointModel {
    EndpointModel {
        profile: Arc::new(PlatformProfile::sun4()),
        pacer: Arc::new(Pacer::new(time_scale)),
    }
}

/// Mean cost of a native (interface-level) send of `size` bytes.
fn native_send(size: usize, iters: usize, time_scale: f64) -> f64 {
    let pacer = Arc::new(Pacer::new(time_scale));
    let m = EndpointModel {
        profile: Arc::new(PlatformProfile::sun4()),
        pacer: Arc::clone(&pacer),
    };
    let (a, _b) = pipe::pair_with_models(wire(time_scale), Some(m), None);
    let payload = vec![1u8; size];
    a.send(&payload).unwrap(); // warm-up
    pacer.settle();
    let start = Instant::now();
    for _ in 0..iters {
        a.send(&payload).unwrap();
    }
    pacer.settle(); // pay any remaining modelled debt inside the window
    start.elapsed().as_secs_f64() / iters as f64
}

/// Mean cost of a full `NCS_send` (through the Send Thread) of `size`
/// bytes on the given package.
fn ncs_send(pkg: Arc<dyn ThreadPackage>, size: usize, iters: usize, time_scale: f64) -> f64 {
    let (la, lb) = PipeLinkPair::create(wire(time_scale), Some(model(time_scale)), None);
    let a = NcsNode::builder("f11-a").thread_package(pkg).build();
    let b = NcsNode::builder("f11-b").build();
    a.attach_peer("f11-b", la);
    b.attach_peer("f11-a", lb);
    // Single SDU per message, matching the native single-frame send (the
    // SCI bypass path writes the whole user buffer at once).
    let config = ConnectionConfig {
        sdu_size: ConnectionConfig::MAX_SDU,
        ..ConnectionConfig::unreliable()
    };
    let conn = a.connect("f11-b", config).unwrap();
    let payload = vec![1u8; size];
    let mut total = 0.0;
    conn.send_profiled(&payload).unwrap(); // warm-up
    for _ in 0..iters {
        let breakdown = conn.send_profiled(&payload).unwrap();
        total += breakdown.total().as_secs_f64();
    }
    a.shutdown();
    b.shutdown();
    total / iters as f64
}

fn main() {
    let iters = env_usize("NCS_ITERS", 30);
    let time_scale = env_f64("NCS_TIME_SCALE", 0.05);
    println!(
        "Figure 11 reproduction: NCS send cost ratio to native send \
         (modelled SUN-4 interface, time_scale={time_scale}, iters={iters})"
    );
    println!("{:>10}{:>16}{:>16}", "size", "user-level", "kernel-level");
    for &size in FIG10_SIZES {
        let native = native_send(size, iters, time_scale);
        let user = UserRuntime::new(UserConfig {
            mech: SwitchMech::Native,
            ..UserConfig::default()
        })
        .run(move |pkg| ncs_send(Arc::new(pkg), size, iters, time_scale));
        let kernel = ncs_send(
            Arc::new(ncs_threads::KernelPackage::new()),
            size,
            iters,
            time_scale,
        );
        println!(
            "{:>10}{:>16.2}{:>16.2}",
            human_size(size),
            user / native,
            kernel / native,
        );
    }
    println!(
        "\nshape check: both ratios start above 1 and decay towards 1.0 by \
         64K; the user-level package carries the smaller thread overhead"
    );
}
