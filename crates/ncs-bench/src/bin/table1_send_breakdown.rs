//! Table I — the cost of sending a 1-byte message via the Send Thread,
//! itemised: session overhead (function entry/exit, header attach, queue,
//! two context switches, dequeue, buffer free) vs data-transfer overhead
//! (the transmit itself).
//!
//! Two substrates are reported:
//!
//! * **modelled SCI (SUN-4)** — the transmit costs what a 1998 socket send
//!   cost, so the session/data split is comparable with the paper's
//!   108 µs / 274 µs (28 % / 72 %);
//! * **modern HPI** — the same path on raw hardware, showing how the
//!   session share grows when the transmit becomes nearly free (the very
//!   observation that motivated the paper's §4.2 thread-bypass variant).

use std::sync::Arc;
use std::time::Duration;

use ncs_bench::{env_f64, env_usize};
use ncs_core::link::{HpiLinkPair, PipeLinkPair};
use ncs_core::{ConnectionConfig, NcsNode, SendBreakdown};
use ncs_transport::pipe::{EndpointModel, PipeConfig};
use netmodel::{Pacer, PlatformProfile};

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn collect(conn: &ncs_core::NcsConnection, samples: usize) -> SendBreakdown {
    let mut runs = Vec::with_capacity(samples);
    for _ in 0..samples {
        runs.push(conn.send_profiled(&[0x42]).expect("profiled send"));
    }
    SendBreakdown {
        fn_entry_exit: median(runs.iter().map(|b| b.fn_entry_exit).collect()),
        header_attach: median(runs.iter().map(|b| b.header_attach).collect()),
        queue_request: median(runs.iter().map(|b| b.queue_request).collect()),
        ctx_switch_to_send: median(runs.iter().map(|b| b.ctx_switch_to_send).collect()),
        dequeue_request: median(runs.iter().map(|b| b.dequeue_request).collect()),
        transmit: median(runs.iter().map(|b| b.transmit).collect()),
        free_buffer: median(runs.iter().map(|b| b.free_buffer).collect()),
        ctx_switch_back: median(runs.iter().map(|b| b.ctx_switch_back).collect()),
    }
}

fn main() {
    let samples = env_usize("NCS_ITERS", 300);
    let time_scale = env_f64("NCS_TIME_SCALE", 1.0);
    println!("Table I reproduction: cost of sending a 1-byte message via the Send Thread");
    println!("(median of {samples} sends; paper reference: session 108 us = 28 %, transmit 274 us = 72 %)");

    // Variant A: modelled 1998 SCI on a SUN-4.
    {
        let pacer = Arc::new(Pacer::new(time_scale));
        let model = EndpointModel {
            profile: Arc::new(PlatformProfile::sun4()),
            pacer,
        };
        let (la, lb) = PipeLinkPair::create(
            PipeConfig {
                time_scale,
                ..PipeConfig::default()
            },
            Some(model),
            None,
        );
        let a = NcsNode::builder("t1-a").build();
        let b = NcsNode::builder("t1-b").build();
        a.attach_peer("t1-b", la);
        b.attach_peer("t1-a", lb);
        let conn = a.connect("t1-b", ConnectionConfig::unreliable()).unwrap();
        let breakdown = collect(&conn, samples);
        println!("\n--- modelled SCI, SUN-4/SunOS 5.5 (time_scale={time_scale}) ---");
        println!("{breakdown}");
        a.shutdown();
        b.shutdown();
    }

    // Variant B: modern HPI substrate.
    {
        let (la, lb) = HpiLinkPair::create();
        let a = NcsNode::builder("t1-c").build();
        let b = NcsNode::builder("t1-d").build();
        a.attach_peer("t1-d", la);
        b.attach_peer("t1-c", lb);
        let conn = a.connect("t1-d", ConnectionConfig::unreliable()).unwrap();
        let breakdown = collect(&conn, samples);
        println!("\n--- modern HPI (no platform model) ---");
        println!("{breakdown}");
        a.shutdown();
        b.shutdown();
    }

    println!(
        "\nshape check: session overhead is size-independent and dominates \
         small-message sends; on the 1998 model its share approaches the \
         paper's ~28 %, on modern hardware it dominates outright — the \
         motivation for NCS's direct (thread-bypass) send variant"
    );
}
