//! bench_check — the perf-gate regression guard.
//!
//! Validates a freshly produced `BENCH_dataplane.json` against the
//! committed snapshot: same schema version, no section or case silently
//! missing, and every gate `pass` field true. CI runs this after the
//! smoke perf run instead of merely uploading the artifact.
//!
//! Usage: `bench_check --new PATH --snapshot PATH`
//!
//! Exit code 0 when the fresh artifact is acceptable; 1 with one line per
//! problem otherwise.

use ncs_bench::check::{parse_json, validate};

fn usage() -> ! {
    eprintln!("usage: bench_check --new PATH --snapshot PATH");
    std::process::exit(2);
}

fn load(label: &str, path: &str) -> ncs_bench::check::Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {label} artifact '{path}': {e}");
            std::process::exit(1);
        }
    };
    match parse_json(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_check: {label} artifact '{path}' is not valid JSON: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut new_path = None;
    let mut snapshot_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--new" => new_path = args.next(),
            "--snapshot" => snapshot_path = args.next(),
            _ => usage(),
        }
    }
    let (Some(new_path), Some(snapshot_path)) = (new_path, snapshot_path) else {
        usage()
    };
    let fresh = load("fresh", &new_path);
    let snapshot = load("snapshot", &snapshot_path);
    let problems = validate(&fresh, &snapshot);
    if problems.is_empty() {
        eprintln!("bench_check: OK — '{new_path}' matches the committed snapshot's shape and every gate passes");
        return;
    }
    for p in &problems {
        eprintln!("bench_check: FAIL — {p}");
    }
    std::process::exit(1);
}
