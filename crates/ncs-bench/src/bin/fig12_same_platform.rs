//! Figure 12 — point-to-point round-trip performance over ATM, same
//! platform: SUN-4 <-> SUN-4 (SunOS 5.5) and RS6000 <-> RS6000 (AIX 4.1),
//! for NCS, p4, MPI and PVM.
//!
//! Expected shape (paper §4.3): all systems comparable below 1 KB; NCS
//! best on the SUN-4; p4 best on the RS6000 (NCS close); p4/MPI degrade on
//! the SUN-4 for large messages; PVM worst on the RS6000.

use std::sync::Arc;
use std::time::Duration;

use ncs_bench::{build_pair, echo_roundtrip, env_f64, env_usize, print_table, System, FIG12_SIZES};
use netmodel::PlatformProfile;

fn main() {
    let time_scale = env_f64("NCS_TIME_SCALE", 0.25);
    let iters = env_usize("NCS_ITERS", 5);
    println!(
        "Figure 12 reproduction: echo round trip, same platform over ATM \
         (model time; time_scale={time_scale}, iters={iters})"
    );
    for platform in [PlatformProfile::sun4(), PlatformProfile::rs6000()] {
        let platform = Arc::new(platform);
        let mut columns: Vec<(String, Vec<Duration>)> = Vec::new();
        for system in System::ALL {
            let mut series = Vec::new();
            for &size in FIG12_SIZES {
                let (mut client, server) = build_pair(
                    system,
                    Arc::clone(&platform),
                    Arc::clone(&platform),
                    time_scale,
                );
                series.push(echo_roundtrip(
                    client.as_mut(),
                    server,
                    size,
                    iters,
                    time_scale,
                ));
            }
            columns.push((system.name().to_owned(), series));
        }
        print_table(
            &format!("Figure 12: {} <-> same", platform.name),
            FIG12_SIZES,
            &columns,
        );
    }
    println!(
        "\nshape checks: NCS lowest on SUN-4 at 64K; p4 lowest on RS6000 at 64K; \
         PVM highest on RS6000 at 64K"
    );
}
