//! mt-msgrate — standalone multithreaded message-rate sweep.
//!
//! N application threads share one connection, each pumping 8-byte
//! messages over its own [`Channel`] in windows of 64 nonblocking sends;
//! the peer mirrors each window with nonblocking receives. Prints the
//! aggregate Mmsgs/s for 1/2/4 threads over HPI and SCI under both
//! thread packages. The CI-gated variant of this measurement is the
//! `mt_msgrate` section of `perf_gate`.
//!
//! Usage: `mt_msgrate [--msgs N]` (N = messages per thread, multiple
//! of the 64-message window; default 32768 for HPI, 4096 for SCI).
//!
//! [`Channel`]: ncs_core::Channel

use std::sync::Arc;

use ncs_bench::msgrate::{self, MsgRate, THREAD_COUNTS, WINDOW_SIZE};
use ncs_core::link::{HpiLinkPair, SciLink};
use ncs_core::{ConnectionConfig, NcsNode};
use ncs_threads::{KernelPackage, SwitchMech, ThreadPackage, UserConfig, UserRuntime};
use ncs_transport::sci::SciListener;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Iface {
    Hpi,
    Sci,
}

impl Iface {
    fn name(self) -> &'static str {
        match self {
            Iface::Hpi => "HPI",
            Iface::Sci => "SCI",
        }
    }

    fn default_msgs(self) -> usize {
        match self {
            Iface::Hpi => 64 * 512,
            Iface::Sci => 64 * 64,
        }
    }
}

fn run_point(
    iface: Iface,
    pkg: Arc<dyn ThreadPackage>,
    threads: usize,
    msgs_per_thread: usize,
) -> MsgRate {
    let tx_node = NcsNode::builder("msgrate-tx")
        .thread_package(Arc::clone(&pkg))
        .build();
    let rx_node = NcsNode::builder("msgrate-rx").build();
    match iface {
        Iface::Hpi => {
            let (la, lb) = HpiLinkPair::with_capacity(1024);
            tx_node.attach_peer("msgrate-rx", la);
            rx_node.attach_peer("msgrate-tx", lb);
        }
        Iface::Sci => {
            let ltx = Arc::new(SciListener::bind("127.0.0.1:0").expect("bind tx"));
            let lrx = Arc::new(SciListener::bind("127.0.0.1:0").expect("bind rx"));
            let addr_tx = ltx.local_addr().expect("tx addr");
            let addr_rx = lrx.local_addr().expect("rx addr");
            tx_node.attach_peer("msgrate-rx", SciLink::new(addr_rx, ltx));
            rx_node.attach_peer("msgrate-tx", SciLink::new(addr_tx, lrx));
        }
    }
    // HPI overruns under load, so flow/error control stay on; SCI is a
    // reliable byte stream, so NCS bypasses its control threads.
    let config = match iface {
        Iface::Hpi => ConnectionConfig::reliable(),
        Iface::Sci => ConnectionConfig::unreliable(),
    };
    let conn_tx = tx_node.connect("msgrate-rx", config).expect("connect");
    let conn_rx = rx_node.accept_default().expect("accept");
    // One untimed window per channel charges the pool and wake paths.
    msgrate::measure(&conn_tx, &conn_rx, &pkg, threads, WINDOW_SIZE);
    let result = msgrate::measure(&conn_tx, &conn_rx, &pkg, threads, msgs_per_thread);
    tx_node.shutdown();
    rx_node.shutdown();
    result
}

fn main() {
    let mut msgs_override = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--msgs" => {
                let n: usize = args
                    .next()
                    .expect("--msgs needs a count")
                    .parse()
                    .expect("--msgs needs an integer");
                assert!(
                    n > 0 && n.is_multiple_of(WINDOW_SIZE),
                    "--msgs must be a positive multiple of {WINDOW_SIZE}"
                );
                msgs_override = Some(n);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: mt_msgrate [--msgs N]");
                std::process::exit(2);
            }
        }
    }

    println!(
        "mt-msgrate: {}-byte messages, window {WINDOW_SIZE}, {} CPUs available",
        msgrate::MESSAGE_SIZE,
        msgrate::host_cpus()
    );
    println!(
        "{:<6} {:<8} {:>8} {:>12} {:>16}",
        "iface", "package", "threads", "msgs/thread", "aggregate Mmsg/s"
    );
    for iface in [Iface::Hpi, Iface::Sci] {
        let msgs = msgs_override.unwrap_or_else(|| iface.default_msgs());
        for package in ["kernel", "user"] {
            for threads in THREAD_COUNTS {
                let result = if package == "kernel" {
                    run_point(
                        iface,
                        Arc::new(KernelPackage::new()) as Arc<dyn ThreadPackage>,
                        threads,
                        msgs,
                    )
                } else {
                    UserRuntime::new(UserConfig {
                        mech: SwitchMech::Native,
                        ..UserConfig::default()
                    })
                    .run(move |pkg| {
                        run_point(
                            iface,
                            Arc::new(pkg) as Arc<dyn ThreadPackage>,
                            threads,
                            msgs,
                        )
                    })
                };
                println!(
                    "{:<6} {:<8} {:>8} {:>12} {:>16.3}",
                    iface.name(),
                    package,
                    result.threads,
                    result.msgs_per_thread,
                    result.aggregate_mmsgs_s
                );
            }
        }
    }
}
