//! Ablation studies for the design choices the paper argues for:
//!
//! 1. **SDU size** (§3.2): "a large SDU size generates high throughput,
//!    but results in high overhead by retransmission when the SDUs are
//!    lost. By keeping the size small, efficiency can be maximized but
//!    segmentation overheads are introduced." Measured as transfer time of
//!    a fixed message across a lossy ATM link, per SDU size.
//! 2. **Dynamic vs static credits** (§3.3): "active connections get more
//!    credits" — dynamic grant growth should beat a fixed small window on
//!    a bulk transfer.
//! 3. **Selective repeat vs go-back-N** (§3.2): under loss, selective
//!    retransmission should move fewer packets than window restarts.
//! 4. **PVM's XDR negotiation** (baseline modelling): pre-3.3 ForceXdr vs
//!    the negotiated Default on a same-format pair.

use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::common::EndpointSpec;
use baselines::pvm::{PvmEncoding, PvmEndpoint, PvmRoute};
use ncs_bench::{env_f64, env_usize};
use ncs_core::link::AciLink;
use ncs_core::{ConnectionConfig, ErrorControlAlg, FlowControlAlg, NcsNode};
use ncs_transport::aci::AciFabric;
use netmodel::{Pacer, PlatformProfile};

/// Builds a lossy two-host ATM fabric and a connected NCS pair.
fn atm_pair(
    cell_loss: f64,
    seed: u64,
    speedup: f64,
    config: ConnectionConfig,
) -> (
    Arc<AciFabric>,
    NcsNode,
    NcsNode,
    ncs_core::NcsConnection,
    ncs_core::NcsConnection,
) {
    atm_pair_wan(cell_loss, seed, speedup, config, 0)
}

/// As [`atm_pair`] with `wan_ms` of one-way propagation per link.
fn atm_pair_wan(
    cell_loss: f64,
    seed: u64,
    speedup: f64,
    config: ConnectionConfig,
    wan_ms: u64,
) -> (
    Arc<AciFabric>,
    NcsNode,
    NcsNode,
    ncs_core::NcsConnection,
    ncs_core::NcsConnection,
) {
    use atm_sim::{FaultSpec, LinkSpec, NetworkBuilder, PumpConfig, QosParams};
    let base = if wan_ms > 0 {
        LinkSpec::oc3_wan(wan_ms)
    } else {
        LinkSpec::oc3()
    };
    let net = NetworkBuilder::new()
        .host("a")
        .host("b")
        .switch("sw")
        .link(
            "a",
            "sw",
            base.clone()
                .with_fault(FaultSpec::cell_loss(cell_loss, seed)),
        )
        .link("b", "sw", base)
        .build()
        .expect("topology");
    let fabric = AciFabric::start(net, PumpConfig::speedup(speedup));
    let a = NcsNode::builder("a").build();
    let b = NcsNode::builder("b").build();
    let dev_a = Arc::new(fabric.device("a").unwrap());
    let dev_b = Arc::new(fabric.device("b").unwrap());
    a.attach_peer("b", AciLink::new(dev_a, "b", QosParams::unspecified()));
    b.attach_peer("a", AciLink::new(dev_b, "a", QosParams::unspecified()));
    let tx = a.connect("b", config).expect("connect");
    let rx = b.accept_default().expect("accept");
    (fabric, a, b, tx, rx)
}

fn reliable_with_sdu(sdu: usize) -> ConnectionConfig {
    ConnectionConfig::builder()
        .sdu_size(sdu)
        .flow_control(FlowControlAlg::CreditBased {
            initial_credits: 8,
            dynamic: true,
        })
        .error_control(ErrorControlAlg::SelectiveRepeat {
            timeout: Duration::from_millis(120),
            max_retries: 60,
        })
        .build()
}

fn transfer(
    tx: &ncs_core::NcsConnection,
    rx: &ncs_core::NcsConnection,
    message: &[u8],
    rounds: usize,
) -> Duration {
    let start = Instant::now();
    for _ in 0..rounds {
        tx.send_sync_timeout(message, Duration::from_secs(120))
            .expect("send");
        let got = rx.recv_timeout(Duration::from_secs(120)).expect("recv");
        assert_eq!(got.len(), message.len());
    }
    start.elapsed() / rounds as u32
}

fn ablation_sdu_size(rounds: usize) {
    println!("\n=== ablation 1: SDU size vs loss (§3.2 trade-off) ===");
    println!("64 KB message, 0.05% cell loss, selective repeat");
    println!(
        "{:>8}{:>14}{:>12}{:>14}",
        "SDU", "time/msg", "pkts sent", "retransmit %"
    );
    let message: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    for sdu in [1024usize, 4096, 16384, 49152] {
        let (fabric, a, b, tx, rx) = atm_pair(0.0005, 11, 16.0, reliable_with_sdu(sdu));
        let avg = transfer(&tx, &rx, &message, rounds);
        let s = tx.stats();
        println!(
            "{:>8}{:>14.2?}{:>12}{:>13.1}%",
            ncs_bench::human_size(sdu),
            avg,
            s.packets_sent,
            100.0 * s.retransmissions as f64 / s.packets_sent.max(1) as f64,
        );
        a.shutdown();
        b.shutdown();
        fabric.shutdown();
    }
    println!("-> small SDUs pay segmentation overhead; large SDUs pay bigger retransmissions");
}

fn ablation_credits(rounds: usize) {
    println!("\n=== ablation 2: dynamic vs static credits (§3.3) ===");
    println!("64 KB messages over a 5 ms WAN hop (window size binds throughput)");
    for (label, dynamic) in [("static", false), ("dynamic", true)] {
        let config = ConnectionConfig::builder()
            .sdu_size(4096)
            .flow_control(FlowControlAlg::CreditBased {
                initial_credits: 1,
                dynamic,
            })
            .error_control(ErrorControlAlg::SelectiveRepeat {
                timeout: Duration::from_secs(2),
                max_retries: 10,
            })
            .build();
        let (fabric, a, b, tx, rx) = atm_pair_wan(0.0, 1, 16.0, config, 5);
        let message = vec![0xA5u8; 64 * 1024];
        let avg = transfer(&tx, &rx, &message, rounds.max(8));
        let s = tx.stats();
        println!(
            "{label:>8}: {avg:>10.2?} per transfer, credits received {}",
            s.credits_received
        );
        a.shutdown();
        b.shutdown();
        fabric.shutdown();
    }
    println!("-> dynamic grants widen the window for the active connection");
}

fn ablation_sr_vs_gbn(rounds: usize) {
    println!("\n=== ablation 3: selective repeat vs go-back-N (§3.2) ===");
    println!("64 KB message (4 KB SDUs), 0.1% cell loss");
    let message: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 241) as u8).collect();
    for (label, ec) in [
        (
            "selective",
            ErrorControlAlg::SelectiveRepeat {
                timeout: Duration::from_millis(120),
                max_retries: 60,
            },
        ),
        (
            "go-back-n",
            ErrorControlAlg::GoBackN {
                window: 8,
                timeout: Duration::from_millis(120),
                max_retries: 120,
            },
        ),
    ] {
        let config = ConnectionConfig::builder()
            .sdu_size(4096)
            .flow_control(FlowControlAlg::CreditBased {
                initial_credits: 8,
                dynamic: true,
            })
            .error_control(ec)
            .build();
        let (fabric, a, b, tx, rx) = atm_pair(0.001, 23, 16.0, config);
        let avg = transfer(&tx, &rx, &message, rounds);
        let s = tx.stats();
        println!(
            "{label:>10}: {avg:>10.2?} per message, {} packets for {} useful ({} retransmissions)",
            s.packets_sent,
            16 * rounds,
            s.retransmissions,
        );
        a.shutdown();
        b.shutdown();
        fabric.shutdown();
    }
    println!("-> selective repeat resends only what was lost");
}

fn ablation_pvm_xdr(iters: usize, time_scale: f64) {
    println!("\n=== ablation 4: PVM ForceXdr (pre-3.3) vs negotiated Default ===");
    println!("same-format pair (SUN-4 <-> SUN-4), 32 KB messages");
    let sun = Arc::new(PlatformProfile::sun4());
    for (label, enc) in [
        ("Default", PvmEncoding::Default),
        ("ForceXdr", PvmEncoding::ForceXdr),
    ] {
        let pacer = Arc::new(Pacer::new(time_scale));
        let spec = |p: &Arc<PlatformProfile>| EndpointSpec {
            local: Arc::clone(p),
            remote: Arc::clone(p),
            pacer: Arc::clone(&pacer),
        };
        let (ca, cb) = ncs_transport::pipe::pair(ncs_bench::atm_wire(time_scale));
        let mut client = PvmEndpoint::with_options(Box::new(ca), spec(&sun), enc, PvmRoute::Direct);
        let server = PvmEndpoint::with_options(Box::new(cb), spec(&sun), enc, PvmRoute::Direct);
        let avg =
            ncs_bench::echo_roundtrip(&mut client, Box::new(server), 32 * 1024, iters, time_scale);
        println!(
            "{label:>9}: {:.2} model ms per round trip",
            avg.as_secs_f64() * 1e3
        );
    }
    println!("-> the PVM 3.3 format negotiation is worth ~2x on large same-format messages");
}

fn main() {
    let rounds = env_usize("NCS_ITERS", 3);
    let time_scale = env_f64("NCS_TIME_SCALE", 0.25);
    println!("NCS ablation studies (rounds={rounds})");
    ablation_sdu_size(rounds);
    ablation_credits(rounds);
    ablation_sr_vs_gbn(rounds);
    ablation_pvm_xdr(rounds.max(5), time_scale);
}
