//! Benchmark-artifact validation: the machinery behind the `bench_check`
//! binary.
//!
//! CI's perf-gate job no longer just *uploads* `BENCH_dataplane.json` —
//! it validates the fresh run against the committed snapshot: same schema
//! version, no section or case silently missing, and every gate `pass`
//! field true. The JSON support is a deliberately small recursive-descent
//! parser (the artifact is machine-written by `perf_gate`; this is a
//! checker, not a general JSON library).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`; the artifact's values all fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted map; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, why: &str) -> String {
        format!("{why} at byte {}", self.at)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("non-ASCII \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.at += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(&format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the artifact is ASCII, but
                    // stay correct anyway).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => {
                self.at += 1;
                let mut m = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    m.insert(key, v);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(m));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.at += 1;
                let mut a = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Json::Arr(a));
                }
                loop {
                    a.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(a));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Collects every `"pass"` field anywhere in `v`, with its JSON path.
fn collect_passes(v: &Json, path: &str, out: &mut Vec<(String, Option<bool>)>) {
    match v {
        Json::Obj(m) => {
            for (k, child) in m {
                let child_path = format!("{path}.{k}");
                if k == "pass" {
                    out.push((child_path.clone(), child.as_bool()));
                }
                collect_passes(child, &child_path, out);
            }
        }
        Json::Arr(a) => {
            for (i, child) in a.iter().enumerate() {
                collect_passes(child, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Identity of one entry of a `cases` array, for presence comparison
/// (measurement values are allowed to drift; the *population* is not).
fn case_identity(case: &Json) -> String {
    let mut parts = Vec::new();
    for key in [
        "interface",
        "package",
        "group_size",
        "np",
        "threads",
        "scenario",
        "ranks",
    ] {
        if let Some(v) = case.get(key) {
            match v {
                Json::Str(s) => parts.push(format!("{key}={s}")),
                Json::Num(n) => parts.push(format!("{key}={n}")),
                _ => {}
            }
        }
    }
    parts.join(",")
}

/// Validates a fresh benchmark artifact against the committed snapshot.
/// Returns every problem found (empty means the artifact is acceptable).
pub fn validate(new: &Json, snapshot: &Json) -> Vec<String> {
    let mut problems = Vec::new();

    // Same schema version.
    let new_schema = new.get("schema").and_then(Json::as_str);
    let snap_schema = snapshot.get("schema").and_then(Json::as_str);
    if new_schema != snap_schema {
        problems.push(format!(
            "schema mismatch: fresh run says {new_schema:?}, snapshot says {snap_schema:?} \
             (regenerate and commit the snapshot when the schema changes)"
        ));
    }

    // No section of the snapshot may vanish from the fresh run.
    if let (Json::Obj(snap), Json::Obj(fresh)) = (snapshot, new) {
        for key in snap.keys() {
            if !fresh.contains_key(key) {
                problems.push(format!("section '{key}' is missing from the fresh run"));
            }
        }
    } else {
        problems.push("both artifacts must be JSON objects".into());
    }

    // No case population may shrink: every (interface, package,
    // group_size, np, threads) identity in any snapshot `cases` array
    // must appear in the corresponding fresh array.
    fn walk_cases(snap: &Json, fresh: Option<&Json>, path: &str, problems: &mut Vec<String>) {
        if let Json::Obj(m) = snap {
            for (k, snap_child) in m {
                let fresh_child = fresh.and_then(|f| f.get(k));
                let child_path = format!("{path}.{k}");
                if k == "cases" {
                    let snap_cases = snap_child.as_arr().unwrap_or(&[]);
                    let fresh_ids: Vec<String> = fresh_child
                        .and_then(Json::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .map(case_identity)
                        .collect();
                    for c in snap_cases {
                        let id = case_identity(c);
                        if !id.is_empty() && !fresh_ids.contains(&id) {
                            problems.push(format!("case [{id}] vanished from {child_path}"));
                        }
                    }
                } else {
                    walk_cases(snap_child, fresh_child, &child_path, problems);
                }
            }
        }
    }
    walk_cases(snapshot, Some(new), "$", &mut problems);

    // Every gate of the fresh run must pass, and there must be gates.
    let mut passes = Vec::new();
    collect_passes(new, "$", &mut passes);
    if passes.is_empty() {
        problems.push("the fresh run contains no gate 'pass' fields at all".into());
    }
    for (path, value) in passes {
        match value {
            Some(true) => {}
            Some(false) => problems.push(format!("gate failed: {path} is false")),
            None => problems.push(format!("gate malformed: {path} is not a boolean")),
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRESH: &str = r#"{
      "schema": "ncs-dataplane-bench/3",
      "gate": { "pass": true },
      "collectives": { "gate": { "pass": true },
        "cases": [ { "package": "kernel", "group_size": 2 } ] },
      "cluster": { "gate": { "pass": true }, "cases": [ { "np": 2 } ] },
      "mt_msgrate": { "gate": { "pass": true },
        "cases": [ { "interface": "HPI", "package": "kernel", "threads": 4 } ] },
      "sim": { "gate": { "pass": true },
        "cases": [ { "scenario": "perf-broadcast", "ranks": 1000 } ] },
      "membership": { "detection_gate": { "pass": true },
        "propagation_gate": { "pass": true },
        "cases": [ { "np": 4, "cycles": 2 } ] },
      "cases": [ { "interface": "HPI", "package": "kernel" } ]
    }"#;

    #[test]
    fn parser_handles_the_artifact_shapes() {
        let v = parse_json(FRESH).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("ncs-dataplane-bench/3")
        );
        assert_eq!(
            v.get("cluster")
                .and_then(|c| c.get("cases"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        let nums = parse_json(r#"{ "a": -1.5e3, "b": [0.25, 99], "c": "q\"uote\n" }"#).unwrap();
        assert_eq!(nums.get("a").and_then(Json::as_num), Some(-1500.0));
        assert_eq!(nums.get("c").and_then(Json::as_str), Some("q\"uote\n"));
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn identical_artifacts_validate_clean() {
        let v = parse_json(FRESH).unwrap();
        assert_eq!(validate(&v, &v), Vec::<String>::new());
    }

    #[test]
    fn schema_drift_is_reported() {
        let fresh = parse_json(&FRESH.replace("bench/3", "bench/4")).unwrap();
        let snap = parse_json(FRESH).unwrap();
        let problems = validate(&fresh, &snap);
        assert!(problems.iter().any(|p| p.contains("schema mismatch")));
    }

    #[test]
    fn missing_sections_and_cases_are_reported() {
        let snap = parse_json(FRESH).unwrap();
        let fresh = parse_json(
            r#"{
          "schema": "ncs-dataplane-bench/3",
          "gate": { "pass": true },
          "collectives": { "gate": { "pass": true },
            "cases": [ { "package": "kernel", "group_size": 4 } ] },
          "mt_msgrate": { "gate": { "pass": true },
            "cases": [ { "interface": "HPI", "package": "kernel", "threads": 1 } ] },
          "sim": { "gate": { "pass": true },
            "cases": [ { "scenario": "perf-broadcast", "ranks": 500 } ] },
          "cases": [ { "interface": "HPI", "package": "kernel" } ]
        }"#,
        )
        .unwrap();
        let problems = validate(&fresh, &snap);
        assert!(
            problems.iter().any(|p| p.contains("section 'cluster'")),
            "{problems:?}"
        );
        // A fresh run that silently drops the membership section (its
        // control-plane gates with it) must be rejected too.
        assert!(
            problems.iter().any(|p| p.contains("section 'membership'")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("group_size=2")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("threads=4")),
            "{problems:?}"
        );
        // The sim case identity includes scenario AND ranks: a 500-rank
        // run must not satisfy the 1000-rank snapshot entry.
        assert!(
            problems
                .iter()
                .any(|p| p.contains("scenario=perf-broadcast,ranks=1000")),
            "{problems:?}"
        );
    }

    #[test]
    fn failed_gates_are_reported() {
        let snap = parse_json(FRESH).unwrap();
        let fresh = parse_json(&FRESH.replacen("\"pass\": true", "\"pass\": false", 1)).unwrap();
        let problems = validate(&fresh, &snap);
        assert!(
            problems.iter().any(|p| p.contains("gate failed")),
            "{problems:?}"
        );
    }

    #[test]
    fn gateless_artifacts_are_rejected() {
        let snap = parse_json(FRESH).unwrap();
        let fresh = parse_json(r#"{ "schema": "ncs-dataplane-bench/3" }"#).unwrap();
        let problems = validate(&fresh, &snap);
        assert!(
            problems.iter().any(|p| p.contains("no gate")),
            "{problems:?}"
        );
    }
}
