//! mt-msgrate — aggregate message rate when N application threads share
//! one connection through per-thread [`Channel`]s.
//!
//! [`Channel`]: ncs_core::Channel
//!
//! Models the classic `mt-p2p-msgrate` microbenchmark: each of N threads
//! owns a private channel (the comm-dup analogue over NCS tag
//! multiplexing), pumps [`MESSAGE_SIZE`]-byte messages in windows of
//! [`WINDOW_SIZE`] nonblocking sends, and the peer mirrors each window
//! with nonblocking receives. The figure of merit is the **aggregate**
//! message rate — the sum over threads of `msgs / per-thread elapsed` —
//! in millions of messages per second.
//!
//! Channels land on distinct delivery-queue shards
//! ([`ncs_core::DELIVERY_SHARDS`]), so receiver threads never contend on
//! a queue lock; what this benchmark measures is how far the rest of the
//! path (submission, flow control, transport batching) scales with the
//! thread count.

use std::sync::Arc;
use std::time::Instant;

use ncs_core::NcsConnection;
use ncs_threads::sync::Event;
use ncs_threads::{ThreadPackage, ThreadPackageExt};

/// Message payload size (bytes), as in the classic benchmark.
pub const MESSAGE_SIZE: usize = 8;

/// Nonblocking operations in flight per thread before each drain.
pub const WINDOW_SIZE: usize = 64;

/// Thread counts the standard sweep measures.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One mt-msgrate measurement: `threads` sender/receiver pairs, each pair
/// on its own channel.
#[derive(Debug, Clone)]
pub struct MsgRate {
    /// Application thread pairs driving the connection.
    pub threads: usize,
    /// Messages each thread moved.
    pub msgs_per_thread: usize,
    /// Per-receiver-thread rates (Mmsgs/s).
    pub per_thread_mmsgs_s: Vec<f64>,
    /// Sum of the per-thread rates (Mmsgs/s) — the headline figure.
    pub aggregate_mmsgs_s: f64,
}

/// Measures aggregate message rate over the `tx` → `rx` connection with
/// `threads` sender/receiver thread pairs spawned on `pkg`, each pair
/// communicating over its own [`Channel`] (`channel(t)` for thread `t`).
///
/// All threads block only through package-aware primitives, so the same
/// code measures both the kernel-level and the user-level package (where
/// "threads" are M:1 green threads sharing one core by construction).
///
/// # Panics
///
/// Panics if `msgs_per_thread` is not a multiple of [`WINDOW_SIZE`], or
/// if any send/receive fails (a benchmark wiring error, not a data-plane
/// condition).
///
/// [`Channel`]: ncs_core::Channel
pub fn measure(
    tx: &NcsConnection,
    rx: &NcsConnection,
    pkg: &Arc<dyn ThreadPackage>,
    threads: usize,
    msgs_per_thread: usize,
) -> MsgRate {
    assert!(
        msgs_per_thread.is_multiple_of(WINDOW_SIZE),
        "msgs_per_thread must be a multiple of WINDOW_SIZE"
    );
    let start = Arc::new(Event::new());
    let mut senders = Vec::with_capacity(threads);
    let mut receivers = Vec::with_capacity(threads);
    for t in 0..threads {
        let ch = tx.channel(t as u16);
        let go = Arc::clone(&start);
        senders.push(pkg.spawn_typed(&format!("msgrate-tx-{t}"), move || {
            go.wait();
            let payload = [0x5Au8; MESSAGE_SIZE];
            let mut sent = 0;
            while sent < msgs_per_thread {
                let window: Vec<_> = (0..WINDOW_SIZE)
                    .map(|_| ch.isend(&payload).expect("msgrate isend"))
                    .collect();
                for req in window {
                    req.wait().expect("msgrate send completion");
                }
                sent += WINDOW_SIZE;
            }
        }));
        let ch = rx.channel(t as u16);
        let go = Arc::clone(&start);
        receivers.push(pkg.spawn_typed(&format!("msgrate-rx-{t}"), move || {
            go.wait();
            let t0 = Instant::now();
            let mut got = 0;
            while got < msgs_per_thread {
                let window: Vec<_> = (0..WINDOW_SIZE).map(|_| ch.irecv()).collect();
                for req in window {
                    let msg = req.wait().expect("msgrate recv completion");
                    debug_assert_eq!(msg.len(), MESSAGE_SIZE);
                }
                got += WINDOW_SIZE;
            }
            t0.elapsed()
        }));
    }
    // Release every thread at once so the measured windows overlap.
    start.fire();
    for handle in senders {
        handle.join().expect("msgrate sender thread");
    }
    let per_thread_mmsgs_s: Vec<f64> = receivers
        .into_iter()
        .map(|handle| {
            let elapsed = handle.join().expect("msgrate receiver thread");
            msgs_per_thread as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6
        })
        .collect();
    MsgRate {
        threads,
        msgs_per_thread,
        aggregate_mmsgs_s: per_thread_mmsgs_s.iter().sum(),
        per_thread_mmsgs_s,
    }
}

/// The CPUs the OS grants this process, as seen by
/// `std::thread::available_parallelism` — the denominator every scaling
/// gate must be honest about. Returns 1 if the OS cannot say.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The 4-thread-over-1-thread aggregate-rate threshold enforced on a host
/// with `cpus` CPUs.
///
/// The headline contract is **≥ 2.0×** — four threads must at least
/// double the single-thread aggregate — but that is a statement about
/// CPU parallelism, so it is only enforceable where the OS actually
/// offers ≥ 4 CPUs. On smaller hosts the gate degrades to documented
/// bounds that still catch the failure mode the benchmark exists to
/// catch (lock contention making added threads *slower* than one):
///
/// | CPUs | threshold | meaning |
/// |---|---|---|
/// | ≥ 4 | 2.0 | real scaling: 4 threads ≥ 2× one thread |
/// | 2–3 | 1.2 | partial scaling: threads must still help |
/// | 1 | 0.5 | no-collapse: contention must not halve the rate |
///
/// See `docs/BENCH_SCHEMA.md` § mt_msgrate for the full contract.
pub fn scaling_threshold(cpus: usize) -> f64 {
    match cpus {
        0 | 1 => 0.5,
        2 | 3 => 1.2,
        _ => 2.0,
    }
}
