//! Experiment harness regenerating every table and figure of the NCS
//! paper's evaluation (§4). One binary per artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig10_thread_packages` | Figure 10 — user- vs kernel-level packages |
//! | `table1_send_breakdown` | Table I — cost of a 1-byte `NCS_send` |
//! | `fig11_overhead_ratio` | Figure 11 — thread overhead vs native send |
//! | `fig12_same_platform` | Figure 12 — NCS/p4/MPI/PVM, same platform |
//! | `fig13_heterogeneous` | Figure 13 — heterogeneous platforms |
//! | `all_experiments` | everything above, in sequence |
//!
//! Environment knobs: `NCS_ITERS` (echo iterations per point),
//! `NCS_TIME_SCALE` (wall seconds per model second for the 1998 platform
//! models), `NCS_FIG10_LOAD_MS` (per-iteration computation).

#![warn(missing_docs)]

pub mod check;
pub mod msgrate;

use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::common::{EndpointSpec, MessageSystem, SystemError};
use baselines::{mpi::MpiEndpoint, p4::P4Endpoint, pvm::PvmEndpoint};
use ncs_core::{ConnectionConfig, NcsConnection, NcsNode};
use ncs_transport::pipe::{self, EndpointModel, PipeConfig};
use netmodel::{Pacer, PlatformProfile};

/// Message sizes used by Figures 12/13 (bytes).
pub const FIG12_SIZES: &[usize] = &[1, 1024, 4096, 8192, 16384, 32768, 65536];

/// Message sizes used by Figures 10/11 (bytes).
pub const FIG10_SIZES: &[usize] = &[
    1, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// Echo round-trip tag.
pub const ECHO_TAG: u32 = 1;

/// Reads an env knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an integer env knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The wire used under the modelled platforms: TCP over LAN ATM
/// (155.52 Mb/s line rate less cell/TCP overhead, ~100 µs one-way).
pub fn atm_wire(time_scale: f64) -> PipeConfig {
    PipeConfig {
        buffer_bytes: 64 * 1024,
        drain_bytes_per_sec: Some(135_000_000 / 8),
        latency: Duration::from_micros(100),
        time_scale,
    }
}

/// An NCS endpoint adapted to the harness's [`MessageSystem`] interface.
///
/// NCS rides a reliable interface here, so it runs in its §3.1 bypass
/// configuration (TCP already provides flow/error control); its costs are
/// charged by the transport's [`EndpointModel`], factor 1.
#[derive(Debug)]
pub struct NcsAdapter {
    conn: NcsConnection,
    _node: NcsNode,
}

impl NcsAdapter {
    /// Wraps an NCS connection (keeps its node alive).
    pub fn new(conn: NcsConnection, node: NcsNode) -> Self {
        NcsAdapter { conn, _node: node }
    }
}

impl MessageSystem for NcsAdapter {
    fn name(&self) -> &'static str {
        "NCS"
    }

    fn send(&mut self, _tag: u32, data: &[u8]) -> Result<(), SystemError> {
        self.conn
            .send(data)
            .map_err(|e| SystemError::Transport(e.to_string()))
    }

    fn recv(&mut self, _tag: u32) -> Result<Vec<u8>, SystemError> {
        self.conn
            .recv_timeout(Duration::from_secs(60))
            .map_err(|e| SystemError::Transport(e.to_string()))
    }
}

/// Which comparison system to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// This paper's system.
    Ncs,
    /// Argonne p4.
    P4,
    /// MPICH-era MPI.
    Mpi,
    /// PVM 3.x.
    Pvm,
}

impl System {
    /// All four, in the paper's legend order.
    pub const ALL: [System; 4] = [System::Ncs, System::P4, System::Mpi, System::Pvm];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Ncs => "NCS",
            System::P4 => "p4",
            System::Mpi => "MPI",
            System::Pvm => "PVM",
        }
    }
}

/// Builds a connected endpoint pair of `system` between two modelled
/// platforms over the ATM wire. Returns (client, server).
pub fn build_pair(
    system: System,
    client_platform: Arc<PlatformProfile>,
    server_platform: Arc<PlatformProfile>,
    time_scale: f64,
) -> (Box<dyn MessageSystem>, Box<dyn MessageSystem>) {
    let pacer = Arc::new(Pacer::new(time_scale));
    let client_spec = EndpointSpec {
        local: Arc::clone(&client_platform),
        remote: Arc::clone(&server_platform),
        pacer: Arc::clone(&pacer),
    };
    let server_spec = EndpointSpec {
        local: Arc::clone(&server_platform),
        remote: Arc::clone(&client_platform),
        pacer: Arc::clone(&pacer),
    };
    match system {
        System::Ncs => {
            // NCS charges its stack costs at the transport boundary.
            let model_client = EndpointModel {
                profile: client_platform,
                pacer: Arc::clone(&pacer),
            };
            let model_server = EndpointModel {
                profile: server_platform,
                pacer,
            };
            let (link_c, link_s) = ncs_core::link::PipeLinkPair::create(
                atm_wire(time_scale),
                Some(model_client),
                Some(model_server),
            );
            let client_node = NcsNode::builder("bench-client").build();
            let server_node = NcsNode::builder("bench-server").build();
            client_node.attach_peer("bench-server", link_c);
            server_node.attach_peer("bench-client", link_s);
            // One SDU per message up to the benchmark's 64 KB maximum,
            // matching the single-frame sends of the comparators.
            let config = ConnectionConfig {
                sdu_size: ConnectionConfig::MAX_SDU,
                ..ConnectionConfig::unreliable()
            };
            let conn_c = client_node
                .connect("bench-server", config)
                .expect("bench connect");
            let conn_s = server_node.accept_default().expect("bench accept");
            (
                Box::new(NcsAdapter::new(conn_c, client_node)),
                Box::new(NcsAdapter::new(conn_s, server_node)),
            )
        }
        System::P4 => {
            let (a, b) = pipe::pair(atm_wire(time_scale));
            (
                Box::new(P4Endpoint::new(Box::new(a), client_spec)),
                Box::new(P4Endpoint::new(Box::new(b), server_spec)),
            )
        }
        System::Mpi => {
            let (a, b) = pipe::pair(atm_wire(time_scale));
            (
                Box::new(MpiEndpoint::new(Box::new(a), client_spec)),
                Box::new(MpiEndpoint::new(Box::new(b), server_spec)),
            )
        }
        System::Pvm => {
            // Benchmarks of the era set PvmRouteDirect (as the paper's
            // comparable-to-NCS PVM numbers imply); encoding stays at the
            // PvmDataDefault negotiation.
            let (a, b) = pipe::pair(atm_wire(time_scale));
            use baselines::pvm::{PvmEncoding, PvmRoute};
            (
                Box::new(PvmEndpoint::with_options(
                    Box::new(a),
                    client_spec,
                    PvmEncoding::Default,
                    PvmRoute::Direct,
                )),
                Box::new(PvmEndpoint::with_options(
                    Box::new(b),
                    server_spec,
                    PvmEncoding::Default,
                    PvmRoute::Direct,
                )),
            )
        }
    }
}

/// Runs the paper's echo benchmark: the client sends `size` bytes, the
/// server echoes them back; the mean round-trip over `iters` iterations is
/// returned in **model** time (wall / time_scale).
pub fn echo_roundtrip(
    client: &mut dyn MessageSystem,
    server: Box<dyn MessageSystem>,
    size: usize,
    iters: usize,
    time_scale: f64,
) -> Duration {
    let server_thread = std::thread::spawn(move || {
        let mut server = server;
        loop {
            match server.recv(ECHO_TAG) {
                Ok(msg) => {
                    if msg.len() == 1 && msg[0] == 0xFF {
                        return; // sentinel: benchmark over
                    }
                    server.send(ECHO_TAG, &msg).expect("echo send");
                }
                Err(_) => return,
            }
        }
    });
    let payload = vec![0xA5u8; size];
    // Warm-up round.
    client.send(ECHO_TAG, &payload).expect("warmup send");
    let _ = client.recv(ECHO_TAG).expect("warmup recv");
    let start = Instant::now();
    for _ in 0..iters {
        client.send(ECHO_TAG, &payload).expect("echo send");
        let back = client.recv(ECHO_TAG).expect("echo recv");
        assert_eq!(back.len(), size, "echo payload length mismatch");
    }
    let wall = start.elapsed();
    // Stop the server.
    let _ = client.send(ECHO_TAG, &[0xFF]);
    let _ = server_thread.join();
    wall.div_f64(time_scale).div_f64(iters as f64)
}

/// Formats a figure table: one row per message size, one column per
/// system, values in model milliseconds.
pub fn print_table(title: &str, sizes: &[usize], columns: &[(String, Vec<Duration>)]) {
    println!("\n=== {title} ===");
    print!("{:>10}", "size");
    for (name, _) in columns {
        print!("{name:>12}");
    }
    println!();
    for (i, &size) in sizes.iter().enumerate() {
        print!("{:>10}", human_size(size));
        for (_, values) in columns {
            print!("{:>12}", format!("{:.2}ms", values[i].as_secs_f64() * 1e3));
        }
        println!();
    }
}

/// Human-readable size label ("1", "4K", "64K").
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        bytes.to_string()
    }
}

/// Spin-computes for `dur` (the paper's `Computation(100 ms)` — real CPU
/// work that does not yield, unlike a sleep).
pub fn compute_load(dur: Duration) {
    let start = Instant::now();
    let mut x = 0u64;
    while start.elapsed() < dur {
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(1), "1");
        assert_eq!(human_size(4096), "4K");
        assert_eq!(human_size(65536), "64K");
        assert_eq!(human_size(1500), "1500");
    }

    #[test]
    fn env_knobs_default() {
        assert_eq!(env_f64("NCS_BENCH_NO_SUCH_VAR", 1.5), 1.5);
        assert_eq!(env_usize("NCS_BENCH_NO_SUCH_VAR", 7), 7);
    }

    #[test]
    fn echo_works_for_every_system_unmodelled() {
        let modern = Arc::new(PlatformProfile::modern());
        for system in System::ALL {
            let (mut client, server) =
                build_pair(system, Arc::clone(&modern), Arc::clone(&modern), 1.0);
            let rt = echo_roundtrip(client.as_mut(), server, 1024, 2, 1.0);
            assert!(rt > Duration::ZERO, "{}", system.name());
        }
    }

    #[test]
    fn compute_load_spins_for_duration() {
        let start = Instant::now();
        compute_load(Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }
}
