//! Property-based tests for the baseline systems: XDR conformance and
//! end-to-end payload integrity for every system over every payload.

use baselines::common::{EndpointSpec, MessageSystem};
use baselines::xdr::{XdrDecoder, XdrEncoder};
use baselines::{mpi::MpiEndpoint, p4::P4Endpoint, pvm::PvmEndpoint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary sequences of XDR items round-trip exactly.
    #[test]
    fn xdr_round_trips_item_sequences(
        items in proptest::collection::vec(
            prop_oneof![
                any::<i32>().prop_map(XdrItem::I32),
                any::<u32>().prop_map(XdrItem::U32),
                any::<f64>().prop_map(XdrItem::F64),
                proptest::collection::vec(any::<u8>(), 0..64).prop_map(XdrItem::Opaque),
            ],
            0..32,
        )
    ) {
        let mut enc = XdrEncoder::new();
        for item in &items {
            match item {
                XdrItem::I32(v) => { enc.put_i32(*v); }
                XdrItem::U32(v) => { enc.put_u32(*v); }
                XdrItem::F64(v) => { enc.put_f64(*v); }
                XdrItem::Opaque(v) => { enc.put_opaque(v); }
            }
        }
        let bytes = enc.finish();
        prop_assert_eq!(bytes.len() % 4, 0, "XDR stream must stay 4-aligned");
        let mut dec = XdrDecoder::new(&bytes);
        for item in &items {
            match item {
                XdrItem::I32(v) => prop_assert_eq!(dec.get_i32().unwrap(), *v),
                XdrItem::U32(v) => prop_assert_eq!(dec.get_u32().unwrap(), *v),
                XdrItem::F64(v) => {
                    let got = dec.get_f64().unwrap();
                    prop_assert!(got == *v || (got.is_nan() && v.is_nan()));
                }
                XdrItem::Opaque(v) => prop_assert_eq!(&dec.get_opaque().unwrap(), v),
            }
        }
        prop_assert_eq!(dec.remaining(), 0);
    }

    /// Every baseline system moves arbitrary payloads intact, homogeneous
    /// and heterogeneous alike.
    #[test]
    fn baselines_preserve_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 1..20_000),
        tag in 1u32..1000,
        hetero: bool,
    ) {
        let (spec_a, spec_b) = if hetero {
            let sun = std::sync::Arc::new(netmodel::PlatformProfile::sun4());
            let rs = std::sync::Arc::new(netmodel::PlatformProfile::rs6000());
            let pacer = std::sync::Arc::new(netmodel::Pacer::disabled());
            (
                EndpointSpec {
                    local: std::sync::Arc::clone(&sun),
                    remote: std::sync::Arc::clone(&rs),
                    pacer: std::sync::Arc::clone(&pacer),
                },
                EndpointSpec {
                    local: rs,
                    remote: sun,
                    pacer,
                },
            )
        } else {
            (EndpointSpec::unmodelled(), EndpointSpec::unmodelled())
        };

        // p4
        let (ca, cb) = ncs_transport::hpi::pair(8192);
        let mut a = P4Endpoint::new(Box::new(ca), spec_a.clone());
        let mut b = P4Endpoint::new(Box::new(cb), spec_b.clone());
        a.send(tag, &payload).unwrap();
        prop_assert_eq!(&b.recv(tag).unwrap(), &payload);

        // PVM
        let (ca, cb) = ncs_transport::hpi::pair(8192);
        let mut a = PvmEndpoint::new(Box::new(ca), spec_a.clone());
        let mut b = PvmEndpoint::new(Box::new(cb), spec_b.clone());
        a.send(tag, &payload).unwrap();
        prop_assert_eq!(&b.recv(tag).unwrap(), &payload);

        // MPI (spawn the sender: rendezvous blocks above the threshold).
        let (ca, cb) = ncs_transport::hpi::pair(8192);
        let mut a = MpiEndpoint::new(Box::new(ca), spec_a);
        let mut b = MpiEndpoint::new(Box::new(cb), spec_b);
        let p2 = payload.clone();
        let sender = std::thread::spawn(move || {
            a.send(tag, &p2).unwrap();
        });
        prop_assert_eq!(&b.recv(tag).unwrap(), &payload);
        sender.join().unwrap();
    }
}

#[derive(Debug, Clone)]
enum XdrItem {
    I32(i32),
    U32(u32),
    F64(f64),
    Opaque(Vec<u8>),
}
