//! XDR (RFC 1014) encoding — the external data representation used by PVM's
//! `PvmDataDefault` and by p4/MPICH for heterogeneous transfers.
//!
//! Everything is big-endian and padded to 4-byte alignment. Only the types
//! the benchmark workloads need are implemented (integers, doubles, opaque
//! byte arrays), but they are implemented honestly — encode produces real
//! RFC-conformant bytes and decode validates them.

/// Errors from XDR decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XdrError(pub String);

impl std::fmt::Display for XdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XDR decode error: {}", self.0)
    }
}

impl std::error::Error for XdrError {}

/// Streaming XDR encoder.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a 32-bit signed integer.
    pub fn put_i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a 32-bit unsigned integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a double-precision float.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes variable-length opaque data (length + bytes + padding).
    pub fn put_opaque(&mut self, data: &[u8]) -> &mut Self {
        self.put_u32(data.len() as u32);
        self.buf.extend_from_slice(data);
        let pad = (4 - data.len() % 4) % 4;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        self
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Streaming XDR decoder.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Decodes from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        XdrDecoder { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.at + n > self.buf.len() {
            return Err(XdrError(format!(
                "need {n} bytes at offset {}, only {} available",
                self.at,
                self.buf.len() - self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Decodes a 32-bit signed integer.
    ///
    /// # Errors
    ///
    /// [`XdrError`] on truncation.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Decodes a 32-bit unsigned integer.
    ///
    /// # Errors
    ///
    /// [`XdrError`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Decodes a double.
    ///
    /// # Errors
    ///
    /// [`XdrError`] on truncation.
    pub fn get_f64(&mut self) -> Result<f64, XdrError> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Decodes opaque data.
    ///
    /// # Errors
    ///
    /// [`XdrError`] on truncation or bad padding.
    pub fn get_opaque(&mut self) -> Result<Vec<u8>, XdrError> {
        let len = self.get_u32()? as usize;
        let data = self.take(len)?.to_vec();
        let pad = (4 - len % 4) % 4;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(XdrError("nonzero padding".to_owned()));
        }
        Ok(data)
    }

    /// Unconsumed byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = XdrEncoder::new();
        e.put_i32(-42).put_u32(7).put_f64(3.5);
        let bytes = e.finish();
        assert_eq!(bytes.len(), 16);
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_i32().unwrap(), -42);
        assert_eq!(d.get_u32().unwrap(), 7);
        assert_eq!(d.get_f64().unwrap(), 3.5);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn opaque_pads_to_four_bytes() {
        for len in 0..9 {
            let data: Vec<u8> = (0..len as u8).collect();
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            let bytes = e.finish();
            assert_eq!(bytes.len() % 4, 0, "len {len}");
            let mut d = XdrDecoder::new(&bytes);
            assert_eq!(d.get_opaque().unwrap(), data);
        }
    }

    #[test]
    fn truncation_detected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[1, 2, 3, 4, 5]);
        let bytes = e.finish();
        let mut d = XdrDecoder::new(&bytes[..6]);
        assert!(d.get_opaque().is_err());
        let mut d = XdrDecoder::new(&[0, 0]);
        assert!(d.get_u32().is_err());
    }

    #[test]
    fn nonzero_padding_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[1]);
        let mut bytes = e.finish();
        *bytes.last_mut().unwrap() = 0xFF;
        let mut d = XdrDecoder::new(&bytes);
        assert!(d.get_opaque().is_err());
    }

    #[test]
    fn big_endian_layout() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.finish(), vec![1, 2, 3, 4]);
    }
}
