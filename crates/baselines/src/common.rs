//! Shared infrastructure for the baseline systems: the [`MessageSystem`]
//! trait the benchmark harness drives, platform cost charging, and the
//! per-system x per-platform stack factors calibrated against the paper's
//! Figures 12/13.

use std::sync::Arc;

use ncs_transport::{Connection, TransportError};
use netmodel::{Pacer, PlatformProfile};

/// Errors from baseline system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// Transport failure.
    Transport(String),
    /// Receive timed out.
    Timeout,
    /// Malformed frame (protocol violation).
    Protocol(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Transport(e) => write!(f, "transport failure: {e}"),
            SystemError::Timeout => write!(f, "receive timed out"),
            SystemError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<TransportError> for SystemError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Timeout => SystemError::Timeout,
            other => SystemError::Transport(other.to_string()),
        }
    }
}

/// A point-to-point message-passing system under benchmark: the common
/// surface of p4, PVM, MPI (and the harness's NCS adapter).
pub trait MessageSystem: Send + std::fmt::Debug {
    /// System name for report rows.
    fn name(&self) -> &'static str;

    /// Sends `data` with message tag/type `tag`.
    ///
    /// # Errors
    ///
    /// See [`SystemError`].
    fn send(&mut self, tag: u32, data: &[u8]) -> Result<(), SystemError>;

    /// Receives the next message with tag/type `tag`.
    ///
    /// # Errors
    ///
    /// See [`SystemError`].
    fn recv(&mut self, tag: u32) -> Result<Vec<u8>, SystemError>;
}

/// Construction spec for one baseline endpoint.
#[derive(Debug, Clone)]
pub struct EndpointSpec {
    /// The platform this endpoint runs on.
    pub local: Arc<PlatformProfile>,
    /// The platform of the peer (drives heterogeneous-path decisions).
    pub remote: Arc<PlatformProfile>,
    /// The pacer charging this endpoint's modelled costs.
    pub pacer: Arc<Pacer>,
}

impl EndpointSpec {
    /// A spec with no cost model (modern platform, disabled pacer) — used
    /// by functional tests.
    pub fn unmodelled() -> Self {
        EndpointSpec {
            local: Arc::new(PlatformProfile::modern()),
            remote: Arc::new(PlatformProfile::modern()),
            pacer: Arc::new(Pacer::disabled()),
        }
    }

    /// Whether this endpoint pair takes heterogeneous (conversion) paths.
    pub fn heterogeneous(&self) -> bool {
        self.local.heterogeneous_with(&self.remote)
    }
}

/// Per-system, per-platform protocol-stack multipliers.
///
/// The paper's §4.3 finding is that "the performance of send/receive
/// primitives of each message-passing system varies according to the
/// computing platforms": p4 and MPI were efficient on AIX but poor on
/// SunOS 5.5, PVM the reverse. These factors scale the platform's
/// per-byte stack cost per system and are calibrated so the figure shapes
/// (who wins where, by roughly what factor) match; see `EXPERIMENTS.md`.
pub fn stack_factor(system: &str, arch: &str) -> f64 {
    match (system, arch) {
        ("p4", "sparc") => 2.2,
        ("p4", "power") => 0.7,
        ("mpi", "sparc") => 1.9,
        ("mpi", "power") => 1.0,
        ("pvm", "sparc") => 1.0,
        ("pvm", "power") => 1.9,
        // Unmodelled platforms and NCS run at factor 1.
        _ => 1.0,
    }
}

/// A transport endpoint that charges platform costs on every operation.
pub struct CostedTransport {
    conn: Box<dyn Connection>,
    spec: EndpointSpec,
    factor: f64,
}

impl std::fmt::Debug for CostedTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostedTransport")
            .field("platform", &self.spec.local.name)
            .field("factor", &self.factor)
            .finish()
    }
}

impl CostedTransport {
    /// Wraps `conn` for a `system` endpoint described by `spec`.
    pub fn new(system: &'static str, conn: Box<dyn Connection>, spec: EndpointSpec) -> Self {
        let factor = stack_factor(system, &spec.local.arch);
        CostedTransport { conn, spec, factor }
    }

    /// The endpoint spec.
    pub fn spec(&self) -> &EndpointSpec {
        &self.spec
    }

    /// Sends a frame, charging `send_op + factor * per_byte_stack * len`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&self, frame: &[u8]) -> Result<(), SystemError> {
        let p = &self.spec.local;
        self.spec.pacer.charge(p.send_op);
        self.spec
            .pacer
            .charge(p.per_byte_stack.mul_f64(self.factor) * frame.len() as u32);
        self.conn.send(frame)?;
        Ok(())
    }

    /// Receives a frame, charging the receive-side costs.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn recv(&self) -> Result<Vec<u8>, SystemError> {
        let frame = self.conn.recv_timeout(std::time::Duration::from_secs(60))?;
        let p = &self.spec.local;
        self.spec.pacer.charge(p.recv_op);
        self.spec
            .pacer
            .charge(p.per_byte_stack.mul_f64(self.factor) * frame.len() as u32);
        Ok(frame)
    }

    /// Charges an XDR conversion of `bytes` scaled by `efficiency`
    /// (1.0 = the platform's nominal XDR cost).
    pub fn charge_xdr(&self, bytes: usize, efficiency: f64) {
        self.spec
            .pacer
            .charge(self.spec.local.xdr_cost(bytes).mul_f64(efficiency));
    }

    /// Charges a plain buffer copy of `bytes`.
    pub fn charge_copy(&self, bytes: usize) {
        self.spec.pacer.charge(self.spec.local.copy_cost(bytes));
    }

    /// Charges an arbitrary fixed cost (protocol-layer bookkeeping).
    pub fn charge_fixed(&self, d: std::time::Duration) {
        self.spec.pacer.charge(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_factors_encode_platform_findings() {
        // p4/MPI good on AIX, bad on SunOS; PVM the reverse.
        assert!(stack_factor("p4", "sparc") > stack_factor("p4", "power"));
        assert!(stack_factor("mpi", "sparc") > stack_factor("mpi", "power"));
        assert!(stack_factor("pvm", "power") > stack_factor("pvm", "sparc"));
        assert_eq!(stack_factor("anything", "native"), 1.0);
    }

    #[test]
    fn unmodelled_spec_is_homogeneous() {
        let s = EndpointSpec::unmodelled();
        assert!(!s.heterogeneous());
    }

    #[test]
    fn costed_transport_moves_frames() {
        let (a, b) = ncs_transport::hpi::pair_default();
        let ta = CostedTransport::new("p4", Box::new(a), EndpointSpec::unmodelled());
        let tb = CostedTransport::new("p4", Box::new(b), EndpointSpec::unmodelled());
        ta.send(b"frame").unwrap();
        assert_eq!(tb.recv().unwrap(), b"frame");
    }
}
