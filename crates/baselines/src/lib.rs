//! The comparator message-passing systems of the NCS paper's §4.3: working
//! miniature reimplementations of **p4**, **PVM** and **MPI** (MPICH-1
//! era), faithful to the protocol behaviours that shaped Figures 12/13:
//!
//! * **p4** ([`p4`]) — lean typed messages straight over the transport;
//!   XDR conversion only between heterogeneous hosts. Very fast on AIX,
//!   poor on SunOS (its socket handling hit SunOS pathologies — modelled
//!   via per-platform stack factors).
//! * **PVM** ([`pvm`]) — pack/unpack message buffers; `PvmDataDefault`
//!   XDR-encodes *always* (the portable default the paper benchmarks);
//!   daemon-routed messages take an extra hop unless direct routing is
//!   requested.
//! * **MPI** ([`mpi`]) — envelope matching plus the two-protocol design:
//!   **eager** below a threshold, **rendezvous** (RTS/CTS round trip)
//!   above it — the reason MPI degrades sharply for large messages on
//!   slow/heterogeneous platforms; conservative packing when hosts differ.
//!
//! All three run over any [`ncs_transport::Connection`] and charge their
//! CPU costs against a [`netmodel::PlatformProfile`] through a
//! [`netmodel::Pacer`], so the experiment harness can put 1998 platforms
//! behind modern silicon. The per-system, per-platform stack factors are
//! calibration constants documented in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod mpi;
pub mod p4;
pub mod pvm;
pub mod xdr;

pub use common::{EndpointSpec, MessageSystem, SystemError};
