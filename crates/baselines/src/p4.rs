//! p4-lite: the Argonne p4 library's point-to-point layer (Butler & Lusk
//! 1994), as benchmarked by the paper.
//!
//! Characteristics reproduced:
//!
//! * typed messages (`p4_send(type, ...)` / `p4_recv(type, ...)`) with a
//!   small fixed header, sent straight over the transport — p4's strength:
//!   minimal layering;
//! * one staging copy of the payload into the message buffer;
//! * XDR conversion **only between heterogeneous hosts** (both sides
//!   convert: sender encodes, receiver decodes);
//! * platform sensitivity: p4's socket handling was tuned for AIX-like
//!   stacks and mis-tuned for SunOS 5.5 (the Figure 12 reversal), carried
//!   by the per-platform stack factor.

use std::collections::VecDeque;

use ncs_transport::Connection;

use crate::common::{CostedTransport, EndpointSpec, MessageSystem, SystemError};
use crate::xdr::{XdrDecoder, XdrEncoder};

const MAGIC: u8 = 0x70; // 'p'

/// One endpoint of a p4 pair.
pub struct P4Endpoint {
    transport: CostedTransport,
    hetero: bool,
    /// Messages received but not yet matched by type.
    unmatched: VecDeque<(u32, Vec<u8>)>,
}

impl std::fmt::Debug for P4Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P4Endpoint")
            .field("hetero", &self.hetero)
            .field("unmatched", &self.unmatched.len())
            .finish()
    }
}

impl P4Endpoint {
    /// Creates the endpoint over `conn`.
    pub fn new(conn: Box<dyn Connection>, spec: EndpointSpec) -> Self {
        let hetero = spec.heterogeneous();
        P4Endpoint {
            transport: CostedTransport::new("p4", conn, spec),
            hetero,
            unmatched: VecDeque::new(),
        }
    }

    fn encode(&self, tag: u32, data: &[u8]) -> Vec<u8> {
        // Header: magic, type, length. Payload staged with one copy
        // (XDR-encoded when heterogeneous).
        let mut frame = Vec::with_capacity(16 + data.len());
        frame.push(MAGIC);
        frame.extend_from_slice(&tag.to_be_bytes());
        if self.hetero {
            self.transport.charge_xdr(data.len(), 1.0);
            let mut enc = XdrEncoder::new();
            enc.put_opaque(data);
            let body = enc.finish();
            frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
            frame.push(1); // xdr flag
            frame.extend_from_slice(&body);
        } else {
            self.transport.charge_copy(data.len());
            frame.extend_from_slice(&(data.len() as u32).to_be_bytes());
            frame.push(0);
            frame.extend_from_slice(data);
        }
        frame
    }

    fn decode(&self, frame: &[u8]) -> Result<(u32, Vec<u8>), SystemError> {
        if frame.len() < 10 || frame[0] != MAGIC {
            return Err(SystemError::Protocol("bad p4 frame".to_owned()));
        }
        let tag = u32::from_be_bytes(frame[1..5].try_into().expect("4"));
        let len = u32::from_be_bytes(frame[5..9].try_into().expect("4")) as usize;
        let xdr = frame[9] == 1;
        let body = &frame[10..];
        if body.len() != len {
            return Err(SystemError::Protocol(format!(
                "p4 length mismatch: header {len}, body {}",
                body.len()
            )));
        }
        if xdr {
            self.transport.charge_xdr(len, 1.0);
            let mut dec = XdrDecoder::new(body);
            let data = dec
                .get_opaque()
                .map_err(|e| SystemError::Protocol(e.to_string()))?;
            Ok((tag, data))
        } else {
            self.transport.charge_copy(len);
            Ok((tag, body.to_vec()))
        }
    }
}

impl MessageSystem for P4Endpoint {
    fn name(&self) -> &'static str {
        "p4"
    }

    fn send(&mut self, tag: u32, data: &[u8]) -> Result<(), SystemError> {
        let frame = self.encode(tag, data);
        self.transport.send(&frame)
    }

    fn recv(&mut self, tag: u32) -> Result<Vec<u8>, SystemError> {
        if let Some(pos) = self.unmatched.iter().position(|(t, _)| *t == tag) {
            return Ok(self.unmatched.remove(pos).expect("position valid").1);
        }
        loop {
            let frame = self.transport.recv()?;
            let (t, data) = self.decode(&frame)?;
            if t == tag {
                return Ok(data);
            }
            self.unmatched.push_back((t, data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pair() -> (P4Endpoint, P4Endpoint) {
        let (a, b) = ncs_transport::hpi::pair(4096);
        (
            P4Endpoint::new(Box::new(a), EndpointSpec::unmodelled()),
            P4Endpoint::new(Box::new(b), EndpointSpec::unmodelled()),
        )
    }

    #[test]
    fn send_recv_round_trip() {
        let (mut a, mut b) = pair();
        a.send(7, b"p4 message").unwrap();
        assert_eq!(b.recv(7).unwrap(), b"p4 message");
        assert_eq!(a.name(), "p4");
    }

    #[test]
    fn type_matching_queues_mismatches() {
        let (mut a, mut b) = pair();
        a.send(1, b"first").unwrap();
        a.send(2, b"second").unwrap();
        a.send(1, b"third").unwrap();
        assert_eq!(b.recv(2).unwrap(), b"second");
        assert_eq!(b.recv(1).unwrap(), b"first");
        assert_eq!(b.recv(1).unwrap(), b"third");
    }

    #[test]
    fn heterogeneous_pair_survives_xdr() {
        let spec_sun = EndpointSpec {
            local: Arc::new(netmodel::PlatformProfile::sun4()),
            remote: Arc::new(netmodel::PlatformProfile::rs6000()),
            pacer: Arc::new(netmodel::Pacer::disabled()),
        };
        let spec_rs = EndpointSpec {
            local: Arc::new(netmodel::PlatformProfile::rs6000()),
            remote: Arc::new(netmodel::PlatformProfile::sun4()),
            pacer: Arc::new(netmodel::Pacer::disabled()),
        };
        let (ta, tb) = ncs_transport::hpi::pair(4096);
        let mut a = P4Endpoint::new(Box::new(ta), spec_sun);
        let mut b = P4Endpoint::new(Box::new(tb), spec_rs);
        assert!(a.hetero && b.hetero);
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        a.send(3, &payload).unwrap();
        assert_eq!(b.recv(3).unwrap(), payload);
    }

    #[test]
    fn large_messages() {
        let (mut a, mut b) = pair();
        let payload = vec![0xABu8; 100_000];
        a.send(9, &payload).unwrap();
        assert_eq!(b.recv(9).unwrap(), payload);
    }
}
