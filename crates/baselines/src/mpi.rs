//! MPI-lite: 1997-era MPICH point-to-point semantics, as benchmarked by
//! the paper.
//!
//! Characteristics reproduced:
//!
//! * **envelope matching** — (tag, source, communicator) headers with
//!   unexpected-message queueing and a per-message matching cost (MPICH's
//!   ADI layering, a little dearer than p4/PVM per call);
//! * the **two-protocol design**:
//!   * *eager* for messages at or below [`MpiEndpoint::EAGER_THRESHOLD`]
//!     (copy through the unexpected buffer on the receiver),
//!   * *rendezvous* above it — request-to-send / clear-to-send handshake
//!     before the data moves, adding a full round trip and serialising the
//!     pipeline: the mechanism behind MPI's collapse for large messages in
//!     Figures 12/13;
//! * **conservative heterogeneous packing** — MPICH's ch_p4 device packed
//!   through a contiguous conversion buffer when architectures differed,
//!   at slightly worse than nominal XDR cost.

use std::collections::VecDeque;

use ncs_transport::Connection;

use crate::common::{CostedTransport, EndpointSpec, MessageSystem, SystemError};
use crate::xdr::{XdrDecoder, XdrEncoder};

const MAGIC: u8 = 0x6D; // 'm'
const KIND_EAGER: u8 = 0;
const KIND_RTS: u8 = 1;
const KIND_CTS: u8 = 2;
const KIND_DATA: u8 = 3;

/// MPICH's conservative hetero-packing relative cost (calibration).
const MPI_PACK_INEFFICIENCY: f64 = 1.3;

/// One endpoint of an MPI pair (one rank talking to one peer rank).
pub struct MpiEndpoint {
    transport: CostedTransport,
    hetero: bool,
    /// Unexpected-message queue: (tag, payload).
    unexpected: VecDeque<(u32, Vec<u8>)>,
    /// RTS messages seen while looking for something else: (tag, length).
    pending_rts: VecDeque<(u32, usize)>,
}

impl std::fmt::Debug for MpiEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiEndpoint")
            .field("hetero", &self.hetero)
            .field("unexpected", &self.unexpected.len())
            .finish()
    }
}

impl MpiEndpoint {
    /// Eager/rendezvous switch-over point (bytes), MPICH's classic 16 KB.
    pub const EAGER_THRESHOLD: usize = 16 * 1024;

    /// Creates the endpoint over `conn`.
    pub fn new(conn: Box<dyn Connection>, spec: EndpointSpec) -> Self {
        let hetero = spec.heterogeneous();
        MpiEndpoint {
            transport: CostedTransport::new("mpi", conn, spec),
            hetero,
            unexpected: VecDeque::new(),
            pending_rts: VecDeque::new(),
        }
    }

    fn matching_cost(&self) {
        // ADI + request bookkeeping per message.
        let p = &self.transport.spec().local;
        self.transport.charge_fixed(p.send_op.mul_f64(0.4));
    }

    fn pack(&self, data: &[u8]) -> (u8, Vec<u8>) {
        if self.hetero {
            self.transport.charge_xdr(data.len(), MPI_PACK_INEFFICIENCY);
            let mut enc = XdrEncoder::new();
            enc.put_opaque(data);
            (1, enc.finish())
        } else {
            self.transport.charge_copy(data.len());
            (0, data.to_vec())
        }
    }

    fn unpack(&self, packed: u8, body: &[u8]) -> Result<Vec<u8>, SystemError> {
        if packed == 1 {
            self.transport.charge_xdr(body.len(), MPI_PACK_INEFFICIENCY);
            let mut dec = XdrDecoder::new(body);
            dec.get_opaque()
                .map_err(|e| SystemError::Protocol(e.to_string()))
        } else {
            self.transport.charge_copy(body.len());
            Ok(body.to_vec())
        }
    }

    fn frame(&self, kind: u8, tag: u32, packed: u8, body: &[u8]) -> Vec<u8> {
        let mut f = Vec::with_capacity(11 + body.len());
        f.push(MAGIC);
        f.push(kind);
        f.extend_from_slice(&tag.to_be_bytes());
        f.push(packed);
        f.extend_from_slice(&(body.len() as u32).to_be_bytes());
        f.extend_from_slice(body);
        f
    }

    fn parse<'a>(&self, frame: &'a [u8]) -> Result<(u8, u32, u8, &'a [u8]), SystemError> {
        if frame.len() < 11 || frame[0] != MAGIC {
            return Err(SystemError::Protocol("bad mpi frame".to_owned()));
        }
        let kind = frame[1];
        let tag = u32::from_be_bytes(frame[2..6].try_into().expect("4"));
        let packed = frame[6];
        let len = u32::from_be_bytes(frame[7..11].try_into().expect("4")) as usize;
        let body = &frame[11..];
        if body.len() != len {
            return Err(SystemError::Protocol("mpi length mismatch".to_owned()));
        }
        Ok((kind, tag, packed, body))
    }

    /// Handles one incoming frame while the receiver is inside `recv(tag)`.
    /// Returns the payload if it completed the wanted message.
    fn absorb(&mut self, frame: &[u8], wanted: u32) -> Result<Option<Vec<u8>>, SystemError> {
        let (kind, tag, packed, body) = self.parse(frame)?;
        match kind {
            KIND_EAGER | KIND_DATA => {
                self.matching_cost();
                let data = self.unpack(packed, body)?;
                if tag == wanted {
                    Ok(Some(data))
                } else {
                    // Extra staging copy through the unexpected buffer.
                    self.transport.charge_copy(data.len());
                    self.unexpected.push_back((tag, data));
                    Ok(None)
                }
            }
            KIND_RTS => {
                // Grant the clear-to-send; the data will arrive as
                // KIND_DATA.
                let len = u32::from_be_bytes(
                    body.get(..4)
                        .ok_or_else(|| SystemError::Protocol("short rts".to_owned()))?
                        .try_into()
                        .expect("4"),
                ) as usize;
                self.pending_rts.push_back((tag, len));
                let cts = self.frame(KIND_CTS, tag, 0, &[]);
                self.transport.send(&cts)?;
                Ok(None)
            }
            KIND_CTS => Err(SystemError::Protocol(
                "unexpected CTS outside rendezvous".to_owned(),
            )),
            other => Err(SystemError::Protocol(format!("unknown mpi kind {other}"))),
        }
    }
}

impl MessageSystem for MpiEndpoint {
    fn name(&self) -> &'static str {
        "MPI"
    }

    fn send(&mut self, tag: u32, data: &[u8]) -> Result<(), SystemError> {
        self.matching_cost();
        if data.len() <= Self::EAGER_THRESHOLD {
            let (packed, body) = self.pack(data);
            let f = self.frame(KIND_EAGER, tag, packed, &body);
            self.transport.send(&f)
        } else {
            // Rendezvous: RTS, wait for CTS (a full round trip before any
            // payload byte moves), then the data.
            let rts = self.frame(KIND_RTS, tag, 0, &(data.len() as u32).to_be_bytes());
            self.transport.send(&rts)?;
            loop {
                let frame = self.transport.recv()?;
                let (kind, t, _, _) = self.parse(&frame)?;
                if kind == KIND_CTS && t == tag {
                    break;
                }
                // Anything else (e.g. the peer's own traffic) must be
                // absorbed so two simultaneous senders cannot deadlock.
                if self.absorb(&frame, u32::MAX)?.is_some() {
                    unreachable!("absorb(wanted=MAX) never completes a message");
                }
            }
            let (packed, body) = self.pack(data);
            let f = self.frame(KIND_DATA, tag, packed, &body);
            self.transport.send(&f)
        }
    }

    fn recv(&mut self, tag: u32) -> Result<Vec<u8>, SystemError> {
        self.matching_cost();
        if let Some(pos) = self.unexpected.iter().position(|(t, _)| *t == tag) {
            let (_, data) = self.unexpected.remove(pos).expect("position valid");
            self.transport.charge_copy(data.len());
            return Ok(data);
        }
        loop {
            let frame = self.transport.recv()?;
            if let Some(data) = self.absorb(&frame, tag)? {
                return Ok(data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pair() -> (MpiEndpoint, MpiEndpoint) {
        let (a, b) = ncs_transport::hpi::pair(4096);
        (
            MpiEndpoint::new(Box::new(a), EndpointSpec::unmodelled()),
            MpiEndpoint::new(Box::new(b), EndpointSpec::unmodelled()),
        )
    }

    #[test]
    fn eager_round_trip() {
        let (mut a, mut b) = pair();
        a.send(5, b"small message").unwrap();
        assert_eq!(b.recv(5).unwrap(), b"small message");
        assert_eq!(a.name(), "MPI");
    }

    #[test]
    fn rendezvous_round_trip() {
        let (mut a, mut b) = pair();
        let payload = vec![0x5Au8; MpiEndpoint::EAGER_THRESHOLD + 1];
        let p2 = payload.clone();
        // The sender blocks in RTS/CTS until the receiver engages.
        let t = std::thread::spawn(move || {
            a.send(6, &p2).unwrap();
            a
        });
        assert_eq!(b.recv(6).unwrap(), payload);
        t.join().unwrap();
    }

    #[test]
    fn threshold_boundary_is_eager() {
        let (mut a, mut b) = pair();
        let payload = vec![1u8; MpiEndpoint::EAGER_THRESHOLD];
        a.send(1, &payload).unwrap(); // must not block on CTS
        assert_eq!(b.recv(1).unwrap(), payload);
    }

    #[test]
    fn tag_matching_queues_unexpected() {
        let (mut a, mut b) = pair();
        a.send(1, b"one").unwrap();
        a.send(2, b"two").unwrap();
        assert_eq!(b.recv(2).unwrap(), b"two");
        assert_eq!(b.recv(1).unwrap(), b"one");
    }

    #[test]
    fn heterogeneous_rendezvous_with_packing() {
        let spec_sun = EndpointSpec {
            local: Arc::new(netmodel::PlatformProfile::sun4()),
            remote: Arc::new(netmodel::PlatformProfile::rs6000()),
            pacer: Arc::new(netmodel::Pacer::disabled()),
        };
        let spec_rs = EndpointSpec {
            local: Arc::new(netmodel::PlatformProfile::rs6000()),
            remote: Arc::new(netmodel::PlatformProfile::sun4()),
            pacer: Arc::new(netmodel::Pacer::disabled()),
        };
        let (ta, tb) = ncs_transport::hpi::pair(4096);
        let mut a = MpiEndpoint::new(Box::new(ta), spec_sun);
        let mut b = MpiEndpoint::new(Box::new(tb), spec_rs);
        let payload: Vec<u8> = (0..40_000).map(|i| (i % 253) as u8).collect();
        let p2 = payload.clone();
        let t = std::thread::spawn(move || {
            a.send(9, &p2).unwrap();
            a
        });
        assert_eq!(b.recv(9).unwrap(), payload);
        t.join().unwrap();
    }
}
