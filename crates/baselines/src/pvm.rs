//! PVM-lite: Parallel Virtual Machine 3.x message passing (Sunderam 1990),
//! as benchmarked by the paper.
//!
//! Characteristics reproduced:
//!
//! * **pack/unpack buffers**: `pvm_initsend` / `pvm_pk*` stage data into a
//!   send buffer (one copy), `pvm_upk*` extract on the receiver;
//! * **`PvmDataDefault` encoding** — XDR between heterogeneous hosts
//!   (charged on both sides, at PVM's tuned better-than-nominal
//!   efficiency); since PVM 3.3 the daemons negotiate data formats, so
//!   same-format pairs skip conversion. `PvmDataRaw` never converts;
//!   `ForceXdr` reproduces the pre-3.3 always-convert behaviour;
//! * **daemon routing by default**: messages pass through the local `pvmd`
//!   (an extra store-and-forward hop: one more fixed cost + two more
//!   copies); `PvmRouteDirect` bypasses it.

use std::collections::VecDeque;

use ncs_transport::Connection;

use crate::common::{CostedTransport, EndpointSpec, MessageSystem, SystemError};
use crate::xdr::{XdrDecoder, XdrEncoder};

const MAGIC: u8 = 0x76; // 'v'

/// PVM's tuned XDR relative cost (its encode loop was cheaper than the
/// generic nominal cost; calibration constant).
const PVM_XDR_EFFICIENCY: f64 = 0.55;

/// Data encoding mode (`pvm_initsend` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PvmEncoding {
    /// The portable default: XDR when the pair is heterogeneous; since
    /// PVM 3.3 the daemons negotiate data formats and skip conversion
    /// between same-format hosts.
    #[default]
    Default,
    /// Raw bytes (no conversion ever).
    Raw,
    /// Force XDR even between identical hosts (pre-3.3 behaviour; kept for
    /// ablation experiments).
    ForceXdr,
}

/// Message routing (`pvm_setopt(PvmRoute, ...)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PvmRoute {
    /// Via the pvmd daemons (the default).
    #[default]
    Daemon,
    /// Task-to-task TCP.
    Direct,
}

/// One endpoint of a PVM pair.
pub struct PvmEndpoint {
    transport: CostedTransport,
    encoding: PvmEncoding,
    route: PvmRoute,
    hetero: bool,
    unmatched: VecDeque<(u32, Vec<u8>)>,
}

impl std::fmt::Debug for PvmEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PvmEndpoint")
            .field("encoding", &self.encoding)
            .field("route", &self.route)
            .finish()
    }
}

impl PvmEndpoint {
    /// Creates the endpoint with the 1998 defaults (`PvmDataDefault`,
    /// daemon routing).
    pub fn new(conn: Box<dyn Connection>, spec: EndpointSpec) -> Self {
        Self::with_options(conn, spec, PvmEncoding::Default, PvmRoute::Daemon)
    }

    /// Creates the endpoint with explicit encoding and routing options.
    pub fn with_options(
        conn: Box<dyn Connection>,
        spec: EndpointSpec,
        encoding: PvmEncoding,
        route: PvmRoute,
    ) -> Self {
        let hetero = spec.heterogeneous();
        PvmEndpoint {
            transport: CostedTransport::new("pvm", conn, spec),
            encoding,
            route,
            hetero,
            unmatched: VecDeque::new(),
        }
    }

    fn encode(&self, tag: u32, data: &[u8]) -> Vec<u8> {
        // pvm_initsend + pvm_pkbyte: stage into the send buffer.
        let mut frame = Vec::with_capacity(16 + data.len());
        frame.push(MAGIC);
        frame.extend_from_slice(&tag.to_be_bytes());
        let use_xdr = match self.encoding {
            PvmEncoding::Default => self.hetero,
            PvmEncoding::Raw => false,
            PvmEncoding::ForceXdr => true,
        };
        match use_xdr {
            true => {
                self.transport.charge_xdr(data.len(), PVM_XDR_EFFICIENCY);
                frame.push(1);
                let mut enc = XdrEncoder::new();
                enc.put_opaque(data);
                frame.extend_from_slice(&enc.finish());
            }
            false => {
                self.transport.charge_copy(data.len());
                frame.push(0);
                frame.extend_from_slice(data);
            }
        }
        frame
    }

    fn decode(&self, frame: &[u8]) -> Result<(u32, Vec<u8>), SystemError> {
        if frame.len() < 6 || frame[0] != MAGIC {
            return Err(SystemError::Protocol("bad pvm frame".to_owned()));
        }
        let tag = u32::from_be_bytes(frame[1..5].try_into().expect("4"));
        let body = &frame[6..];
        match frame[5] {
            1 => {
                self.transport.charge_xdr(body.len(), PVM_XDR_EFFICIENCY);
                let mut dec = XdrDecoder::new(body);
                let data = dec
                    .get_opaque()
                    .map_err(|e| SystemError::Protocol(e.to_string()))?;
                Ok((tag, data))
            }
            0 => {
                self.transport.charge_copy(body.len());
                Ok((tag, body.to_vec()))
            }
            other => Err(SystemError::Protocol(format!(
                "unknown pvm encoding {other}"
            ))),
        }
    }

    /// Charges the daemon store-and-forward hop (sender-side pvmd).
    fn charge_daemon_hop(&self, bytes: usize) {
        let p = &self.transport.spec().local;
        // Task -> pvmd handoff and pvmd -> wire: one extra fixed operation
        // and two extra buffer traversals.
        self.transport.charge_fixed(p.send_op);
        self.transport
            .charge_fixed(p.copy_cost(bytes) + p.copy_cost(bytes));
    }
}

impl MessageSystem for PvmEndpoint {
    fn name(&self) -> &'static str {
        "PVM"
    }

    fn send(&mut self, tag: u32, data: &[u8]) -> Result<(), SystemError> {
        let frame = self.encode(tag, data);
        if self.route == PvmRoute::Daemon {
            self.charge_daemon_hop(frame.len());
        }
        self.transport.send(&frame)
    }

    fn recv(&mut self, tag: u32) -> Result<Vec<u8>, SystemError> {
        if let Some(pos) = self.unmatched.iter().position(|(t, _)| *t == tag) {
            return Ok(self.unmatched.remove(pos).expect("position valid").1);
        }
        loop {
            let frame = self.transport.recv()?;
            if self.route == PvmRoute::Daemon {
                // Receiver-side pvmd hop.
                self.charge_daemon_hop(frame.len());
            }
            let (t, data) = self.decode(&frame)?;
            if t == tag {
                return Ok(data);
            }
            self.unmatched.push_back((t, data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(enc: PvmEncoding, route: PvmRoute) -> (PvmEndpoint, PvmEndpoint) {
        let (a, b) = ncs_transport::hpi::pair(4096);
        (
            PvmEndpoint::with_options(Box::new(a), EndpointSpec::unmodelled(), enc, route),
            PvmEndpoint::with_options(Box::new(b), EndpointSpec::unmodelled(), enc, route),
        )
    }

    #[test]
    fn default_mode_round_trip() {
        let (mut a, mut b) = pair(PvmEncoding::Default, PvmRoute::Daemon);
        a.send(11, b"pvm message").unwrap();
        assert_eq!(b.recv(11).unwrap(), b"pvm message");
        assert_eq!(a.name(), "PVM");
    }

    #[test]
    fn raw_direct_round_trip() {
        let (mut a, mut b) = pair(PvmEncoding::Raw, PvmRoute::Direct);
        let payload = vec![7u8; 50_000];
        a.send(4, &payload).unwrap();
        assert_eq!(b.recv(4).unwrap(), payload);
    }

    #[test]
    fn tag_matching() {
        let (mut a, mut b) = pair(PvmEncoding::Default, PvmRoute::Direct);
        a.send(1, b"one").unwrap();
        a.send(2, b"two").unwrap();
        assert_eq!(b.recv(2).unwrap(), b"two");
        assert_eq!(b.recv(1).unwrap(), b"one");
    }

    #[test]
    fn xdr_frames_differ_from_raw() {
        let (a1, _) = ncs_transport::hpi::pair(16);
        let e = PvmEndpoint::with_options(
            Box::new(a1),
            EndpointSpec::unmodelled(),
            PvmEncoding::ForceXdr,
            PvmRoute::Direct,
        );
        let xdr_frame = e.encode(1, b"abc");
        let (a2, _) = ncs_transport::hpi::pair(16);
        let e2 = PvmEndpoint::with_options(
            Box::new(a2),
            EndpointSpec::unmodelled(),
            PvmEncoding::Raw,
            PvmRoute::Direct,
        );
        let raw_frame = e2.encode(1, b"abc");
        assert_ne!(xdr_frame, raw_frame);
        assert!(xdr_frame.len() > raw_frame.len()); // length word + padding
    }
}
