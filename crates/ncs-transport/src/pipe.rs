//! PIPE — a modelled 1998 kernel socket pair.
//!
//! Reproduces the two socket behaviours the paper's experiments depend on:
//!
//! * a **bounded kernel send buffer** (32 KB in the paper's §4.1 test):
//!   `send` blocks *at OS level* when the buffer is full. Under the
//!   user-level thread package this stalls the whole process — exactly the
//!   effect Figure 10 measures — while kernel-level threads overlap the
//!   blocked send with computation;
//! * a **drain rate** modelling how fast the kernel + wire move data out of
//!   the buffer, and optional per-endpoint platform stack costs
//!   ([`netmodel::PlatformProfile`]) charged on each operation.
//!
//! The pipe is reliable and ordered, like the TCP it stands in for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ncs_threads::sync::Mailbox;
use netmodel::{Pacer, PlatformProfile};
use parking_lot::{Condvar, Mutex};

use crate::iface::{Capabilities, Connection, Readiness, TransportError, Waker};

/// Largest frame the pipe accepts.
pub const MAX_FRAME: usize = 1024 * 1024;

/// Configuration for a modelled socket pair.
#[derive(Debug, Clone)]
pub struct PipeConfig {
    /// Kernel send-buffer size in bytes (32 KB in the paper).
    pub buffer_bytes: usize,
    /// Rate at which the kernel drains the send buffer onto the wire, in
    /// bytes of *model* time per second. `None` drains instantly.
    pub drain_bytes_per_sec: Option<u64>,
    /// One-way delivery latency (model time) applied after draining.
    pub latency: Duration,
    /// Wall seconds per model second for the drain/latency process.
    pub time_scale: f64,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            buffer_bytes: 32 * 1024,
            drain_bytes_per_sec: None,
            latency: Duration::ZERO,
            time_scale: 1.0,
        }
    }
}

/// Per-endpoint platform cost model.
#[derive(Debug, Clone)]
pub struct EndpointModel {
    /// The modelled platform.
    pub profile: Arc<PlatformProfile>,
    /// Pacer charging that platform's costs.
    pub pacer: Arc<Pacer>,
}

/// One direction of the pipe.
#[derive(Debug)]
struct PipeDir {
    /// Bytes currently occupying the kernel buffer.
    used: Mutex<usize>,
    space: Condvar,
    capacity: usize,
    /// Drain rate and scale, duplicated from the pair's config for the
    /// partial-write blocking model.
    drain_bytes_per_sec: Option<u64>,
    time_scale: f64,
    /// Frames waiting for the drain thread.
    inflight: Mailbox<Vec<u8>>,
    /// Frames delivered to the receiver.
    delivered: Mailbox<Vec<u8>>,
    closed: AtomicBool,
}

impl PipeDir {
    fn new(config: &PipeConfig) -> Arc<Self> {
        Arc::new(PipeDir {
            used: Mutex::new(0),
            space: Condvar::new(),
            capacity: config.buffer_bytes,
            drain_bytes_per_sec: config.drain_bytes_per_sec,
            time_scale: config.time_scale,
            inflight: Mailbox::unbounded(),
            delivered: Mailbox::unbounded(),
            closed: AtomicBool::new(false),
        })
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.space.notify_all();
    }
}

/// Drain thread: moves frames from the kernel buffer onto the "wire" at the
/// configured rate, then delivers them after the configured latency.
fn run_drain(dir: Arc<PipeDir>, config: PipeConfig) {
    loop {
        let frame = match dir.inflight.recv_timeout(Duration::from_millis(50)) {
            Ok(f) => f,
            Err(_) => {
                if dir.closed.load(Ordering::Acquire) && dir.inflight.is_empty() {
                    return;
                }
                continue;
            }
        };
        // Serialisation onto the wire at the drain rate.
        if let Some(rate) = config.drain_bytes_per_sec {
            let model = Duration::from_nanos(frame.len() as u64 * 1_000_000_000 / rate.max(1));
            let wall = model.mul_f64(config.time_scale);
            if !wall.is_zero() {
                netmodel::precise_wait(wall);
            }
        }
        // Bytes leave the kernel buffer: senders may proceed.
        {
            let mut used = dir.used.lock();
            *used = used.saturating_sub(frame.len());
            dir.space.notify_all();
        }
        // Propagation to the peer.
        let wall_latency = config.latency.mul_f64(config.time_scale);
        if !wall_latency.is_zero() {
            netmodel::precise_wait(wall_latency);
        }
        dir.delivered.send(frame);
    }
}

/// One endpoint of a modelled socket pair. Create with [`pair`] or
/// [`pair_with_models`].
#[derive(Debug)]
pub struct PipeConnection {
    tx: Arc<PipeDir>,
    rx: Arc<PipeDir>,
    model: Option<EndpointModel>,
    label: String,
}

/// Creates a connected modelled socket pair.
pub fn pair(config: PipeConfig) -> (PipeConnection, PipeConnection) {
    pair_with_models(config, None, None)
}

/// [`pair`] with per-endpoint platform cost models (endpoint `a` first).
pub fn pair_with_models(
    config: PipeConfig,
    model_a: Option<EndpointModel>,
    model_b: Option<EndpointModel>,
) -> (PipeConnection, PipeConnection) {
    assert!(config.buffer_bytes > 0, "buffer must be positive");
    let ab = PipeDir::new(&config);
    let ba = PipeDir::new(&config);
    for dir in [&ab, &ba] {
        let dir = Arc::clone(dir);
        let config = config.clone();
        std::thread::Builder::new()
            .name("pipe-drain".to_owned())
            .spawn(move || run_drain(dir, config))
            .expect("failed to spawn pipe drain thread");
    }
    (
        PipeConnection {
            tx: Arc::clone(&ab),
            rx: Arc::clone(&ba),
            model: model_a,
            label: "pipe-peer-b".to_owned(),
        },
        PipeConnection {
            tx: ba,
            rx: ab,
            model: model_b,
            label: "pipe-peer-a".to_owned(),
        },
    )
}

impl Connection for PipeConnection {
    fn caps(&self) -> Capabilities {
        Capabilities {
            interface: "PIPE",
            reliable: true,
            ordered: true,
            max_frame: MAX_FRAME,
        }
    }

    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.is_empty() {
            return Err(TransportError::Empty);
        }
        if frame.len() > MAX_FRAME {
            return Err(TransportError::TooLarge {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        if self.tx.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Sender-side protocol stack cost.
        if let Some(m) = &self.model {
            m.pacer.charge(m.profile.send_cost(frame.len()));
        }
        // Kernel buffer admission: blocks AT OS LEVEL when full — under the
        // user-level thread package this stalls every green thread, which is
        // precisely the §4.1 behaviour.
        {
            let mut used = self.tx.used.lock();
            while *used > 0 && *used + frame.len() > self.tx.capacity {
                if self.tx.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                self.tx.space.wait(&mut used);
            }
            *used += frame.len();
        }
        self.tx.inflight.send(frame.to_vec());
        // Partial-write model: a frame larger than the kernel buffer keeps
        // `write` blocked while the excess drains onto the wire (the drain
        // runs concurrently; the writer is released once all but the last
        // buffer-full has left). This is the §4.1 blocking that stalls the
        // whole process under a user-level thread package.
        if frame.len() > self.tx.capacity {
            if let Some(rate) = self.tx.drain_bytes_per_sec {
                let excess = (frame.len() - self.tx.capacity) as u64;
                let model = Duration::from_nanos(excess * 1_000_000_000 / rate.max(1));
                netmodel::precise_wait(model.mul_f64(self.tx.time_scale));
            }
        }
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        loop {
            match self.rx.delivered.recv_timeout(Duration::from_millis(50)) {
                Ok(frame) => {
                    if let Some(m) = &self.model {
                        m.pacer.charge(m.profile.recv_cost(frame.len()));
                    }
                    return Ok(frame);
                }
                Err(_) => {
                    if self.rx.closed.load(Ordering::Acquire) && self.rx.delivered.is_empty() {
                        return Err(TransportError::Closed);
                    }
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.rx.delivered.recv_timeout(timeout) {
            Ok(frame) => {
                if let Some(m) = &self.model {
                    m.pacer.charge(m.profile.recv_cost(frame.len()));
                }
                Ok(frame)
            }
            Err(_) => {
                if self.rx.closed.load(Ordering::Acquire) && self.rx.delivered.is_empty() {
                    Err(TransportError::Closed)
                } else {
                    Err(TransportError::Timeout)
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.delivered.try_recv() {
            Some(frame) => {
                if let Some(m) = &self.model {
                    m.pacer.charge(m.profile.recv_cost(frame.len()));
                }
                Ok(Some(frame))
            }
            None => {
                if self.rx.closed.load(Ordering::Acquire) {
                    Err(TransportError::Closed)
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        if self.model.is_some() {
            // Modelled endpoints charge per-frame platform stack costs
            // that must overlap the concurrent drain; batching them under
            // the buffer lock would serialise sender and drain and distort
            // the 1998 timing model. Keep the single-frame path.
            for (i, frame) in frames.iter().enumerate() {
                if let Err(e) = self.send(frame) {
                    return if i == 0 { Err(e) } else { Ok(i) };
                }
            }
            return Ok(frames.len());
        }
        let mut sent = 0;
        let mut used = self.tx.used.lock();
        // The kernel buffer is acquired once; frames are admitted back to
        // back (the scatter-gather write of the era's writev).
        for frame in frames {
            let invalid = if frame.is_empty() {
                Some(TransportError::Empty)
            } else if frame.len() > MAX_FRAME {
                Some(TransportError::TooLarge {
                    len: frame.len(),
                    max: MAX_FRAME,
                })
            } else if self.tx.closed.load(Ordering::Acquire) {
                Some(TransportError::Closed)
            } else {
                None
            };
            if let Some(e) = invalid {
                return if sent > 0 { Ok(sent) } else { Err(e) };
            }
            if frame.len() > self.tx.capacity {
                // Oversized frames keep `write` blocked while the excess
                // drains (the §4.1 model): hand them to the single-frame
                // path, outside the buffer lock.
                if sent > 0 {
                    return Ok(sent);
                }
                drop(used);
                self.send(frame)?;
                return Ok(1);
            }
            if *used > 0 && *used + frame.len() > self.tx.capacity {
                if sent > 0 {
                    // Backpressure after progress: hand the partial batch
                    // back instead of blocking (see the trait contract).
                    return Ok(sent);
                }
                while *used > 0 && *used + frame.len() > self.tx.capacity {
                    if self.tx.closed.load(Ordering::Acquire) {
                        return Err(TransportError::Closed);
                    }
                    self.tx.space.wait(&mut used);
                }
            }
            *used += frame.len();
            self.tx.inflight.send(frame.to_vec());
            sent += 1;
        }
        Ok(sent)
    }

    fn recv_many(&self, max: usize, timeout: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        // One delivery-queue acquisition drains everything pending.
        let frames = self.rx.delivered.recv_many(max, timeout);
        if frames.is_empty() {
            return if self.rx.closed.load(Ordering::Acquire) && self.rx.delivered.is_empty() {
                Err(TransportError::Closed)
            } else {
                Err(TransportError::Timeout)
            };
        }
        if let Some(m) = &self.model {
            let total: Duration = frames.iter().map(|f| m.profile.recv_cost(f.len())).sum();
            m.pacer.charge(total);
        }
        Ok(frames)
    }

    fn readiness(&self) -> Readiness {
        Readiness::Waker
    }

    fn register_waker(&self, waker: Option<Waker>) {
        self.rx.delivered.set_notify(waker);
    }

    fn close(&self) {
        self.tx.close();
        self.rx.close();
        // Wake readiness-driven consumers on both endpoints so they observe
        // the closed flags.
        self.tx.delivered.notify();
        self.rx.delivered.notify();
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

impl PipeConnection {
    /// Bytes currently occupying this endpoint's kernel send buffer.
    pub fn send_buffer_used(&self) -> usize {
        *self.tx.used.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn frames_round_trip() {
        let (a, b) = pair(PipeConfig::default());
        a.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"world").unwrap();
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn order_preserved_under_load() {
        let (a, b) = pair(PipeConfig::default());
        let t = std::thread::spawn(move || {
            for i in 0..500u32 {
                a.send(&i.to_be_bytes()).unwrap();
            }
        });
        for i in 0..500u32 {
            assert_eq!(b.recv().unwrap(), i.to_be_bytes());
        }
        t.join().unwrap();
    }

    #[test]
    fn small_sends_do_not_block_with_empty_buffer() {
        let (a, _b) = pair(PipeConfig {
            drain_bytes_per_sec: Some(1_000_000),
            ..PipeConfig::default()
        });
        let start = Instant::now();
        a.send(&vec![0u8; 1024]).unwrap();
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn full_buffer_blocks_sender_until_drained() {
        // 32 KB buffer, 1 MB/s drain: the second 32 KB send must wait
        // ~32 ms for the first to drain.
        let (a, b) = pair(PipeConfig {
            buffer_bytes: 32 * 1024,
            drain_bytes_per_sec: Some(1_000_000),
            ..PipeConfig::default()
        });
        a.send(&vec![1u8; 32 * 1024]).unwrap(); // fills the buffer
        let start = Instant::now();
        a.send(&vec![2u8; 32 * 1024]).unwrap(); // must block for the drain
        let blocked = start.elapsed();
        assert!(blocked >= Duration::from_millis(20), "blocked {blocked:?}");
        assert_eq!(b.recv().unwrap()[0], 1);
        assert_eq!(b.recv().unwrap()[0], 2);
    }

    #[test]
    fn oversized_frame_larger_than_buffer_still_passes_alone() {
        // Frames bigger than the buffer are admitted when the buffer is
        // empty (matching stream sockets, which accept partial writes).
        let (a, b) = pair(PipeConfig {
            buffer_bytes: 4 * 1024,
            ..PipeConfig::default()
        });
        a.send(&vec![7u8; 16 * 1024]).unwrap();
        assert_eq!(b.recv().unwrap().len(), 16 * 1024);
    }

    #[test]
    fn latency_is_applied() {
        let (a, b) = pair(PipeConfig {
            latency: Duration::from_millis(30),
            ..PipeConfig::default()
        });
        let start = Instant::now();
        a.send(b"delayed").unwrap();
        assert_eq!(b.recv().unwrap(), b"delayed");
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn time_scale_compresses_latency() {
        let (a, b) = pair(PipeConfig {
            latency: Duration::from_millis(100),
            time_scale: 0.1, // 10x faster than real time
            ..PipeConfig::default()
        });
        let start = Instant::now();
        a.send(b"fast").unwrap();
        assert_eq!(b.recv().unwrap(), b"fast");
        let wall = start.elapsed();
        assert!(wall >= Duration::from_millis(8), "wall {wall:?}");
        assert!(wall < Duration::from_millis(80), "wall {wall:?}");
    }

    #[test]
    fn platform_model_charges_costs() {
        let model = EndpointModel {
            profile: Arc::new(PlatformProfile::sun4()),
            pacer: Arc::new(Pacer::new(1.0)),
        };
        let (a, b) = pair_with_models(PipeConfig::default(), Some(model), None);
        let start = Instant::now();
        // SUN-4 send cost for 32 KB ~ 450 us + 32768 * 110 ns ~ 4.1 ms.
        a.send(&vec![0u8; 32 * 1024]).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(3), "elapsed {elapsed:?}");
        assert_eq!(b.recv().unwrap().len(), 32 * 1024);
    }

    #[test]
    fn send_batch_delivers_in_order() {
        let (a, b) = pair(PipeConfig::default());
        let frames: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 16]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        assert_eq!(a.send_batch(&refs).unwrap(), 20);
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap(), vec![i; 16]);
        }
    }

    #[test]
    fn send_batch_returns_partial_on_backpressure() {
        // 1 KB buffer, slow drain: the batch fills the buffer after a few
        // frames and must come back partial instead of blocking.
        let (a, b) = pair(PipeConfig {
            buffer_bytes: 1024,
            drain_bytes_per_sec: Some(10_000),
            ..PipeConfig::default()
        });
        let frames: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 512]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let start = Instant::now();
        let sent = a.send_batch(&refs).unwrap();
        assert!(
            (1..8).contains(&sent),
            "expected a partial batch, got {sent}"
        );
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "partial batch must not block"
        );
        // The remainder still goes through on retry (blocking as needed).
        let mut done = sent;
        while done < 8 {
            done += a.send_batch(&refs[done..]).unwrap();
        }
        for i in 0..8u8 {
            assert_eq!(b.recv().unwrap(), vec![i; 512]);
        }
    }

    #[test]
    fn recv_many_coalesces_delivered_frames() {
        let (a, b) = pair(PipeConfig::default());
        for i in 0..5u8 {
            a.send(&[i]).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 5 {
            got.extend(b.recv_many(8, Duration::from_secs(1)).unwrap());
        }
        assert_eq!(got, (0..5u8).map(|i| vec![i]).collect::<Vec<_>>());
    }

    #[test]
    fn close_semantics() {
        let (a, b) = pair(PipeConfig::default());
        a.send(b"final").unwrap();
        // Give the drain thread a moment to deliver before closing.
        std::thread::sleep(Duration::from_millis(30));
        a.close();
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        assert_eq!(b.recv().unwrap(), b"final");
        assert_eq!(b.try_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn recv_timeout_works() {
        let (_a, b) = pair(PipeConfig::default());
        assert_eq!(
            b.recv_timeout(Duration::from_millis(20)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn caps_reliable_ordered() {
        let (a, _b) = pair(PipeConfig::default());
        let c = a.caps();
        assert!(c.reliable && c.ordered);
        assert_eq!(c.interface, "PIPE");
    }
}
