//! [`Metered`]: a transparent [`Connection`] wrapper that counts frames
//! and bytes into [`ncs_obs`] counters.
//!
//! The counters are created in a [`Registry`](ncs_obs::Registry) labelled
//! by interface family, so every connection of one interface shares one
//! set of series (`ncs_transport_*_total{interface="ACI"}`) and the
//! per-frame cost stays at a handful of relaxed atomic adds. `ncs-core`
//! wraps every data channel it opens; the wrapper is public so bare
//! transport users can opt in too.

use std::sync::Arc;
use std::time::Duration;

use ncs_obs::{Counter, Registry};

use crate::iface::{Capabilities, Connection, Readiness, TransportError, Waker};

/// A [`Connection`] decorator counting traffic into registry counters.
#[derive(Debug, Clone)]
pub struct Metered {
    inner: Arc<dyn Connection>,
    frames_sent: Counter,
    bytes_sent: Counter,
    frames_received: Counter,
    bytes_received: Counter,
}

impl Metered {
    /// Wraps `inner`, registering (or re-using — the registry dedupes)
    /// the interface's traffic counters in `registry`.
    pub fn register(inner: Arc<dyn Connection>, registry: &Registry) -> Self {
        let interface = inner.caps().interface;
        let labels: &[(&str, &str)] = &[("interface", interface)];
        let c = |name: &str, help: &str| registry.counter(name, help, labels);
        Metered {
            inner,
            frames_sent: c(
                "ncs_transport_frames_sent_total",
                "Frames handed to the interface",
            ),
            bytes_sent: c(
                "ncs_transport_bytes_sent_total",
                "Frame bytes handed to the interface",
            ),
            frames_received: c(
                "ncs_transport_frames_received_total",
                "Frames received from the interface",
            ),
            bytes_received: c(
                "ncs_transport_bytes_received_total",
                "Frame bytes received from the interface",
            ),
        }
    }

    fn note_rx(&self, frame: &[u8]) {
        self.frames_received.inc();
        self.bytes_received.add(frame.len() as u64);
    }
}

impl Connection for Metered {
    fn caps(&self) -> Capabilities {
        self.inner.caps()
    }

    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        self.inner.send(frame)?;
        self.frames_sent.inc();
        self.bytes_sent.add(frame.len() as u64);
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        let frame = self.inner.recv()?;
        self.note_rx(&frame);
        Ok(frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let frame = self.inner.recv_timeout(timeout)?;
        self.note_rx(&frame);
        Ok(frame)
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        let frame = self.inner.try_recv()?;
        if let Some(f) = &frame {
            self.note_rx(f);
        }
        Ok(frame)
    }

    fn send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        let sent = self.inner.send_batch(frames)?;
        self.frames_sent.add(sent as u64);
        let bytes: usize = frames.iter().take(sent).map(|f| f.len()).sum();
        self.bytes_sent.add(bytes as u64);
        Ok(sent)
    }

    fn recv_many(&self, max: usize, timeout: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        let frames = self.inner.recv_many(max, timeout)?;
        self.frames_received.add(frames.len() as u64);
        let bytes: usize = frames.iter().map(|f| f.len()).sum();
        self.bytes_received.add(bytes as u64);
        Ok(frames)
    }

    fn try_send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        let sent = self.inner.try_send_batch(frames)?;
        self.frames_sent.add(sent as u64);
        let bytes: usize = frames.iter().take(sent).map(|f| f.len()).sum();
        self.bytes_sent.add(bytes as u64);
        Ok(sent)
    }

    fn readiness(&self) -> Readiness {
        self.inner.readiness()
    }

    fn register_waker(&self, waker: Option<Waker>) {
        self.inner.register_waker(waker);
    }

    fn close(&self) {
        self.inner.close();
    }

    fn peer_label(&self) -> String {
        self.inner.peer_label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_frames_and_bytes_per_interface() {
        let registry = Registry::new();
        let (a, b) = crate::hpi::pair(16);
        let a = Metered::register(Arc::new(a), &registry);
        let b = Metered::register(Arc::new(b), &registry);
        a.send(b"hello").unwrap();
        a.send_batch(&[b"ab", b"cd"]).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv_many(8, Duration::from_secs(1)).unwrap().len(), 2);
        let snap = registry.snapshot();
        // Both endpoints share the interface-labelled series.
        assert_eq!(snap.counter_total("ncs_transport_frames_sent_total"), 3);
        assert_eq!(snap.counter_total("ncs_transport_bytes_sent_total"), 9);
        assert_eq!(snap.counter_total("ncs_transport_frames_received_total"), 3);
        assert_eq!(snap.counter_total("ncs_transport_bytes_received_total"), 9);
    }
}
