//! NCS application communication interfaces.
//!
//! The paper's §2 defines three interfaces through which NCS reaches the
//! network, selectable per connection:
//!
//! * **SCI** — Socket Communication Interface ([`sci`]): real TCP sockets.
//!   Reliable and ordered (the kernel's TCP does flow/error control), so NCS
//!   bypasses its own flow-/error-control threads; maximally portable.
//! * **ACI** — ATM Communication Interface ([`aci`]): native-ATM AAL5
//!   frames over the [`atm_sim`] substrate. Unreliable (cell loss kills
//!   whole frames) and ordered; NCS supplies flow and error control —
//!   exactly the configuration the paper's §3 protocols are built for.
//! * **HPI** — High Performance Interface ([`hpi`], the paper's "Trap"
//!   interface): an in-process shared ring with no protocol stack at all.
//!   Lowest latency, drops frames on receiver overrun, so NCS flow control
//!   is needed for bulk transfers.
//!
//! A fourth transport, [`pipe`], models a 1998 kernel socket pair (bounded
//! 32 KB buffer, paced drain, platform stack costs via [`netmodel`]): it
//! stands in for "BSD socket on SunOS/AIX" in the experiments that need the
//! paper's exact buffer-pressure behaviour (Figures 9/10) and the platform
//! cost model (Figures 12/13).
//!
//! A fifth interface, [`sim`], is not a wire at all: a virtual-time
//! fabric ([`sim::SimNet`]) whose per-link latency/bandwidth/loss policies
//! feed a central event queue, used by the thousand-rank simulation
//! backend in `ncs-runtime`.
//!
//! All of them implement [`Connection`]; receive paths block through
//! [`ncs_threads::sync`] so the same protocol code runs over the user-level
//! or kernel-level thread package.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aci;
pub mod hpi;
mod iface;
mod metered;
pub mod pipe;
pub mod sci;
pub mod sim;

pub use iface::{Capabilities, Connection, Readiness, TransportError, Waker, YieldHook};
pub use metered::Metered;
