//! The [`Connection`] trait implemented by every NCS communication
//! interface.

use std::sync::Arc;
use std::time::Duration;

/// A cooperative yield callback, invoked between non-blocking polls by
/// interfaces whose natural waits are blocking system calls (SCI). The
/// paper's user-level-package receive discipline: "non-blocking system
/// calls plus `thread_yield()`".
pub type YieldHook = Arc<dyn Fn() + Send + Sync>;

/// A readiness callback installed by an event loop via
/// [`Connection::register_waker`]. The transport invokes it whenever the
/// endpoint *may* have become readable (a frame arrived, the peer closed,
/// a virtual circuit was released). Wakers must be cheap, non-blocking and
/// tolerant of spurious invocations — the reactor coalesces them.
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// How an event loop should learn that a [`Connection`] has inbound data.
///
/// Returned by [`Connection::readiness`]; drives the registration strategy
/// of `ncs-core`'s reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// The endpoint calls a registered [`Waker`] when frames arrive
    /// (in-process mailbox transports: HPI, PIPE, ACI).
    Waker,
    /// The endpoint is backed by an OS file descriptor; readiness comes
    /// from `poll(2)` on that descriptor (SCI sockets).
    #[cfg(unix)]
    Fd(std::os::fd::RawFd),
    /// No readiness signal is available; the event loop must poll
    /// [`Connection::try_recv`] periodically.
    Polling,
}

/// Static properties of a communication interface, consulted by NCS when
/// configuring a connection (e.g. SCI is reliable, so the flow-/error-
/// control threads are bypassed — paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// Interface family name ("SCI", "ACI", "HPI", "PIPE").
    pub interface: &'static str,
    /// Frames are never lost or corrupted.
    pub reliable: bool,
    /// Frames arrive in transmission order (all four interfaces here are
    /// ordered; kept explicit because NCS's go-back-N assumes it).
    pub ordered: bool,
    /// Largest frame accepted by [`Connection::send`].
    pub max_frame: usize,
}

/// Errors surfaced by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed the connection (or it was closed locally).
    Closed,
    /// A timed receive expired.
    Timeout,
    /// Frame exceeds [`Capabilities::max_frame`].
    TooLarge {
        /// Offered frame length.
        len: usize,
        /// Interface maximum.
        max: usize,
    },
    /// Empty frames cannot be sent.
    Empty,
    /// Underlying I/O failure (SCI only).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds interface maximum {max}")
            }
            TransportError::Empty => write!(f, "empty frames cannot be sent"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                TransportError::Timeout
            }
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionAborted => TransportError::Closed,
            _ => TransportError::Io(e.to_string()),
        }
    }
}

/// A frame-oriented, bidirectional transport endpoint.
///
/// Implementations differ in reliability and cost (see [`Capabilities`]);
/// NCS composes its flow-/error-control threads on top accordingly.
///
/// # Batching contract
///
/// [`Connection::send_batch`] and [`Connection::recv_many`] move several
/// frames per transport acquisition. Every implementation — default or
/// overridden — upholds the same contract:
///
/// * **Ordering is preserved.** Frames of a batch are transmitted, and
///   delivered to the peer, in slice order; frames returned by `recv_many`
///   are in arrival order. Interleaving batched and single-frame calls
///   never reorders.
/// * **Partial batches on backpressure.** `send_batch` may accept only a
///   prefix of the batch: when the transport would block (full kernel
///   buffer, exhausted ring) after at least one frame went out, it returns
///   the count sent instead of blocking; the caller retries the remainder.
///   It blocks (exactly like [`Connection::send`]) only when the *first*
///   frame cannot be accepted. Likewise `recv_many` returns as soon as the
///   receive queue empties — between 1 and `max` frames — rather than
///   waiting to fill `max`.
/// * **Equivalent semantics.** A batch behaves like the same frames sent
///   through repeated [`Connection::send`] calls: per-frame validation,
///   loss behaviour (e.g. HPI overruns) and close handling are unchanged.
pub trait Connection: Send + Sync + std::fmt::Debug {
    /// The interface's static properties.
    fn caps(&self) -> Capabilities;

    /// Transmits one frame. May block (SCI with a full kernel buffer —
    /// which, under the user-level thread package, stalls the whole
    /// process, the effect measured in Figure 10).
    ///
    /// # Errors
    ///
    /// [`TransportError::TooLarge`]/[`TransportError::Empty`] for invalid
    /// frames, [`TransportError::Closed`] after either side closed.
    fn send(&self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once the peer closed and all queued
    /// frames were drained.
    fn recv(&self) -> Result<Vec<u8>, TransportError>;

    /// Receives with a deadline.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrived in time, otherwise as
    /// [`Connection::recv`].
    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError>;

    /// Non-blocking receive; `Ok(None)` when no frame is queued.
    ///
    /// # Errors
    ///
    /// As [`Connection::recv`].
    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Transmits a batch of frames in order, returning how many were
    /// accepted (see the trait-level batching contract). The default
    /// implementation loops [`Connection::send`]; interfaces with a
    /// coalescible ring or kernel buffer (HPI, PIPE, ACI) override it to
    /// acquire that resource once per batch.
    ///
    /// # Errors
    ///
    /// Errors only when **no** frame of the batch was accepted, with the
    /// same errors as [`Connection::send`]. After a partial batch the
    /// failure resurfaces on the next call.
    fn send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        for (i, frame) in frames.iter().enumerate() {
            if let Err(e) = self.send(frame) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
        }
        Ok(frames.len())
    }

    /// Receives up to `max` frames: blocks until at least one arrives (or
    /// `timeout` expires), then drains whatever else is already queued.
    /// The default implementation combines [`Connection::recv_timeout`]
    /// with [`Connection::try_recv`]; queue-backed interfaces override it
    /// to drain under a single queue acquisition.
    ///
    /// # Errors
    ///
    /// As [`Connection::recv_timeout`] when no frame arrived at all; a
    /// non-empty partial batch is returned even if the connection fails
    /// mid-drain (the failure resurfaces on the next call).
    fn recv_many(&self, max: usize, timeout: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let first = self.recv_timeout(timeout)?;
        let mut out = vec![first];
        while out.len() < max {
            match self.try_recv() {
                Ok(Some(frame)) => out.push(frame),
                Ok(None) | Err(_) => break,
            }
        }
        Ok(out)
    }

    /// Non-blocking batch transmit: accepts as many frames as the
    /// transport can take *right now* and returns the count, `Ok(0)` when
    /// the first frame would block. Never blocks the caller. The default
    /// implementation delegates to [`Connection::send_batch`], which is
    /// correct for transports whose "blocking" resolves without help from
    /// the calling thread (HPI rings never block; PIPE's modeled kernel
    /// buffer is drained by its own pacing thread). Transports whose sends
    /// can block on the *peer* making progress (SCI kernel sockets)
    /// override this so a shared event loop is never wedged.
    ///
    /// # Errors
    ///
    /// As [`Connection::send_batch`]; a would-block first frame is `Ok(0)`,
    /// not an error.
    fn try_send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        self.send_batch(frames)
    }

    /// How an event loop should wait for inbound frames on this endpoint.
    /// The default is [`Readiness::Polling`].
    fn readiness(&self) -> Readiness {
        Readiness::Polling
    }

    /// Installs (or with `None`, removes) a readiness [`Waker`]. Endpoints
    /// reporting [`Readiness::Waker`] invoke it on every frame arrival and
    /// on close; [`Readiness::Fd`] endpoints invoke it on close only (frame
    /// arrival is visible through `poll(2)`). The default implementation
    /// ignores the waker — matching [`Readiness::Polling`].
    fn register_waker(&self, _waker: Option<Waker>) {}

    /// Closes the connection. Idempotent. Queued inbound frames remain
    /// receivable; subsequent sends fail with [`TransportError::Closed`].
    fn close(&self);

    /// Diagnostic label of the remote endpoint.
    fn peer_label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_mapping() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            TransportError::from(Error::new(ErrorKind::TimedOut, "t")),
            TransportError::Timeout
        );
        assert_eq!(
            TransportError::from(Error::new(ErrorKind::BrokenPipe, "b")),
            TransportError::Closed
        );
        assert!(matches!(
            TransportError::from(Error::other("x")),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn display_messages() {
        assert!(TransportError::TooLarge { len: 10, max: 5 }
            .to_string()
            .contains("10"));
        assert!(!TransportError::Closed.to_string().is_empty());
    }
}
