//! ACI — the ATM Communication Interface: AAL5 virtual circuits over the
//! simulated ATM network.
//!
//! ACI connections are **unreliable**: a lost or corrupted cell discards the
//! whole AAL5 frame (surfaced only in [`AciConnection::frame_errors`] — the
//! receiving application simply never sees the frame, exactly like a real
//! native-ATM API). They are ordered and limited to 64 KB frames. This is
//! the interface NCS's flow-/error-control threads are designed for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atm_sim::{
    AtmError, ConnId, DeliverySink, NetEvent, Network, NodeId, PumpConfig, QosParams, RealTimePump,
    SetupTicket,
};
use ncs_threads::sync::{Event, Mailbox};
use parking_lot::Mutex;

use crate::iface::{Capabilities, Connection, Readiness, TransportError, Waker};

/// Largest AAL5 frame.
pub const MAX_FRAME: usize = atm_sim::aal5::MAX_FRAME;

/// Inbound state of one ACI connection endpoint.
#[derive(Debug)]
struct ConnBox {
    frames: Mailbox<Vec<u8>>,
    frame_errors: AtomicU64,
    released: AtomicBool,
}

impl ConnBox {
    fn new() -> Arc<Self> {
        Arc::new(ConnBox {
            frames: Mailbox::unbounded(),
            frame_errors: AtomicU64::new(0),
            released: AtomicBool::new(false),
        })
    }
}

/// An incoming VC waiting to be accepted.
#[derive(Debug)]
struct Incoming {
    conn: ConnId,
    peer: NodeId,
    qos: QosParams,
}

#[derive(Debug, Default)]
struct HostReg {
    incoming: Mailbox<Incoming>,
    conns: Mutex<HashMap<ConnId, Arc<ConnBox>>>,
}

#[derive(Debug)]
struct PendingSetup {
    done: Event,
    result: Mutex<Option<(NodeId, ConnId, NodeId, ConnId)>>,
}

/// Shared state dispatching pump events to per-connection queues.
#[derive(Debug, Default)]
struct Registry {
    hosts: Mutex<HashMap<NodeId, Arc<HostReg>>>,
    setups: Mutex<HashMap<SetupTicket, Arc<PendingSetup>>>,
}

impl Registry {
    fn host(&self, id: NodeId) -> Arc<HostReg> {
        Arc::clone(
            self.hosts
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(HostReg::default())),
        )
    }
}

impl DeliverySink for Registry {
    fn deliver(&self, event: NetEvent) {
        match event {
            NetEvent::Frame {
                host, conn, frame, ..
            } => {
                let reg = self.host(host);
                let boxes = reg.conns.lock();
                if let Some(b) = boxes.get(&conn) {
                    b.frames.send(frame);
                }
            }
            NetEvent::FrameError { host, conn, .. } => {
                let reg = self.host(host);
                let boxes = reg.conns.lock();
                if let Some(b) = boxes.get(&conn) {
                    b.frame_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            NetEvent::IncomingVc {
                host,
                conn,
                peer,
                qos,
                ..
            } => {
                let reg = self.host(host);
                reg.conns.lock().insert(conn, ConnBox::new());
                reg.incoming.send(Incoming { conn, peer, qos });
            }
            NetEvent::VcEstablished {
                ticket,
                host,
                conn,
                peer,
                peer_conn,
                ..
            } => {
                let reg = self.host(host);
                reg.conns.lock().insert(conn, ConnBox::new());
                let pending = self.setups.lock().remove(&ticket);
                if let Some(p) = pending {
                    *p.result.lock() = Some((host, conn, peer, peer_conn));
                    p.done.fire();
                }
            }
            NetEvent::VcReleased { host, conn, .. } => {
                let reg = self.host(host);
                let boxes = reg.conns.lock();
                if let Some(b) = boxes.get(&conn) {
                    b.released.store(true, Ordering::Release);
                    // No frame will follow the release; wake readiness-
                    // driven consumers so they observe the flag.
                    b.frames.notify();
                }
            }
        }
    }
}

/// The ATM fabric: owns the real-time pump and dispatches its events.
/// Obtain per-host [`AciDevice`]s via [`AciFabric::device`].
#[derive(Debug)]
pub struct AciFabric {
    pump: Arc<RealTimePump>,
    registry: Arc<Registry>,
}

impl AciFabric {
    /// Starts the fabric over a built [`Network`].
    pub fn start(net: Network, config: PumpConfig) -> Arc<Self> {
        let pump = RealTimePump::start(net, config);
        let registry = Arc::new(Registry::default());
        pump.set_sink(Arc::clone(&registry) as Arc<dyn DeliverySink>);
        Arc::new(AciFabric { pump, registry })
    }

    /// The adapter of host `name`.
    ///
    /// # Errors
    ///
    /// Fails if no such host exists.
    pub fn device(self: &Arc<Self>, name: &str) -> Result<AciDevice, TransportError> {
        let host = self
            .pump
            .node_id(name)
            .ok_or_else(|| TransportError::Io(format!("unknown ATM host '{name}'")))?;
        // Materialise the registry entry so incoming VCs are queued even
        // before the first accept.
        let _ = self.registry.host(host);
        Ok(AciDevice {
            fabric: Arc::clone(self),
            host,
            name: name.to_owned(),
        })
    }

    /// Network statistics (cells sent/lost, frames delivered/failed, ...).
    pub fn stats(&self) -> atm_sim::NetStats {
        self.pump.stats()
    }

    /// Stops the underlying pump.
    pub fn shutdown(&self) {
        self.pump.shutdown();
    }
}

/// A host's ATM adapter: connect to peers or accept incoming VCs.
#[derive(Debug)]
pub struct AciDevice {
    fabric: Arc<AciFabric>,
    host: NodeId,
    name: String,
}

impl AciDevice {
    /// The host name this adapter belongs to.
    pub fn host_name(&self) -> &str {
        &self.name
    }

    /// Opens a VC to `peer` with the given QoS, blocking until signaling
    /// completes (10 s limit).
    ///
    /// # Errors
    ///
    /// Fails on unknown peers, unroutable topologies or signaling timeout.
    pub fn connect(&self, peer: &str, qos: QosParams) -> Result<AciConnection, TransportError> {
        let peer_id = self
            .fabric
            .pump
            .node_id(peer)
            .ok_or_else(|| TransportError::Io(format!("unknown ATM host '{peer}'")))?;
        let pending = Arc::new(PendingSetup {
            done: Event::new(),
            result: Mutex::new(None),
        });
        let ticket = {
            // Register the waiter before launching setup so the completion
            // cannot race past us.
            let mut setups = self.fabric.registry.setups.lock();
            let ticket = self
                .fabric
                .pump
                .open_vc(self.host, peer_id, qos)
                .map_err(map_atm)?;
            setups.insert(ticket, Arc::clone(&pending));
            ticket
        };
        if !pending.done.wait_timeout(Duration::from_secs(10)) {
            self.fabric.registry.setups.lock().remove(&ticket);
            return Err(TransportError::Timeout);
        }
        let (host, conn, _peer, _peer_conn) = pending
            .result
            .lock()
            .take()
            .expect("fired setup has result");
        let boxed = self
            .fabric
            .registry
            .host(host)
            .conns
            .lock()
            .get(&conn)
            .cloned()
            .expect("established conn has a box");
        Ok(AciConnection {
            fabric: Arc::clone(&self.fabric),
            host,
            conn,
            inbound: boxed,
            label: format!("aci:{peer}"),
        })
    }

    /// Accepts the next incoming VC, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if none arrived.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<AciConnection, TransportError> {
        let reg = self.fabric.registry.host(self.host);
        let inc = reg
            .incoming
            .recv_timeout(timeout)
            .map_err(|_| TransportError::Timeout)?;
        let boxed = reg
            .conns
            .lock()
            .get(&inc.conn)
            .cloned()
            .expect("incoming conn has a box");
        let peer_name = format!("node-{}", inc.peer.as_raw());
        let _ = inc.qos; // currently informational to the acceptor
        Ok(AciConnection {
            fabric: Arc::clone(&self.fabric),
            host: self.host,
            conn: inc.conn,
            inbound: boxed,
            label: format!("aci:{peer_name}"),
        })
    }

    /// Accepts the next incoming VC (60 s limit).
    ///
    /// # Errors
    ///
    /// As [`AciDevice::accept_timeout`].
    pub fn accept(&self) -> Result<AciConnection, TransportError> {
        self.accept_timeout(Duration::from_secs(60))
    }
}

fn map_atm(e: AtmError) -> TransportError {
    TransportError::Io(e.to_string())
}

/// One endpoint of an AAL5 virtual circuit.
#[derive(Debug)]
pub struct AciConnection {
    fabric: Arc<AciFabric>,
    host: NodeId,
    conn: ConnId,
    inbound: Arc<ConnBox>,
    label: String,
}

impl AciConnection {
    /// Frames lost to cell loss/corruption on this connection (receiver
    /// side). NCS's error control turns these into retransmissions.
    pub fn frame_errors(&self) -> u64 {
        self.inbound.frame_errors.load(Ordering::Relaxed)
    }

    /// Per-connection traffic statistics from the network.
    pub fn stats(&self) -> Option<atm_sim::ConnStats> {
        self.fabric.pump.conn_stats(self.host, self.conn)
    }
}

impl Connection for AciConnection {
    fn caps(&self) -> Capabilities {
        Capabilities {
            interface: "ACI",
            reliable: false,
            ordered: true,
            max_frame: MAX_FRAME,
        }
    }

    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.is_empty() {
            return Err(TransportError::Empty);
        }
        if frame.len() > MAX_FRAME {
            return Err(TransportError::TooLarge {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        if self.inbound.released.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        self.fabric
            .pump
            .send_frame(self.host, self.conn, frame.to_vec())
            .map_err(|e| match e {
                AtmError::NotActive(_) => TransportError::Closed,
                other => map_atm(other),
            })
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        loop {
            match self.inbound.frames.recv_timeout(Duration::from_millis(50)) {
                Ok(f) => return Ok(f),
                Err(_) => {
                    if self.inbound.released.load(Ordering::Acquire)
                        && self.inbound.frames.is_empty()
                    {
                        return Err(TransportError::Closed);
                    }
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.inbound.frames.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(_) => {
                if self.inbound.released.load(Ordering::Acquire) && self.inbound.frames.is_empty() {
                    Err(TransportError::Closed)
                } else {
                    Err(TransportError::Timeout)
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.inbound.frames.try_recv() {
            Some(f) => Ok(Some(f)),
            None => {
                if self.inbound.released.load(Ordering::Acquire) {
                    Err(TransportError::Closed)
                } else {
                    Ok(None)
                }
            }
        }
    }

    // `send_batch` keeps the trait default: cells are the ATM network's
    // transmission unit, so there is no sender-side buffer to coalesce
    // frame admissions into. The receive side, below, does coalesce.

    fn recv_many(&self, max: usize, timeout: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        // One delivery-queue acquisition drains every reassembled frame.
        let frames = self.inbound.frames.recv_many(max, timeout);
        if frames.is_empty() {
            if self.inbound.released.load(Ordering::Acquire) && self.inbound.frames.is_empty() {
                Err(TransportError::Closed)
            } else {
                Err(TransportError::Timeout)
            }
        } else {
            Ok(frames)
        }
    }

    fn readiness(&self) -> Readiness {
        Readiness::Waker
    }

    fn register_waker(&self, waker: Option<Waker>) {
        self.inbound.frames.set_notify(waker);
    }

    fn close(&self) {
        self.inbound.released.store(true, Ordering::Release);
        let _ = self.fabric.pump.close_vc(self.host, self.conn);
        self.inbound.frames.notify();
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_sim::{LinkSpec, NetworkBuilder};

    fn fabric() -> Arc<AciFabric> {
        let net = NetworkBuilder::new()
            .host("a")
            .host("b")
            .switch("sw")
            .link("a", "sw", LinkSpec::oc3())
            .link("b", "sw", LinkSpec::oc3())
            .build()
            .unwrap();
        AciFabric::start(net, PumpConfig::default())
    }

    #[test]
    fn connect_accept_and_exchange() {
        let fab = fabric();
        let dev_a = fab.device("a").unwrap();
        let dev_b = fab.device("b").unwrap();
        let t = std::thread::spawn(move || dev_b.accept().unwrap());
        let conn_a = dev_a.connect("b", QosParams::unspecified()).unwrap();
        let conn_b = t.join().unwrap();

        conn_a.send(b"over atm").unwrap();
        assert_eq!(conn_b.recv().unwrap(), b"over atm");
        conn_b.send(b"echoed").unwrap();
        assert_eq!(conn_a.recv().unwrap(), b"echoed");
        fab.shutdown();
    }

    #[test]
    fn batched_send_and_recv_many_preserve_order() {
        let fab = fabric();
        let dev_a = fab.device("a").unwrap();
        let dev_b = fab.device("b").unwrap();
        let t = std::thread::spawn(move || dev_b.accept().unwrap());
        let conn_a = dev_a.connect("b", QosParams::unspecified()).unwrap();
        let conn_b = t.join().unwrap();
        let frames: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 100]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        assert_eq!(conn_a.send_batch(&refs).unwrap(), 5);
        let mut got = Vec::new();
        while got.len() < 5 {
            got.extend(conn_b.recv_many(8, Duration::from_secs(5)).unwrap());
        }
        assert_eq!(got, frames);
        fab.shutdown();
    }

    #[test]
    fn unknown_host_fails() {
        let fab = fabric();
        assert!(fab.device("ghost").is_err());
        let dev = fab.device("a").unwrap();
        assert!(dev.connect("ghost", QosParams::unspecified()).is_err());
        fab.shutdown();
    }

    #[test]
    fn accept_timeout_expires() {
        let fab = fabric();
        let dev = fab.device("a").unwrap();
        assert!(matches!(
            dev.accept_timeout(Duration::from_millis(50)),
            Err(TransportError::Timeout)
        ));
        fab.shutdown();
    }

    #[test]
    fn caps_are_unreliable_ordered_64k() {
        let fab = fabric();
        let dev_a = fab.device("a").unwrap();
        let dev_b = fab.device("b").unwrap();
        let t = std::thread::spawn(move || dev_b.accept().unwrap());
        let conn = dev_a.connect("b", QosParams::unspecified()).unwrap();
        t.join().unwrap();
        let caps = conn.caps();
        assert!(!caps.reliable);
        assert!(caps.ordered);
        assert_eq!(caps.max_frame, 65_535);
        fab.shutdown();
    }

    #[test]
    fn close_releases_vc() {
        let fab = fabric();
        let dev_a = fab.device("a").unwrap();
        let dev_b = fab.device("b").unwrap();
        let t = std::thread::spawn(move || dev_b.accept().unwrap());
        let conn_a = dev_a.connect("b", QosParams::unspecified()).unwrap();
        let conn_b = t.join().unwrap();
        conn_a.close();
        assert!(conn_a.send(b"x").is_err());
        // The peer eventually observes the release.
        let mut released = false;
        for _ in 0..100 {
            match conn_b.try_recv() {
                Err(TransportError::Closed) => {
                    released = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(released, "peer never saw the release");
        fab.shutdown();
    }
}
