//! SIM — the simulated network interface.
//!
//! A [`SimNet`] is an in-process network fabric under **virtual time**:
//! frames sent through a [`SimConnection`] do not appear at the peer until
//! a driver advances the fabric clock past their computed arrival time.
//! Arrival times come from a per-direction [`LinkPolicy`] — propagation
//! latency, seeded jitter, serialisation at a configured bandwidth (frames
//! queue behind one another exactly as on a real wire), probabilistic loss
//! (the [`atm_sim::FaultSpec`] machinery) and probabilistic reordering.
//!
//! The fabric is the simulation backend's data plane: `ncs-runtime`'s
//! `SimSession` meshes ordinary NCS nodes over SIM channels and runs a
//! pump thread that advances the fabric and the nodes' shared
//! `VirtualClock` in lockstep. Chaos scenarios drive the same knobs
//! mid-flight: [`SimNet::set_link_up`] black-holes a direction (partition,
//! flapping peer), [`SimNet::set_policy`] degrades it (slow link).
//!
//! Everything random is seeded. Two fabrics built with the same seed and
//! the same sequence of sends observe frame for frame the same drops,
//! jitter draws and arrival order — the determinism contract that makes
//! chaos scenarios reproducible from a CI seed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atm_sim::SimTime;
use ncs_threads::sync::Mailbox;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::iface::{Capabilities, Connection, Readiness, TransportError, Waker};

/// Largest frame SIM accepts (matches HPI: an NCS packet with a 64 KB SDU).
pub const MAX_FRAME: usize = 128 * 1024;

/// Shaping and fault model for one link **direction**.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPolicy {
    /// Propagation delay added to every frame.
    pub latency: Duration,
    /// Jitter bound: each frame gets a seeded uniform draw from
    /// `[0, jitter]` on top of `latency`.
    pub jitter: Duration,
    /// Wire rate in bits per second; `0` means infinite (no serialisation
    /// delay, no queueing). Frames serialise one after another, so a burst
    /// queues behind the link's `busy_until` horizon.
    pub bandwidth_bps: u64,
    /// Probability that a frame is silently dropped.
    pub loss: f64,
    /// Probability that a frame is held back by one extra `latency`,
    /// letting later frames overtake it.
    pub reorder: f64,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        Self::ideal()
    }
}

impl LinkPolicy {
    /// A perfect link: zero latency, infinite bandwidth, no faults.
    pub fn ideal() -> Self {
        LinkPolicy {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bps: 0,
            loss: 0.0,
            reorder: 0.0,
        }
    }

    /// A campus LAN: 50 µs latency, 1 Gb/s, no faults.
    pub fn lan() -> Self {
        LinkPolicy {
            latency: Duration::from_micros(50),
            jitter: Duration::from_micros(5),
            bandwidth_bps: 1_000_000_000,
            loss: 0.0,
            reorder: 0.0,
        }
    }

    /// A lossy WAN hop: 10 ms latency, 2 ms jitter, 100 Mb/s.
    pub fn wan() -> Self {
        LinkPolicy {
            latency: Duration::from_millis(10),
            jitter: Duration::from_millis(2),
            bandwidth_bps: 100_000_000,
            loss: 0.0,
            reorder: 0.0,
        }
    }

    /// This policy with frame loss probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.loss = p;
        self
    }

    /// This policy with reorder probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_reorder(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.reorder = p;
        self
    }

    /// Whether this policy can randomise anything (needs an RNG draw).
    fn is_random(&self) -> bool {
        self.loss > 0.0 || self.reorder > 0.0 || self.jitter > Duration::ZERO
    }
}

/// Identifies one [`SimNet`] link (a [`SimNet::pair`] call). Direction 0 is
/// first-endpoint → second, direction 1 the reverse.
pub type LinkId = u64;

/// A frame in flight: ordered by `(due, seq)` so ties break in send order —
/// the heap pop order is a pure function of the send sequence and the
/// seeded draws.
#[derive(Debug, PartialEq, Eq)]
struct InFlight {
    due: SimTime,
    seq: u64,
    link: LinkId,
    dir: usize,
    frame: Vec<u8>,
    /// A close marker: delivery shuts the destination inbox instead of
    /// handing over a frame. Rides the wire like data so it arrives
    /// *after* everything sent before it (FIN after data, never before).
    close: bool,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One direction of one link: its policy, fault RNG, wire horizon and the
/// receive queue of the destination endpoint.
#[derive(Debug)]
struct DirState {
    policy: LinkPolicy,
    rng: StdRng,
    up: bool,
    /// Virtual time until which the wire is serialising earlier frames.
    busy_until: SimTime,
    /// Arrival time of the last in-order frame: jitter stretches gaps but
    /// never reorders — only the explicit `reorder` policy overtakes.
    last_due: SimTime,
    /// Destination endpoint's receive queue (shared with the endpoint).
    inbox: Arc<Inbox>,
}

#[derive(Debug)]
struct Inbox {
    queue: Mailbox<Vec<u8>>,
    closed: AtomicBool,
}

#[derive(Debug)]
struct NetInner {
    now: SimTime,
    next_seq: u64,
    next_link: LinkId,
    queue: BinaryHeap<Reverse<InFlight>>,
    /// `links[id] = [a→b state, b→a state]`.
    links: HashMap<LinkId, [DirState; 2]>,
}

/// The simulated fabric: a virtual-time event queue shared by every
/// [`SimConnection`] pair created through it.
#[derive(Debug)]
pub struct SimNet {
    seed: u64,
    inner: Mutex<NetInner>,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// SplitMix64 — derives per-direction RNG seeds from `(net seed, link,
/// dir)` so adding a link never perturbs the draws of existing links.
fn mix_seed(seed: u64, link: LinkId, dir: u64) -> u64 {
    let mut z = seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (dir << 1 | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimNet {
    /// A fabric whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(SimNet {
            seed,
            inner: Mutex::new(NetInner {
                now: SimTime::ZERO,
                next_seq: 0,
                next_link: 0,
                queue: BinaryHeap::new(),
                links: HashMap::new(),
            }),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Creates a connected endpoint pair with per-direction policies
    /// (`policy_ab` shapes frames from the first returned endpoint to the
    /// second). The pair's [`LinkId`] addresses later chaos calls.
    pub fn pair(
        self: &Arc<Self>,
        policy_ab: LinkPolicy,
        policy_ba: LinkPolicy,
    ) -> (SimConnection, SimConnection) {
        let a_inbox = Arc::new(Inbox {
            queue: Mailbox::unbounded(),
            closed: AtomicBool::new(false),
        });
        let b_inbox = Arc::new(Inbox {
            queue: Mailbox::unbounded(),
            closed: AtomicBool::new(false),
        });
        let mut inner = self.inner.lock();
        let link = inner.next_link;
        inner.next_link += 1;
        let dirs = [
            DirState {
                rng: StdRng::seed_from_u64(mix_seed(self.seed, link, 0)),
                policy: policy_ab,
                up: true,
                busy_until: SimTime::ZERO,
                last_due: SimTime::ZERO,
                inbox: Arc::clone(&b_inbox),
            },
            DirState {
                rng: StdRng::seed_from_u64(mix_seed(self.seed, link, 1)),
                policy: policy_ba,
                up: true,
                busy_until: SimTime::ZERO,
                last_due: SimTime::ZERO,
                inbox: Arc::clone(&a_inbox),
            },
        ];
        inner.links.insert(link, dirs);
        drop(inner);
        (
            SimConnection {
                net: Arc::clone(self),
                link,
                dir_out: 0,
                rx: Arc::clone(&a_inbox),
                tx: Arc::clone(&b_inbox),
            },
            SimConnection {
                net: Arc::clone(self),
                link,
                dir_out: 1,
                rx: b_inbox,
                tx: a_inbox,
            },
        )
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// Arrival time of the earliest in-flight frame, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.inner.lock().queue.peek().map(|Reverse(f)| f.due)
    }

    /// Advances virtual time to `t` (monotonic: earlier targets are a
    /// no-op), delivering every frame due on the way, in `(due, seq)`
    /// order. Returns the number of frames delivered.
    pub fn advance_to(&self, t: SimTime) -> usize {
        let mut delivered = 0;
        let mut inner = self.inner.lock();
        if t > inner.now {
            inner.now = t;
        }
        while inner
            .queue
            .peek()
            .is_some_and(|Reverse(f)| f.due <= inner.now)
        {
            let Reverse(f) = inner.queue.pop().expect("peeked");
            if let Some(dirs) = inner.links.get(&f.link) {
                let inbox = &dirs[f.dir].inbox;
                if f.close {
                    inbox.closed.store(true, Ordering::Release);
                    inbox.queue.notify();
                } else if !inbox.closed.load(Ordering::Acquire) {
                    inbox.queue.send(f.frame);
                    delivered += 1;
                }
            }
        }
        drop(inner);
        self.delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }

    /// Advances to the next in-flight arrival and delivers it (plus any
    /// ties). Returns the new virtual time, or `None` if nothing is in
    /// flight.
    pub fn step(&self) -> Option<SimTime> {
        let due = self.next_due()?;
        self.advance_to(due);
        Some(due)
    }

    /// Raises or black-holes one direction of `link`. A downed direction
    /// silently drops every frame sent through it — the partition /
    /// flapping-peer chaos primitive. Frames already in flight still
    /// arrive (they left the interface before the cut).
    pub fn set_link_up(&self, link: LinkId, dir: usize, up: bool) {
        if let Some(dirs) = self.inner.lock().links.get_mut(&link) {
            dirs[dir].up = up;
        }
    }

    /// Replaces the shaping policy of one direction of `link` mid-flight
    /// (the slow-link chaos primitive). The direction's fault RNG keeps
    /// its stream — determinism is unaffected.
    pub fn set_policy(&self, link: LinkId, dir: usize, policy: LinkPolicy) {
        if let Some(dirs) = self.inner.lock().links.get_mut(&link) {
            dirs[dir].policy = policy;
        }
    }

    /// Frames delivered to endpoints so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Frames dropped so far (loss draws plus downed directions).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().queue.len()
    }

    fn transmit(&self, link: LinkId, dir: usize, frame: &[u8]) {
        let mut inner = self.inner.lock();
        let now = inner.now;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let Some(dirs) = inner.links.get_mut(&link) else {
            return;
        };
        let d = &mut dirs[dir];
        if !d.up {
            drop(inner);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Seeded draws happen in send order under the fabric lock, so the
        // RNG stream consumed by a direction is a function of its frame
        // sequence alone.
        let (lost, jitter, reordered) = if d.policy.is_random() {
            let lost = d.policy.loss > 0.0 && d.rng.gen_bool(d.policy.loss);
            let jitter = if d.policy.jitter > Duration::ZERO {
                let bound = d.policy.jitter.as_nanos() as u64;
                Duration::from_nanos(d.rng.gen_range(0..bound + 1))
            } else {
                Duration::ZERO
            };
            let reordered = d.policy.reorder > 0.0 && d.rng.gen_bool(d.policy.reorder);
            (lost, jitter, reordered)
        } else {
            (false, Duration::ZERO, false)
        };
        if lost {
            drop(inner);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Serialisation: the frame occupies the wire after every earlier
        // frame of this direction has left it.
        let start = d.busy_until.max(now);
        let wire = if d.policy.bandwidth_bps > 0 {
            atm_sim::time::tx_time(frame.len(), d.policy.bandwidth_bps)
        } else {
            Duration::ZERO
        };
        d.busy_until = start + wire;
        let mut due = start + wire + d.policy.latency + jitter;
        if reordered {
            // Held back past its successors; `last_due` stays put so they
            // may overtake it.
            due = due.max(d.last_due) + d.policy.latency.max(Duration::from_micros(1));
        } else {
            // Jitter stretches inter-frame gaps but never flips delivery
            // order on one direction (a single-path wire is FIFO).
            due = due.max(d.last_due);
            d.last_due = due;
        }
        inner.queue.push(Reverse(InFlight {
            due,
            seq,
            link,
            dir,
            frame: frame.to_vec(),
            close: false,
        }));
    }

    /// Schedules a close marker on `(link, dir)`: the destination inbox
    /// shuts when the marker arrives, after every frame sent before it
    /// (graceful FIFO close). Markers ignore loss and downed directions —
    /// teardown must not wedge a world — but still pay the link latency.
    fn transmit_close(&self, link: LinkId, dir: usize) {
        let mut inner = self.inner.lock();
        let now = inner.now;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let Some(dirs) = inner.links.get_mut(&link) else {
            return;
        };
        let d = &mut dirs[dir];
        let mut due = d.busy_until.max(now) + d.policy.latency;
        due = due.max(d.last_due);
        d.last_due = due;
        inner.queue.push(Reverse(InFlight {
            due,
            seq,
            link,
            dir,
            frame: Vec::new(),
            close: true,
        }));
    }
}

/// One endpoint of a [`SimNet`] link.
#[derive(Debug)]
pub struct SimConnection {
    net: Arc<SimNet>,
    link: LinkId,
    dir_out: usize,
    rx: Arc<Inbox>,
    tx: Arc<Inbox>,
}

impl SimConnection {
    /// The link this endpoint belongs to (for chaos calls).
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// This endpoint's outbound direction index on the link.
    pub fn dir_out(&self) -> usize {
        self.dir_out
    }

    /// The fabric this endpoint transmits through.
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }
}

impl Connection for SimConnection {
    fn caps(&self) -> Capabilities {
        Capabilities {
            interface: "SIM",
            reliable: false, // loss and partitions drop frames silently
            ordered: false,  // reorder policies overtake
            max_frame: MAX_FRAME,
        }
    }

    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.is_empty() {
            return Err(TransportError::Empty);
        }
        if frame.len() > MAX_FRAME {
            return Err(TransportError::TooLarge {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        if self.rx.closed.load(Ordering::Acquire) || self.tx.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        self.net.transmit(self.link, self.dir_out, frame);
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        loop {
            match self.rx.queue.recv_timeout(Duration::from_millis(50)) {
                Ok(frame) => return Ok(frame),
                Err(_) => {
                    if self.rx.closed.load(Ordering::Acquire) && self.rx.queue.is_empty() {
                        return Err(TransportError::Closed);
                    }
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.rx.queue.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(_) => {
                if self.rx.closed.load(Ordering::Acquire) && self.rx.queue.is_empty() {
                    Err(TransportError::Closed)
                } else {
                    Err(TransportError::Timeout)
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.queue.try_recv() {
            Some(frame) => Ok(Some(frame)),
            None => {
                if self.rx.closed.load(Ordering::Acquire) {
                    Err(TransportError::Closed)
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn readiness(&self) -> Readiness {
        Readiness::Waker
    }

    fn register_waker(&self, waker: Option<Waker>) {
        self.rx.queue.set_notify(waker);
    }

    fn close(&self) {
        // Shut our own inbox at once (local sends and receives fail fast),
        // but tell the peer through the wire: the close marker queues
        // behind every frame already sent, so the peer drains our final
        // frames before seeing `Closed` — never the other way round.
        self.rx.closed.store(true, Ordering::Release);
        self.rx.queue.notify();
        self.net.transmit_close(self.link, self.dir_out);
    }

    fn peer_label(&self) -> String {
        format!("sim-link-{}-dir-{}", self.link, self.dir_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_arrives_until_time_advances() {
        let net = SimNet::new(1);
        let (a, b) = net.pair(LinkPolicy::lan(), LinkPolicy::lan());
        a.send(b"hello").unwrap();
        assert_eq!(b.try_recv(), Ok(None));
        assert_eq!(net.in_flight(), 1);
        net.advance_to(SimTime::from_millis(1));
        assert_eq!(b.try_recv(), Ok(Some(b"hello".to_vec())));
    }

    #[test]
    fn latency_controls_arrival_time() {
        let net = SimNet::new(1);
        let policy = LinkPolicy {
            latency: Duration::from_micros(100),
            ..LinkPolicy::ideal()
        };
        let (a, b) = net.pair(policy, LinkPolicy::ideal());
        a.send(b"x").unwrap();
        assert_eq!(net.next_due(), Some(SimTime::from_micros(100)));
        net.advance_to(SimTime::from_micros(99));
        assert_eq!(b.try_recv(), Ok(None));
        net.advance_to(SimTime::from_micros(100));
        assert_eq!(b.try_recv(), Ok(Some(b"x".to_vec())));
    }

    #[test]
    fn bandwidth_serialises_bursts() {
        let net = SimNet::new(1);
        // 8 Mb/s → 1 µs per byte: a 1000-byte frame occupies the wire 1 ms.
        let policy = LinkPolicy {
            bandwidth_bps: 8_000_000,
            ..LinkPolicy::ideal()
        };
        let (a, _b) = net.pair(policy, LinkPolicy::ideal());
        a.send(&[0u8; 1000]).unwrap();
        a.send(&[1u8; 1000]).unwrap();
        assert_eq!(net.next_due(), Some(SimTime::from_millis(1)));
        net.step();
        assert_eq!(net.next_due(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn jitter_never_reorders_one_direction() {
        // Jitter varies per-frame delay, but a single-path wire is FIFO:
        // only the explicit `reorder` policy may overtake. (The NCS
        // control-channel bootstrap depends on this — a hello must not
        // arrive after the control traffic queued behind it.)
        let policy = LinkPolicy {
            latency: Duration::from_micros(50),
            jitter: Duration::from_micros(40),
            ..LinkPolicy::ideal()
        };
        for seed in 0..16 {
            let net = SimNet::new(seed);
            let (a, b) = net.pair(policy.clone(), LinkPolicy::ideal());
            for i in 0..32u8 {
                a.send(&[i]).unwrap();
            }
            net.advance_to(SimTime::from_millis(10));
            for i in 0..32u8 {
                assert_eq!(b.try_recv(), Ok(Some(vec![i])), "seed {seed} frame {i}");
            }
        }
    }

    #[test]
    fn downed_direction_black_holes_then_heals() {
        let net = SimNet::new(1);
        let (a, b) = net.pair(LinkPolicy::ideal(), LinkPolicy::ideal());
        net.set_link_up(a.link(), 0, false);
        a.send(b"lost").unwrap();
        assert_eq!(net.dropped(), 1);
        assert_eq!(net.in_flight(), 0);
        // Reverse direction unaffected.
        b.send(b"back").unwrap();
        net.step();
        assert_eq!(a.try_recv(), Ok(Some(b"back".to_vec())));
        net.set_link_up(a.link(), 0, true);
        a.send(b"healed").unwrap();
        net.step();
        assert_eq!(b.try_recv(), Ok(Some(b"healed".to_vec())));
    }

    #[test]
    fn same_seed_same_fates() {
        let run = |seed: u64| -> (u64, u64) {
            let net = SimNet::new(seed);
            let (a, _b) = net.pair(LinkPolicy::ideal().with_loss(0.3), LinkPolicy::ideal());
            for i in 0..200u32 {
                a.send(&i.to_be_bytes()).unwrap();
            }
            net.advance_to(SimTime::from_secs(1));
            (net.delivered(), net.dropped())
        };
        assert_eq!(run(42), run(42));
        let (d1, _) = run(42);
        let (d2, _) = run(43);
        // Different seeds draw different loss patterns (overwhelmingly).
        assert!(d1 != d2 || d1 != 200);
    }

    #[test]
    fn reorder_lets_later_frames_overtake() {
        let net = SimNet::new(7);
        let policy = LinkPolicy {
            latency: Duration::from_micros(10),
            reorder: 1.0, // every frame held back once
            ..LinkPolicy::ideal()
        };
        let (a, b) = net.pair(policy, LinkPolicy::ideal());
        a.send(b"first").unwrap();
        // Remove the reorder penalty for the second frame only.
        net.set_policy(
            a.link(),
            0,
            LinkPolicy {
                latency: Duration::from_micros(10),
                ..LinkPolicy::ideal()
            },
        );
        a.send(b"second").unwrap();
        net.advance_to(SimTime::from_millis(1));
        assert_eq!(b.try_recv(), Ok(Some(b"second".to_vec())));
        assert_eq!(b.try_recv(), Ok(Some(b"first".to_vec())));
    }

    #[test]
    fn close_stops_sends_and_unblocks_receivers() {
        let net = SimNet::new(1);
        let (a, b) = net.pair(LinkPolicy::ideal(), LinkPolicy::ideal());
        a.send(b"in-flight").unwrap();
        a.close();
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        // Graceful FIFO close: the frame sent before the close is still
        // delivered; only then does the peer see `Closed`.
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(b.try_recv(), Ok(Some(b"in-flight".to_vec())));
        assert_eq!(b.try_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn waker_fires_on_delivery() {
        let net = SimNet::new(1);
        let (a, b) = net.pair(LinkPolicy::lan(), LinkPolicy::lan());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.register_waker(Some(Arc::new(move || {
            h.fetch_add(1, Ordering::Relaxed);
        })));
        a.send(b"wake").unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        net.advance_to(SimTime::from_secs(1));
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }
}
