//! HPI — the High Performance Interface (the paper's "Trap" interface).
//!
//! Modelled as a pair of bounded in-process rings, the software analogue of
//! a NIC descriptor ring reached by trapping straight past the protocol
//! stack. Properties:
//!
//! * lowest latency of all interfaces (no syscalls, no copies beyond the
//!   frame itself);
//! * **drops frames when the receiver's ring is full** (receiver overrun) —
//!   which is why NCS pairs HPI with its credit-based flow control for bulk
//!   transfers;
//! * frames are never corrupted or reordered.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ncs_threads::sync::Mailbox;

use crate::iface::{Capabilities, Connection, Readiness, TransportError, Waker};

/// Default ring capacity, in frames.
pub const DEFAULT_RING: usize = 64;

/// Largest frame HPI accepts. Sized to fit an NCS packet with a 64 KB SDU.
pub const MAX_FRAME: usize = 128 * 1024;

#[derive(Debug)]
struct Ring {
    queue: Mailbox<Vec<u8>>,
    overruns: AtomicU64,
    closed: AtomicBool,
}

impl Ring {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Ring {
            queue: Mailbox::bounded(capacity),
            overruns: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        })
    }
}

/// One endpoint of an HPI link. Create pairs with [`pair`].
#[derive(Debug)]
pub struct HpiConnection {
    /// Ring we push into (owned by the peer's receive side).
    tx: Arc<Ring>,
    /// Ring we pop from.
    rx: Arc<Ring>,
    label: String,
}

/// Creates a connected pair of HPI endpoints with `capacity`-frame rings.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn pair(capacity: usize) -> (HpiConnection, HpiConnection) {
    let ab = Ring::new(capacity);
    let ba = Ring::new(capacity);
    (
        HpiConnection {
            tx: Arc::clone(&ab),
            rx: Arc::clone(&ba),
            label: "hpi-peer-b".to_owned(),
        },
        HpiConnection {
            tx: ba,
            rx: ab,
            label: "hpi-peer-a".to_owned(),
        },
    )
}

/// [`pair`] with the default ring size.
pub fn pair_default() -> (HpiConnection, HpiConnection) {
    pair(DEFAULT_RING)
}

impl HpiConnection {
    /// Frames dropped because this endpoint's *outbound* ring was full
    /// (receiver overrun at the peer).
    pub fn overruns(&self) -> u64 {
        self.tx.overruns.load(Ordering::Relaxed)
    }

    /// Frames currently queued for this endpoint to receive.
    pub fn pending(&self) -> usize {
        self.rx.queue.len()
    }
}

impl Connection for HpiConnection {
    fn caps(&self) -> Capabilities {
        Capabilities {
            interface: "HPI",
            reliable: false, // overruns drop frames
            ordered: true,
            max_frame: MAX_FRAME,
        }
    }

    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.is_empty() {
            return Err(TransportError::Empty);
        }
        if frame.len() > MAX_FRAME {
            return Err(TransportError::TooLarge {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        if self.tx.closed.load(Ordering::Acquire) || self.rx.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // NIC-ring semantics: a full ring is the receiver's problem — the
        // frame is dropped, not back-pressured.
        if self.tx.queue.try_send(frame.to_vec()).is_err() {
            self.tx.overruns.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        loop {
            // Poll-with-timeout so a concurrent close is eventually seen.
            match self.rx.queue.recv_timeout(Duration::from_millis(50)) {
                Ok(frame) => return Ok(frame),
                Err(_) => {
                    if self.rx.closed.load(Ordering::Acquire) && self.rx.queue.is_empty() {
                        return Err(TransportError::Closed);
                    }
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.rx.queue.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(_) => {
                if self.rx.closed.load(Ordering::Acquire) && self.rx.queue.is_empty() {
                    Err(TransportError::Closed)
                } else {
                    Err(TransportError::Timeout)
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.queue.try_recv() {
            Some(frame) => Ok(Some(frame)),
            None => {
                if self.rx.closed.load(Ordering::Acquire) {
                    Err(TransportError::Closed)
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        // Cut the batch at the first invalid frame: the valid prefix goes
        // out (exactly as repeated `send` calls would have sent it) and the
        // invalid frame's error resurfaces on the caller's retry.
        let mut valid = frames.len();
        let mut first_error = None;
        for (i, frame) in frames.iter().enumerate() {
            let error = if frame.is_empty() {
                Some(TransportError::Empty)
            } else if frame.len() > MAX_FRAME {
                Some(TransportError::TooLarge {
                    len: frame.len(),
                    max: MAX_FRAME,
                })
            } else {
                None
            };
            if let Some(e) = error {
                valid = i;
                first_error = Some(e);
                break;
            }
        }
        if valid == 0 {
            if let Some(e) = first_error {
                return Err(e);
            }
            return Ok(0);
        }
        if self.tx.closed.load(Ordering::Acquire) || self.rx.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // One ring acquisition for the whole batch. As with single-frame
        // sends, frames beyond the ring's free space are the receiver's
        // overrun, not backpressure — so every valid frame "sends".
        let rejected = self
            .tx
            .queue
            .try_send_many(frames[..valid].iter().map(|f| f.to_vec()));
        if !rejected.is_empty() {
            self.tx
                .overruns
                .fetch_add(rejected.len() as u64, Ordering::Relaxed);
        }
        Ok(valid)
    }

    fn recv_many(&self, max: usize, timeout: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        // One ring acquisition drains everything queued, up to `max`.
        let frames = self.rx.queue.recv_many(max, timeout);
        if frames.is_empty() {
            if self.rx.closed.load(Ordering::Acquire) && self.rx.queue.is_empty() {
                Err(TransportError::Closed)
            } else {
                Err(TransportError::Timeout)
            }
        } else {
            Ok(frames)
        }
    }

    fn readiness(&self) -> Readiness {
        Readiness::Waker
    }

    fn register_waker(&self, waker: Option<Waker>) {
        self.rx.queue.set_notify(waker);
    }

    fn close(&self) {
        self.tx.closed.store(true, Ordering::Release);
        self.rx.closed.store(true, Ordering::Release);
        // Wake readiness-driven consumers on both endpoints so they observe
        // the closed flags (no frame will arrive to do it for them).
        self.tx.queue.notify();
        self.rx.queue.notify();
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_both_ways() {
        let (a, b) = pair_default();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn fifo_order() {
        let (a, b) = pair_default();
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn overrun_drops_and_counts() {
        let (a, b) = pair(4);
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        assert_eq!(a.overruns(), 6);
        assert_eq!(b.pending(), 4);
        // The four that fit are the oldest (ring keeps head of line).
        for i in 0..4u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn caps_report_unreliable_ordered() {
        let (a, _b) = pair_default();
        let caps = a.caps();
        assert!(!caps.reliable);
        assert!(caps.ordered);
        assert_eq!(caps.interface, "HPI");
    }

    #[test]
    fn empty_and_oversized_rejected() {
        let (a, _b) = pair_default();
        assert_eq!(a.send(b""), Err(TransportError::Empty));
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(a.send(&big), Err(TransportError::TooLarge { .. })));
    }

    #[test]
    fn close_fails_sends_but_drains_queue() {
        let (a, b) = pair_default();
        a.send(b"last").unwrap();
        a.close();
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        // Close on `a` marks both rings; queued frame still drains.
        assert_eq!(b.try_recv(), Ok(Some(b"last".to_vec())));
        assert_eq!(b.try_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_a, b) = pair_default();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(20)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn recv_unblocks_on_close() {
        let (a, b) = pair_default();
        let t = std::thread::spawn(move || b.recv());
        std::thread::sleep(Duration::from_millis(20));
        a.close();
        assert_eq!(t.join().unwrap(), Err(TransportError::Closed));
    }

    #[test]
    fn send_batch_keeps_order_and_counts_overruns() {
        let (a, b) = pair(4);
        let frames: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        assert_eq!(a.send_batch(&refs).unwrap(), 6);
        // Ring holds 4: the oldest four survive, two overran.
        assert_eq!(a.overruns(), 2);
        let got = b.recv_many(16, Duration::from_millis(100)).unwrap();
        assert_eq!(got, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn recv_many_drains_then_times_out() {
        let (a, b) = pair_default();
        for i in 0..3u8 {
            a.send(&[i]).unwrap();
        }
        let got = b.recv_many(8, Duration::from_millis(100)).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(
            b.recv_many(8, Duration::from_millis(20)),
            Err(TransportError::Timeout)
        );
        a.close();
        assert_eq!(
            b.recv_many(8, Duration::from_millis(20)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn send_batch_sends_valid_prefix_then_surfaces_error() {
        let (a, b) = pair_default();
        let ok: &[u8] = b"ok";
        let empty: &[u8] = b"";
        // The valid prefix goes out; the invalid frame errors on retry.
        assert_eq!(a.send_batch(&[ok, empty]), Ok(1));
        assert_eq!(a.send_batch(&[empty]), Err(TransportError::Empty));
        assert_eq!(b.recv().unwrap(), b"ok");
        a.close();
        assert_eq!(a.send_batch(&[ok]), Err(TransportError::Closed));
    }

    #[test]
    fn cross_thread_throughput() {
        let (a, b) = pair(1024);
        let t = std::thread::spawn(move || {
            for i in 0..1000u32 {
                // Spin on overruns: the test ring is large enough that the
                // reader keeps up, but stay robust.
                a.send(&i.to_be_bytes()).unwrap();
            }
        });
        let mut received = 0u32;
        while received < 1000 {
            match b.recv_timeout(Duration::from_secs(5)) {
                Ok(_) => received += 1,
                Err(TransportError::Timeout) => break,
                Err(e) => panic!("{e}"),
            }
        }
        t.join().unwrap();
        // With a 1024-deep ring and a single reader, nothing should drop.
        assert_eq!(received, 1000);
    }
}
