//! SCI — the Socket Communication Interface: real TCP with length-prefix
//! framing.
//!
//! TCP provides flow and error control in the kernel, so NCS configures SCI
//! connections without its own flow-/error-control threads (paper §3.1:
//! "the `NCS_send()` and `NCS_recv()` primitives bypass the Flow Control
//! Thread and Error Control Thread"). SCI is the portability interface: it
//! runs on anything with sockets.
//!
//! For the user-level thread package the paper implements receives with
//! non-blocking system calls plus `thread_yield()`; [`SciConnection::set_yield_hook`]
//! enables exactly that mode.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::iface::{Capabilities, Connection, Readiness, TransportError, Waker, YieldHook};

/// Largest frame SCI accepts (sanity bound; TCP itself is a stream).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Most bytes a batched send coalesces into one write. Bounds the scratch
/// buffer; anything beyond comes back as a partial batch for the caller
/// to retry (the trait's backpressure contract).
const COALESCE_BYTES: usize = 256 * 1024;

/// Inbound reassembly state: raw bytes accumulate here until at least one
/// complete length-prefixed frame is available.
#[derive(Debug, Default)]
struct ReadBuf {
    buf: Vec<u8>,
}

impl ReadBuf {
    /// Pops one complete frame if buffered.
    fn pop_frame(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if self.buf.len() < 4 + len {
            return None;
        }
        let frame = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Some(frame)
    }
}

/// A TCP-backed NCS connection.
pub struct SciConnection {
    writer: Mutex<TcpStream>,
    /// Outbound bytes accepted by [`Connection::try_send_batch`] but not
    /// yet written (the tail of at most one partially-written frame).
    /// Locked after `writer`, never before.
    write_backlog: Mutex<Vec<u8>>,
    reader: Mutex<(TcpStream, ReadBuf)>,
    /// Raw fd of the (cloned) socket, for `poll(2)`-based readiness.
    fd: RawFd,
    closed: AtomicBool,
    peer: SocketAddr,
    yield_hook: Mutex<Option<YieldHook>>,
    /// Readiness callback, fired on close (frame arrival is visible to the
    /// event loop through the fd itself).
    waker: Mutex<Option<Waker>>,
}

impl std::fmt::Debug for SciConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SciConnection")
            .field("peer", &self.peer)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl SciConnection {
    fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader = stream.try_clone()?;
        let fd = reader.as_raw_fd();
        Ok(SciConnection {
            writer: Mutex::new(stream),
            write_backlog: Mutex::new(Vec::new()),
            reader: Mutex::new((reader, ReadBuf::default())),
            fd,
            closed: AtomicBool::new(false),
            peer,
            yield_hook: Mutex::new(None),
            waker: Mutex::new(None),
        })
    }

    /// Flushes any `try_send_batch` backlog, blocking. Caller holds the
    /// writer lock; keeps mixed blocking/non-blocking send paths ordered.
    fn flush_backlog_blocking(&self, w: &mut TcpStream) -> Result<(), TransportError> {
        let mut backlog = self.write_backlog.lock();
        if !backlog.is_empty() {
            w.write_all(&backlog)?;
            backlog.clear();
        }
        Ok(())
    }

    /// Non-blocking write of as many valid frames as the kernel takes.
    /// Caller holds the writer lock with the stream in non-blocking mode.
    /// A frame whose bytes are only partially accepted counts as sent; its
    /// tail goes to `write_backlog` and is flushed ahead of later sends.
    fn try_send_locked(
        &self,
        w: &mut TcpStream,
        frames: &[&[u8]],
    ) -> Result<usize, TransportError> {
        let mut backlog = self.write_backlog.lock();
        while !backlog.is_empty() {
            match w.write(&backlog) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => {
                    backlog.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(0),
                Err(e) => return Err(e.into()),
            }
        }
        let mut accepted = 0;
        for frame in frames {
            let header = (frame.len() as u32).to_be_bytes();
            let mut off = 0;
            while off < header.len() {
                match w.write(&header[off..]) {
                    Ok(0) => return Err(TransportError::Closed),
                    Ok(n) => off += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if off == 0 {
                            // Nothing of this frame is committed to the
                            // stream yet: hand it back whole.
                            return Ok(accepted);
                        }
                        backlog.extend_from_slice(&header[off..]);
                        backlog.extend_from_slice(frame);
                        return Ok(accepted + 1);
                    }
                    Err(e) => {
                        return if accepted > 0 {
                            Ok(accepted)
                        } else {
                            Err(e.into())
                        }
                    }
                }
            }
            let mut boff = 0;
            while boff < frame.len() {
                match w.write(&frame[boff..]) {
                    Ok(0) => return Err(TransportError::Closed),
                    Ok(n) => boff += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        backlog.extend_from_slice(&frame[boff..]);
                        return Ok(accepted + 1);
                    }
                    Err(e) => {
                        return if accepted > 0 {
                            Ok(accepted)
                        } else {
                            Err(e.into())
                        }
                    }
                }
            }
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Switches receives to non-blocking polling, invoking `hook` between
    /// polls — the paper's user-level-package receive discipline
    /// (`NCS_thread_yield()` while no data is pending).
    pub fn set_yield_hook(&self, hook: Option<YieldHook>) {
        *self.yield_hook.lock() = hook;
    }

    fn recv_deadline(&self, deadline: Option<Instant>) -> Result<Vec<u8>, TransportError> {
        let hook = self.yield_hook.lock().clone();
        let mut guard = self.reader.lock();
        let (stream, rb) = &mut *guard;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = rb.pop_frame() {
                return Ok(frame);
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(TransportError::Closed);
            }
            if let Some(hook) = &hook {
                // Non-blocking poll + cooperative yield.
                stream.set_nonblocking(true)?;
                let r = stream.read(&mut chunk);
                stream.set_nonblocking(false)?;
                match r {
                    Ok(0) => return Err(TransportError::Closed),
                    Ok(n) => rb.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                return Err(TransportError::Timeout);
                            }
                        }
                        hook();
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                // Blocking read with optional timeout.
                let timeout = match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(TransportError::Timeout);
                        }
                        Some(d - now)
                    }
                    None => None,
                };
                stream.set_read_timeout(timeout)?;
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(TransportError::Closed),
                    Ok(n) => rb.buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Err(TransportError::Timeout);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }
}

impl Connection for SciConnection {
    fn caps(&self) -> Capabilities {
        Capabilities {
            interface: "SCI",
            reliable: true,
            ordered: true,
            max_frame: MAX_FRAME,
        }
    }

    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.is_empty() {
            return Err(TransportError::Empty);
        }
        if frame.len() > MAX_FRAME {
            return Err(TransportError::TooLarge {
                len: frame.len(),
                max: MAX_FRAME,
            });
        }
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let mut w = self.writer.lock();
        self.flush_backlog_blocking(&mut w)?;
        w.write_all(&(frame.len() as u32).to_be_bytes())?;
        w.write_all(frame)?;
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.recv_deadline(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.recv_deadline(Some(Instant::now() + timeout))
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut guard = self.reader.lock();
        let (stream, rb) = &mut *guard;
        if let Some(frame) = rb.pop_frame() {
            return Ok(Some(frame));
        }
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Drain whatever the kernel has buffered, without blocking.
        let mut chunk = [0u8; 64 * 1024];
        stream.set_nonblocking(true)?;
        let outcome = loop {
            match stream.read(&mut chunk) {
                Ok(0) => break Err(TransportError::Closed),
                Ok(n) => rb.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) => break Err(e.into()),
            }
        };
        stream.set_nonblocking(false)?;
        match outcome {
            Ok(()) => Ok(rb.pop_frame()),
            Err(TransportError::Closed) => match rb.pop_frame() {
                Some(f) => Ok(Some(f)),
                None => Err(TransportError::Closed),
            },
            Err(e) => Err(e),
        }
    }

    fn send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        // Cut the batch at the first invalid frame: the valid prefix goes
        // out and the invalid frame's error resurfaces on the retry.
        let mut valid = frames.len();
        let mut first_error = None;
        for (i, frame) in frames.iter().enumerate() {
            let error = if frame.is_empty() {
                Some(TransportError::Empty)
            } else if frame.len() > MAX_FRAME {
                Some(TransportError::TooLarge {
                    len: frame.len(),
                    max: MAX_FRAME,
                })
            } else {
                None
            };
            if let Some(e) = error {
                valid = i;
                first_error = Some(e);
                break;
            }
        }
        if valid == 0 {
            return match first_error {
                Some(e) => Err(e),
                None => Ok(0),
            };
        }
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Coalesce length-prefixed frames into one scratch buffer and push
        // it with a single write — the writev analogue: one writer-lock
        // acquisition and (kernel buffer permitting) one syscall for the
        // whole batch, instead of two writes per frame.
        let mut end = 0;
        let mut bytes = 0;
        while end < valid {
            let need = 4 + frames[end].len();
            if end > 0 && bytes + need > COALESCE_BYTES {
                break;
            }
            bytes += need;
            end += 1;
        }
        let mut scratch = Vec::with_capacity(bytes);
        for frame in &frames[..end] {
            scratch.extend_from_slice(&(frame.len() as u32).to_be_bytes());
            scratch.extend_from_slice(frame);
        }
        let mut w = self.writer.lock();
        self.flush_backlog_blocking(&mut w)?;
        w.write_all(&scratch)?;
        Ok(end)
    }

    fn try_send_batch(&self, frames: &[&[u8]]) -> Result<usize, TransportError> {
        // Same valid-prefix cut as `send_batch`.
        let mut valid = frames.len();
        let mut first_error = None;
        for (i, frame) in frames.iter().enumerate() {
            let error = if frame.is_empty() {
                Some(TransportError::Empty)
            } else if frame.len() > MAX_FRAME {
                Some(TransportError::TooLarge {
                    len: frame.len(),
                    max: MAX_FRAME,
                })
            } else {
                None
            };
            if let Some(e) = error {
                valid = i;
                first_error = Some(e);
                break;
            }
        }
        if valid == 0 {
            return match first_error {
                Some(e) => Err(e),
                None => Ok(0),
            };
        }
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let mut w = self.writer.lock();
        w.set_nonblocking(true)?;
        let result = self.try_send_locked(&mut w, &frames[..valid]);
        let restore = w.set_nonblocking(false);
        let accepted = result?;
        restore?;
        Ok(accepted)
    }

    fn recv_many(&self, max: usize, timeout: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let deadline = Instant::now() + timeout;
        let hook = self.yield_hook.lock().clone();
        // One reader-lock acquisition for the entire batch.
        let mut guard = self.reader.lock();
        let (stream, rb) = &mut *guard;
        let mut out = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            while out.len() < max {
                match rb.pop_frame() {
                    Some(f) => out.push(f),
                    None => break,
                }
            }
            if out.len() >= max {
                return Ok(out);
            }
            if !out.is_empty() {
                // We have frames: only scoop whatever the kernel already
                // buffered, never block (errors resurface on the next
                // call; the partial batch is returned now).
                stream.set_nonblocking(true)?;
                let r = stream.read(&mut chunk);
                stream.set_nonblocking(false)?;
                match r {
                    Ok(n) if n > 0 => rb.buf.extend_from_slice(&chunk[..n]),
                    _ => return Ok(out),
                }
                continue;
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(TransportError::Closed);
            }
            // Nothing yet: wait for the first frame, cooperatively when a
            // yield hook is installed (the §4.1 user-level discipline).
            if let Some(hook) = &hook {
                stream.set_nonblocking(true)?;
                let r = stream.read(&mut chunk);
                stream.set_nonblocking(false)?;
                match r {
                    Ok(0) => return Err(TransportError::Closed),
                    Ok(n) => rb.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Timeout);
                        }
                        hook();
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                let now = Instant::now();
                if now >= deadline {
                    return Err(TransportError::Timeout);
                }
                stream.set_read_timeout(Some(deadline - now))?;
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(TransportError::Closed),
                    Ok(n) => rb.buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Err(TransportError::Timeout);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }

    fn readiness(&self) -> Readiness {
        Readiness::Fd(self.fd)
    }

    fn register_waker(&self, waker: Option<Waker>) {
        *self.waker.lock() = waker;
    }

    fn close(&self) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
            // The socket shutdown makes the fd poll readable (HUP), but an
            // event loop parked on mailbox wakeups still needs the nudge.
            let waker = self.waker.lock().clone();
            if let Some(w) = waker {
                w();
            }
        }
    }

    fn peer_label(&self) -> String {
        format!("sci:{}", self.peer)
    }
}

impl Drop for SciConnection {
    fn drop(&mut self) {
        self.close();
    }
}

/// A TCP listener producing [`SciConnection`]s.
pub struct SciListener {
    listener: TcpListener,
    yield_hook: Mutex<Option<YieldHook>>,
}

impl std::fmt::Debug for SciListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SciListener")
            .field("local_addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl SciListener {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str) -> Result<Self, TransportError> {
        Ok(SciListener {
            listener: TcpListener::bind(addr)?,
            yield_hook: Mutex::new(None),
        })
    }

    /// Makes [`SciListener::accept_timeout`] poll cooperatively: `hook`
    /// runs between non-blocking accepts instead of an OS sleep, so an
    /// acceptor green thread stops monopolising the user-level scheduler.
    pub fn set_yield_hook(&self, hook: Option<YieldHook>) {
        *self.yield_hook.lock() = hook;
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts one inbound connection (blocking).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn accept(&self) -> Result<SciConnection, TransportError> {
        let (stream, _) = self.listener.accept()?;
        SciConnection::from_stream(stream)
    }

    /// Accepts one inbound connection, polling until `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when nothing arrived in time; otherwise
    /// propagates socket errors.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<SciConnection, TransportError> {
        let deadline = Instant::now() + timeout;
        let hook = self.yield_hook.lock().clone();
        self.listener.set_nonblocking(true)?;
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => break Ok(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break Err(TransportError::Timeout);
                    }
                    match &hook {
                        Some(h) => h(),
                        None => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
                Err(e) => break Err(e.into()),
            }
        };
        self.listener.set_nonblocking(false)?;
        let stream = result?;
        stream.set_nonblocking(false)?;
        SciConnection::from_stream(stream)
    }
}

/// Connects to a listening SCI endpoint.
///
/// # Errors
///
/// Propagates socket errors.
pub fn connect(addr: SocketAddr) -> Result<SciConnection, TransportError> {
    let stream = TcpStream::connect(addr)?;
    SciConnection::from_stream(stream)
}

/// Default overall budget for [`connect_retry`], used by the node layer's
/// SCI links.
pub const CONNECT_RETRY_TIMEOUT: Duration = Duration::from_secs(5);

/// Initial pause after a refused connect; doubles per attempt up to
/// [`CONNECT_BACKOFF_MAX`].
const CONNECT_BACKOFF_MIN: Duration = Duration::from_millis(5);
const CONNECT_BACKOFF_MAX: Duration = Duration::from_millis(200);

/// Whether a connect failure is worth retrying: the peer's listener may
/// simply not exist *yet* (cluster ranks race each other through startup).
fn connect_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::AddrNotAvailable
            | std::io::ErrorKind::TimedOut
    )
}

/// [`connect`] with bounded retry and exponential backoff, for dialing a
/// peer that may not be listening yet. Ranks of a cluster start
/// concurrently; without this, the faster rank's connect races the slower
/// rank's `bind` and dies with `ConnectionRefused` even though the peer is
/// milliseconds away from accepting.
///
/// Retries only failures that can heal by waiting (refused / reset /
/// not-yet-routable); anything else propagates immediately. Gives up with
/// the last error once `timeout` is spent. Each attempt is itself bounded
/// by the remaining budget (`TcpStream::connect_timeout`), so a
/// blackholed address — packets dropped, not refused — cannot park the
/// caller on the kernel's multi-minute SYN timeout.
///
/// # Errors
///
/// The final socket error after the retry budget, or the first
/// non-retryable error.
pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> Result<SciConnection, TransportError> {
    let deadline = Instant::now() + timeout;
    let mut backoff = CONNECT_BACKOFF_MIN;
    loop {
        // Never pass a zero budget: connect_timeout rejects it. The floor
        // also gives a `timeout == 0` caller one real (if brisk) attempt.
        let attempt = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(10));
        match TcpStream::connect_timeout(&addr, attempt) {
            Ok(stream) => return SciConnection::from_stream(stream),
            Err(e) if connect_retryable(&e) && Instant::now() < deadline => {
                let now = Instant::now();
                let left = deadline.saturating_duration_since(now);
                std::thread::sleep(backoff.min(left));
                backoff = (backoff * 2).min(CONNECT_BACKOFF_MAX);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Creates a connected SCI pair over loopback (convenience for tests and
/// single-machine experiments).
///
/// # Errors
///
/// Propagates socket errors.
pub fn loopback_pair() -> Result<(SciConnection, SciConnection), TransportError> {
    let listener = SciListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let t = std::thread::spawn(move || connect(addr));
    let server = listener.accept()?;
    let client = t.join().expect("connect thread panicked")?;
    Ok((client, server))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn loopback_round_trip() {
        let (a, b) = loopback_pair().unwrap();
        a.send(b"over tcp").unwrap();
        assert_eq!(b.recv().unwrap(), b"over tcp");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn large_frames_and_batching() {
        let (a, b) = loopback_pair().unwrap();
        let big: Vec<u8> = (0..200_000).map(|i| (i % 255) as u8).collect();
        let big2 = big.clone();
        let t = std::thread::spawn(move || {
            a.send(&big2).unwrap();
            a.send(b"tail").unwrap();
            a
        });
        assert_eq!(b.recv().unwrap(), big);
        assert_eq!(b.recv().unwrap(), b"tail");
        t.join().unwrap();
    }

    #[test]
    fn many_small_frames_keep_boundaries() {
        let (a, b) = loopback_pair().unwrap();
        for i in 0..100u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(b.recv().unwrap(), i.to_be_bytes());
        }
    }

    #[test]
    fn recv_timeout_expires() {
        let (_a, b) = loopback_pair().unwrap();
        let start = Instant::now();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn try_recv_polls() {
        let (a, b) = loopback_pair().unwrap();
        assert_eq!(b.try_recv().unwrap(), None);
        a.send(b"x").unwrap();
        // Loopback delivery is fast but not instantaneous.
        let mut got = None;
        for _ in 0..100 {
            if let Some(f) = b.try_recv().unwrap() {
                got = Some(f);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(got.unwrap(), b"x");
    }

    #[test]
    fn close_surfaces_to_peer() {
        let (a, b) = loopback_pair().unwrap();
        a.close();
        assert_eq!(b.recv(), Err(TransportError::Closed));
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn yield_hook_mode_receives_frames() {
        let (a, b) = loopback_pair().unwrap();
        let yields = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let y2 = Arc::clone(&yields);
        b.set_yield_hook(Some(Arc::new(move || {
            y2.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        })));
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            a.send(b"late frame").unwrap();
            a
        });
        assert_eq!(b.recv().unwrap(), b"late frame");
        assert!(yields.load(Ordering::Relaxed) > 0, "hook must have yielded");
        t.join().unwrap();
    }

    #[test]
    fn empty_frame_rejected() {
        let (a, _b) = loopback_pair().unwrap();
        assert_eq!(a.send(b""), Err(TransportError::Empty));
    }

    #[test]
    fn send_batch_coalesces_and_keeps_order() {
        let (a, b) = loopback_pair().unwrap();
        let frames: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 100]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let mut sent = 0;
        while sent < refs.len() {
            sent += a.send_batch(&refs[sent..]).unwrap();
        }
        for f in &frames {
            assert_eq!(&b.recv().unwrap(), f);
        }
    }

    #[test]
    fn send_batch_cuts_at_invalid_frame() {
        let (a, b) = loopback_pair().unwrap();
        let ok: &[u8] = b"fine";
        let empty: &[u8] = b"";
        assert_eq!(a.send_batch(&[ok, ok, empty, ok]), Ok(2));
        assert_eq!(a.send_batch(&[empty]), Err(TransportError::Empty));
        assert_eq!(b.recv().unwrap(), b"fine");
        assert_eq!(b.recv().unwrap(), b"fine");
        a.close();
        assert_eq!(a.send_batch(&[ok]), Err(TransportError::Closed));
    }

    #[test]
    fn send_batch_returns_partial_past_coalesce_budget() {
        let (a, b) = loopback_pair().unwrap();
        // Three frames of 200 KB exceed the 256 KB coalesce budget: the
        // first call must make progress and hand the rest back.
        let big = vec![7u8; 200 * 1024];
        let refs: Vec<&[u8]> = vec![&big, &big, &big];
        let reader = std::thread::spawn(move || {
            for _ in 0..3 {
                assert_eq!(b.recv().unwrap().len(), 200 * 1024);
            }
        });
        let mut sent = 0;
        let mut calls = 0;
        while sent < refs.len() {
            let n = a.send_batch(&refs[sent..]).unwrap();
            assert!(n >= 1);
            sent += n;
            calls += 1;
        }
        assert!(calls >= 2, "coalesce budget must bound one call");
        reader.join().unwrap();
    }

    #[test]
    fn recv_many_drains_in_one_acquisition() {
        let (a, b) = loopback_pair().unwrap();
        for i in 0..10u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 10 {
            got.extend(b.recv_many(16, Duration::from_secs(2)).unwrap());
        }
        let want: Vec<Vec<u8>> = (0..10u32).map(|i| i.to_be_bytes().to_vec()).collect();
        assert_eq!(got, want);
        assert_eq!(
            b.recv_many(4, Duration::from_millis(30)),
            Err(TransportError::Timeout)
        );
        a.close();
        assert_eq!(
            b.recv_many(4, Duration::from_millis(200)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn recv_many_respects_max_and_yield_hook() {
        let (a, b) = loopback_pair().unwrap();
        let yields = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let y2 = Arc::clone(&yields);
        b.set_yield_hook(Some(Arc::new(move || {
            y2.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        })));
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let frames: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i]).collect();
            let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
            let mut sent = 0;
            while sent < refs.len() {
                sent += a.send_batch(&refs[sent..]).unwrap();
            }
            a
        });
        let mut got = Vec::new();
        while got.len() < 6 {
            got.extend(b.recv_many(2, Duration::from_secs(2)).unwrap());
            assert!(got.len() <= 6);
        }
        assert_eq!(got.len(), 6);
        assert!(yields.load(Ordering::Relaxed) > 0, "hook must have yielded");
        t.join().unwrap();
        assert_eq!(
            b.recv_many(0, Duration::from_millis(1)).unwrap(),
            Vec::<Vec<u8>>::new()
        );
    }

    #[test]
    fn peer_label_mentions_sci() {
        let (a, _b) = loopback_pair().unwrap();
        assert!(a.peer_label().starts_with("sci:"));
    }

    #[test]
    fn connect_retry_survives_a_not_yet_listening_peer() {
        // Reserve a port, release it, and only start listening on it after
        // the connector has already begun dialing: the first attempts hit
        // ConnectionRefused and must be retried, not surfaced.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let listener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let l = SciListener::bind(&addr.to_string()).expect("late bind");
            let server = l.accept().expect("accept");
            assert_eq!(server.recv().unwrap(), b"after the wait");
            server.send(b"ack").unwrap();
        });
        let client = connect_retry(addr, Duration::from_secs(5)).expect("retry until listening");
        client.send(b"after the wait").unwrap();
        assert_eq!(client.recv().unwrap(), b"ack");
        listener.join().unwrap();
    }

    #[test]
    fn connect_retry_gives_up_after_its_budget() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let start = Instant::now();
        let r = connect_retry(addr, Duration::from_millis(120));
        assert!(r.is_err(), "nobody ever listened");
        assert!(start.elapsed() >= Duration::from_millis(100));
    }
}
