//! The collective wire frame.
//!
//! Every collective message is one or more `CollFrame`s carried as
//! ordinary NCS message payloads over the group's pairwise connections —
//! so segmentation, flow control and error control below this layer are
//! exactly the point-to-point machinery (paper §3), reused unchanged.
//!
//! A frame addresses a *segment stream*: `(coll, stream)` identifies one
//! logical transfer inside one collective operation (e.g. the reduce phase
//! and the broadcast phase of an allreduce are distinct streams), and
//! `seg`/`total` sequence the pipeline segments of that transfer.

use std::sync::Arc;

use ncs_core::{BufPool, PooledBuf};

pub(crate) const TAG_COLL: u8 = 0xB3;

/// Encoded header size: tag + group + coll + stream + seg + total + len.
pub(crate) const COLL_OVERHEAD: usize = 1 + 4 + 4 + 4 + 4 + 4 + 4;

/// A decoded collective segment. The original frame bytes are retained so
/// forwarding nodes (tree and ring relays) re-transmit them verbatim —
/// no decode/re-encode round trip on the store-and-forward path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Seg {
    pub coll: u32,
    pub stream: u32,
    pub seg: u32,
    pub total: u32,
    /// The complete received frame (header + payload).
    pub raw: Vec<u8>,
}

impl Seg {
    /// The segment's payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.raw[COLL_OVERHEAD..]
    }
}

/// Encodes one collective frame into a buffer checked out of `pool`.
pub(crate) fn encode_frame(
    pool: &Arc<BufPool>,
    group: u32,
    coll: u32,
    stream: u32,
    seg: u32,
    total: u32,
    payload: &[u8],
) -> PooledBuf {
    let mut buf = pool.get();
    let out = buf.vec_mut();
    out.clear();
    out.reserve(COLL_OVERHEAD + payload.len());
    out.push(TAG_COLL);
    out.extend_from_slice(&group.to_be_bytes());
    out.extend_from_slice(&coll.to_be_bytes());
    out.extend_from_slice(&stream.to_be_bytes());
    out.extend_from_slice(&seg.to_be_bytes());
    out.extend_from_slice(&total.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    buf
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Decodes a frame addressed to `expect_group`, taking ownership of the
/// frame buffer. Returns `None` for frames that are not well-formed
/// collective frames for this group.
pub(crate) fn decode_frame(bytes: Vec<u8>, expect_group: u32) -> Option<Seg> {
    if bytes.len() < COLL_OVERHEAD || bytes[0] != TAG_COLL {
        return None;
    }
    if read_u32(&bytes, 1) != expect_group {
        return None;
    }
    let coll = read_u32(&bytes, 5);
    let stream = read_u32(&bytes, 9);
    let seg = read_u32(&bytes, 13);
    let total = read_u32(&bytes, 17);
    let len = read_u32(&bytes, 21) as usize;
    if bytes.len() != COLL_OVERHEAD + len || total == 0 || seg >= total {
        return None;
    }
    Some(Seg {
        coll,
        stream,
        seg,
        total,
        raw: bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let pool = BufPool::new();
        let f = encode_frame(&pool, 9, 3, 1, 2, 5, b"abc");
        let seg = decode_frame(f.as_slice().to_vec(), 9).unwrap();
        assert_eq!((seg.coll, seg.stream, seg.seg, seg.total), (3, 1, 2, 5));
        assert_eq!(seg.payload(), b"abc");
        assert_eq!(seg.raw, f.as_slice());
        // Empty payloads (barrier tokens) survive too.
        let f = encode_frame(&pool, 9, 4, 0, 0, 1, b"");
        let seg = decode_frame(f.as_slice().to_vec(), 9).unwrap();
        assert!(seg.payload().is_empty());
    }

    #[test]
    fn frame_rejects_malformed() {
        let pool = BufPool::new();
        let good = encode_frame(&pool, 9, 3, 1, 2, 5, b"abc")
            .as_slice()
            .to_vec();
        assert!(decode_frame(good.clone(), 8).is_none(), "wrong group");
        let mut bad_tag = good.clone();
        bad_tag[0] = 0x00;
        assert!(decode_frame(bad_tag, 9).is_none());
        let mut truncated = good.clone();
        truncated.pop();
        assert!(decode_frame(truncated, 9).is_none());
        assert!(decode_frame(Vec::new(), 9).is_none());
        // seg >= total is invalid.
        let bad = encode_frame(&pool, 9, 3, 1, 7, 5, b"x").as_slice().to_vec();
        assert!(decode_frame(bad, 9).is_none());
    }
}
