//! The collective engine: on-demand progress over a group's pairwise NCS
//! connections, servicing typed collective operations.
//!
//! # Architecture
//!
//! A [`CollectiveGroup`] member owns **no standing threads**:
//!
//! * each link's untagged receive stream is handed to the engine via
//!   [`NcsConnection::set_receive_sink`] — the node's readiness reactor
//!   pushes reassembled frames straight into the member's frame inbox (the
//!   former per-link pump threads, with the threads removed); and
//! * a **progress runner** borrows a thread from the reactor's blocking
//!   lane only while operations are queued — the paper's overlap story
//!   made concrete for group communication. Application threads *submit*
//!   operations (a mailbox send) and immediately continue computing; the
//!   runner executes the communication schedule (tree forwarding,
//!   reduction folds, pipeline segment relays), resolves the caller's
//!   [`CollectiveHandle`], and exits once the queue drains. A quiescent
//!   group costs zero threads.
//!
//! The runner is spawned through the node's configured
//! [`ncs_threads::ThreadPackage`], so the same engine runs over the
//! kernel-level and the user-level (green-thread) package.
//!
//! # Ordering contract
//!
//! Like MPI, collective calls must be issued **in the same order on every
//! member**. Within one member, submissions from concurrent threads are
//! serialised by the group (the submission order is the execution order).
//! Operations pipeline: a member may have many collectives outstanding;
//! its progress thread executes them strictly in submission order while
//! early-arriving frames for later operations are stashed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use ncs_core::{BufPool, Clock, NcsConnection, NcsNode, PooledBuf, Reactor};
use ncs_threads::sync::Mailbox;
use parking_lot::Mutex;

use crate::datatype::{fold_into, to_bytes, DType, ReduceOp, Scalar};
use crate::frame::{decode_frame, encode_frame, Seg};
use crate::handle::{CollectiveError, CollectiveHandle, OpCompletion};
use crate::topology::{tree_children, tree_parent, tree_span, OpClass, Topology, TopologyPolicy};

/// How often blocked engine loops re-check the closed flag.
const TICK: Duration = Duration::from_millis(100);

/// How long a schedule waits on a *live* peer before a dead link
/// elsewhere in the group fails the operation (see
/// [`Inner::link_down_err`]). Well below any realistic op timeout, well
/// above the in-flight delivery window of a cleanly departing member.
const LINK_DOWN_FALLBACK_GRACE: Duration = Duration::from_secs(2);

/// Tuning knobs of a [`CollectiveGroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveConfig {
    /// Pipeline segment size in bytes: payloads larger than this are cut
    /// into segments that flow through trees and rings store-and-forward
    /// style. Must not exceed the largest message the group's connections
    /// accept.
    pub seg_size: usize,
    /// The per-operation topology selection policy.
    pub policy: TopologyPolicy,
    /// How long the progress thread waits on any one operation before
    /// failing it with [`CollectiveError::Timeout`] (covers members that
    /// never issue the matching call).
    pub op_timeout: Duration,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig {
            seg_size: 32 * 1024,
            policy: TopologyPolicy::default(),
            op_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters of a group's collective engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectiveStats {
    /// Operations completed (successfully or not) by the progress thread.
    pub ops_completed: u64,
    /// Collective frames transmitted (including tree forwards).
    pub frames_sent: u64,
    /// Collective frames received and routed.
    pub frames_received: u64,
    /// Payload bytes transmitted.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

#[derive(Debug, Default)]
struct StatCounters {
    ops_completed: ncs_obs::Counter,
    frames_sent: ncs_obs::Counter,
    frames_received: ncs_obs::Counter,
    bytes_sent: ncs_obs::Counter,
    bytes_received: ncs_obs::Counter,
}

impl StatCounters {
    /// Counters registered with the node's telemetry registry under the
    /// group's `group` label, so collective traffic shows up in
    /// [`NcsNode::metrics_snapshot`](ncs_core::NcsNode::metrics_snapshot)
    /// beside the per-connection series.
    fn registered(registry: &ncs_obs::Registry, group: u32) -> Self {
        let id = group.to_string();
        let labels: &[(&str, &str)] = &[("group", &id)];
        let c = |name: &str, help: &str| registry.counter(name, help, labels);
        StatCounters {
            ops_completed: c(
                "ncs_coll_ops_completed_total",
                "Collective operations completed (successfully or not)",
            ),
            frames_sent: c(
                "ncs_coll_frames_sent_total",
                "Collective frames transmitted (including tree forwards)",
            ),
            frames_received: c(
                "ncs_coll_frames_received_total",
                "Collective frames received and routed",
            ),
            bytes_sent: c("ncs_coll_bytes_sent_total", "Collective payload bytes sent"),
            bytes_received: c(
                "ncs_coll_bytes_received_total",
                "Collective payload bytes received",
            ),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Broadcast,
    Reduce,
    Allreduce,
    Scatter,
    Gather,
    Allgather,
    Barrier,
}

struct OpRequest {
    coll: u32,
    kind: OpKind,
    /// Topology of the (first) phase.
    topo: Topology,
    /// Topology of the second phase (the broadcast half of allreduce /
    /// tree allgather).
    topo2: Topology,
    root: usize,
    payload: Vec<u8>,
    /// Broadcast in-out contract: the byte length every member expects.
    expect_len: usize,
    combine: Option<(DType, ReduceOp)>,
    timeout: Duration,
    done: Arc<OpCompletion>,
}

struct Inner {
    group: u32,
    rank: usize,
    size: usize,
    cfg: CollectiveConfig,
    links: HashMap<usize, NcsConnection>,
    pool: Arc<BufPool>,
    /// The node's readiness reactor: feeds the inbox through the link
    /// sinks and lends the progress runner its blocking-lane thread.
    reactor: Arc<Reactor>,
    /// Submitted operations, consumed in order by the progress runner.
    ops: Mailbox<OpRequest>,
    /// Whether a progress runner currently holds (or is acquiring) a
    /// blocking-lane thread; the submit path claims it with a swap so at
    /// most one runner exists.
    progress_active: AtomicBool,
    /// Raw frames from all links: `(peer rank, frame bytes)`.
    inbox: Mailbox<(usize, Vec<u8>)>,
    next_coll: AtomicU32,
    /// Makes (id assignment, queue insertion) atomic across submitters.
    submit_lock: Mutex<()>,
    closed: Arc<AtomicBool>,
    /// Nonzero once the world's membership view changed under this group
    /// (the epoch that invalidated it): the group's topology no longer
    /// matches reality, so every in-flight and future operation fails
    /// fast with [`CollectiveError::ViewChanged`] instead of idling out
    /// its timeout against a member that will never answer. Set through
    /// [`ViewAbortHandle`] by the membership layer.
    view_changed: AtomicU64,
    /// Links whose pump died on a transport failure (peer rank -> error).
    /// A collective spans every member, so one dead link dooms every
    /// in-flight and future operation: schedules consult this to fail
    /// promptly instead of idling out the full op timeout.
    link_down: Mutex<HashMap<usize, ncs_core::SendError>>,
    /// The member's time source (the node's clock): every deadline in
    /// the engine — op timeouts, the link-down fallback grace — is
    /// computed from it, so a simulated member times out on virtual
    /// time, never the wall (see `ncs_core::clock`).
    clock: Arc<dyn Clock>,
    stats: StatCounters,
}

impl Inner {
    fn check_closed(&self) -> Result<(), CollectiveError> {
        // View changes outrank plain closure: a group that was aborted by
        // a membership epoch (then perhaps closed during rebuild) should
        // tell its waiters *why* the topology died.
        let epoch = self.view_changed.load(Ordering::Acquire);
        if epoch != 0 {
            return Err(CollectiveError::ViewChanged { epoch });
        }
        if self.closed.load(Ordering::Acquire) {
            Err(CollectiveError::Closed)
        } else {
            Ok(())
        }
    }

    /// Marks the group dead under membership `epoch` (first abort wins)
    /// and fails every queued operation. The operation in flight observes
    /// the flag within a tick of its schedule. Returns whether this call
    /// was the one that aborted the group.
    fn abort_view_changed(&self, epoch: u64) -> bool {
        if epoch == 0
            || self
                .view_changed
                .compare_exchange(0, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            return false;
        }
        while let Some(req) = self.ops.try_recv() {
            req.done
                .complete(Err(CollectiveError::ViewChanged { epoch }));
        }
        true
    }

    /// The failure a schedule waiting on `peer` should surface, if any
    /// link pump has died: the peer's own link error when it is the dead
    /// one, otherwise any other dead link's (the operation still cannot
    /// complete — every member participates in a collective), but only
    /// after [`LINK_DOWN_FALLBACK_GRACE`] of fruitless waiting: a member
    /// that *finished* the world's final collective and shut down cleanly
    /// has already delivered every frame it owed, and the survivors'
    /// remaining exchanges (with each other) complete at network speed —
    /// failing those instantly on the departed member's closed link would
    /// turn every graceful teardown into a race.
    fn link_down_err(&self, peer: usize, waited_since: Duration) -> Option<ncs_core::SendError> {
        let down = self.link_down.lock();
        if let Some(e) = down.get(&peer) {
            return Some(e.clone());
        }
        if self.clock.now().saturating_sub(waited_since) >= LINK_DOWN_FALLBACK_GRACE {
            return down.values().next().cloned();
        }
        None
    }

    /// Relabelled rank of `abs` for a schedule rooted at `root`.
    fn rel_of(&self, abs: usize, root: usize) -> usize {
        (abs + self.size - root) % self.size
    }

    /// Absolute rank of relabelled `rel` for a schedule rooted at `root`.
    fn abs_of(&self, rel: usize, root: usize) -> usize {
        (rel + root) % self.size
    }

    /// Cuts `payload` into pipeline segments, each encoded once into a
    /// pooled frame buffer.
    fn encode_segments(&self, coll: u32, stream: u32, payload: &[u8]) -> Vec<PooledBuf> {
        let seg = self.cfg.seg_size;
        let n = payload.len().div_ceil(seg).max(1);
        (0..n)
            .map(|i| {
                let lo = i * seg;
                let hi = ((i + 1) * seg).min(payload.len());
                encode_frame(
                    &self.pool,
                    self.group,
                    coll,
                    stream,
                    i as u32,
                    n as u32,
                    &payload[lo..hi],
                )
            })
            .collect()
    }

    /// Forwards one received frame verbatim (the relay path).
    fn forward_raw(&self, peer: usize, raw: &[u8]) -> Result<(), CollectiveError> {
        self.links[&peer].send_batch(&[raw])?;
        self.stats.frames_sent.inc();
        self.stats.bytes_sent.add(raw.len() as u64);
        Ok(())
    }

    /// Ships pre-encoded frames to `peer` in one NCS batch.
    fn send_frames(&self, peer: usize, frames: &[PooledBuf]) -> Result<(), CollectiveError> {
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        self.links[&peer].send_batch(&refs)?;
        self.stats.frames_sent.add(frames.len() as u64);
        let bytes: usize = frames.iter().map(|f| f.as_slice().len()).sum();
        self.stats.bytes_sent.add(bytes as u64);
        Ok(())
    }

    /// Segments `payload` once and sends it to one peer.
    fn send_segments(
        &self,
        peer: usize,
        coll: u32,
        stream: u32,
        payload: &[u8],
    ) -> Result<(), CollectiveError> {
        self.send_frames(peer, &self.encode_segments(coll, stream, payload))
    }

    /// Tree/flat fan-out: encode every segment exactly once, then hand the
    /// same frames to each peer's batch path.
    fn fan_out(
        &self,
        peers: impl IntoIterator<Item = usize>,
        coll: u32,
        stream: u32,
        payload: &[u8],
    ) -> Result<(), CollectiveError> {
        let frames = self.encode_segments(coll, stream, payload);
        for p in peers {
            self.send_frames(p, &frames)?;
        }
        Ok(())
    }
}

/// Routes inbound frames to the operation schedules: frames arrive
/// link-ordered but operations consume them `(peer, coll, stream)`-keyed,
/// so early frames (deeper pipelines, later collectives) are stashed.
struct Router {
    inner: Arc<Inner>,
    stash: HashMap<(usize, u32, u32), VecDeque<Seg>>,
}

impl Router {
    fn new(inner: Arc<Inner>) -> Self {
        Router {
            inner,
            stash: HashMap::new(),
        }
    }

    /// Drops stashed frames no operation can consume any more (left behind
    /// by operations that failed mid-schedule).
    fn prune_below(&mut self, coll: u32) {
        self.stash.retain(|&(_, c, _), _| c >= coll);
    }

    /// Receives the next segment of `(peer, coll, stream)`.
    fn recv_seg(
        &mut self,
        peer: usize,
        coll: u32,
        stream: u32,
        deadline: Duration,
    ) -> Result<Seg, CollectiveError> {
        let key = (peer, coll, stream);
        let started = self.inner.clock.now();
        loop {
            // Drain everything already queued before judging the link
            // state or the clock: a frame a now-dead peer delivered
            // before dying must be consumed, not masked by the failure of
            // its link. The drain is bounded (whatever is queued right
            // now) and every iteration falls through to the closed /
            // link-down / deadline checks, so sustained unrelated traffic
            // can delay the verdict by at most one pass over the backlog.
            while let Some((from, frame)) = self.inner.inbox.try_recv() {
                self.stash_frame(from, frame);
            }
            if let Some(s) = self.pop_stash(key) {
                return Ok(s);
            }
            self.inner.check_closed()?;
            // A dead link fails the wait — the frame can never arrive
            // (killed rank, closed connection) and hanging until the op
            // timeout would mask the real failure.
            if let Some(e) = self.inner.link_down_err(peer, started) {
                // The pump records the failure immediately after
                // delivering the link's final frames: drain once more so
                // a frame that slipped in between our drain and this
                // check is consumed, not masked by the error.
                while let Some((from, frame)) = self.inner.inbox.try_recv() {
                    self.stash_frame(from, frame);
                }
                if let Some(s) = self.pop_stash(key) {
                    return Ok(s);
                }
                return Err(CollectiveError::Send(e));
            }
            let now = self.inner.clock.now();
            if now >= deadline {
                return Err(CollectiveError::Timeout);
            }
            let wait = deadline.saturating_sub(now).min(TICK);
            if let Ok((from, frame)) = self.inner.inbox.recv_timeout(wait) {
                self.stash_frame(from, frame);
            }
        }
    }

    /// Pops the next stashed segment of `key`, if any.
    fn pop_stash(&mut self, key: (usize, u32, u32)) -> Option<Seg> {
        let q = self.stash.get_mut(&key)?;
        let s = q.pop_front();
        if q.is_empty() {
            self.stash.remove(&key);
        }
        s
    }

    /// Decodes one inbound frame and stashes its segment.
    fn stash_frame(&mut self, from: usize, frame: Vec<u8>) {
        if let Some(seg) = decode_frame(frame, self.inner.group) {
            self.inner.stats.frames_received.inc();
            self.inner
                .stats
                .bytes_received
                .add(seg.payload().len() as u64);
            self.stash
                .entry((from, seg.coll, seg.stream))
                .or_default()
                .push_back(seg);
        }
    }

    /// Receives and reassembles a whole segmented transfer.
    fn recv_payload(
        &mut self,
        peer: usize,
        coll: u32,
        stream: u32,
        deadline: Duration,
    ) -> Result<Vec<u8>, CollectiveError> {
        let first = self.recv_seg(peer, coll, stream, deadline)?;
        if first.seg != 0 {
            return Err(CollectiveError::Protocol(format!(
                "transfer started at segment {} (expected 0)",
                first.seg
            )));
        }
        let total = first.total;
        if total == 1 {
            // Hot path: hand the single segment's payload over without a
            // copy (the header is drained off the received frame).
            let mut raw = first.raw;
            raw.drain(..crate::frame::COLL_OVERHEAD);
            return Ok(raw);
        }
        let mut out = first.payload().to_vec();
        for i in 1..total {
            let s = self.recv_seg(peer, coll, stream, deadline)?;
            if s.seg != i || s.total != total {
                return Err(CollectiveError::Protocol(format!(
                    "segment {}/{} arrived where {i}/{total} was expected",
                    s.seg, s.total
                )));
            }
            out.extend_from_slice(s.payload());
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Operation schedules (run on the progress thread)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn op_broadcast(
    inner: &Inner,
    router: &mut Router,
    coll: u32,
    stream: u32,
    payload: Vec<u8>,
    root: usize,
    topo: Topology,
    expect_len: usize,
    deadline: Duration,
) -> Result<Vec<u8>, CollectiveError> {
    let size = inner.size;
    if size == 1 {
        return Ok(payload);
    }
    let rel = inner.rel_of(inner.rank, root);
    let out = match topo {
        Topology::Flat => {
            if rel == 0 {
                inner.fan_out(
                    (0..size).filter(|&p| p != inner.rank),
                    coll,
                    stream,
                    &payload,
                )?;
                payload
            } else {
                router.recv_payload(root, coll, stream, deadline)?
            }
        }
        Topology::BinomialTree => {
            let children = tree_children(rel, size);
            if rel == 0 {
                inner.fan_out(
                    children.iter().map(|&(c, _)| inner.abs_of(c, root)),
                    coll,
                    stream,
                    &payload,
                )?;
                payload
            } else {
                // Pipelined store-and-forward: each segment is relayed to
                // the children the moment it arrives, bytes verbatim.
                let parent = inner.abs_of(tree_parent(rel, size).expect("rel > 0"), root);
                relay_segments(router, coll, stream, parent, deadline, |raw| {
                    children
                        .iter()
                        .map(|&(c, _)| inner.abs_of(c, root))
                        .try_for_each(|child| inner.forward_raw(child, raw))
                })?
            }
        }
        Topology::Ring => {
            if rel == 0 {
                inner.send_segments(inner.abs_of(1, root), coll, stream, &payload)?;
                payload
            } else {
                let prev = inner.abs_of(rel - 1, root);
                let next = (rel + 1 < size).then(|| inner.abs_of(rel + 1, root));
                relay_segments(router, coll, stream, prev, deadline, |raw| match next {
                    Some(n) => inner.forward_raw(n, raw),
                    None => Ok(()),
                })?
            }
        }
    };
    if out.len() != expect_len {
        return Err(CollectiveError::Protocol(format!(
            "broadcast delivered {} bytes where this member expected {expect_len} \
             (every member must pass a same-length buffer)",
            out.len()
        )));
    }
    Ok(out)
}

/// Receives a segmented transfer from `from`, handing each segment's raw
/// frame bytes to `forward` (re-transmitted verbatim — no re-encode)
/// before appending its payload to the result: the pipelined
/// store-and-forward relay at the heart of tree and ring broadcasts.
fn relay_segments(
    router: &mut Router,
    coll: u32,
    stream: u32,
    from: usize,
    deadline: Duration,
    mut forward: impl FnMut(&[u8]) -> Result<(), CollectiveError>,
) -> Result<Vec<u8>, CollectiveError> {
    let mut out = Vec::new();
    let mut next = 0u32;
    let mut total = 1u32;
    while next < total {
        let s = router.recv_seg(from, coll, stream, deadline)?;
        if s.seg != next {
            return Err(CollectiveError::Protocol(format!(
                "segment {} arrived where {next} was expected",
                s.seg
            )));
        }
        total = s.total;
        forward(&s.raw)?;
        if total == 1 {
            let mut raw = s.raw;
            raw.drain(..crate::frame::COLL_OVERHEAD);
            return Ok(raw);
        }
        out.extend_from_slice(s.payload());
        next += 1;
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn op_reduce(
    inner: &Inner,
    router: &mut Router,
    coll: u32,
    stream: u32,
    mut acc: Vec<u8>,
    root: usize,
    topo: Topology,
    dtype: DType,
    op: ReduceOp,
    deadline: Duration,
) -> Result<Vec<u8>, CollectiveError> {
    let size = inner.size;
    if size == 1 {
        return Ok(acc);
    }
    let rel = inner.rel_of(inner.rank, root);
    match topo {
        Topology::Flat => {
            if rel == 0 {
                for p in 1..size {
                    let v = router.recv_payload(inner.abs_of(p, root), coll, stream, deadline)?;
                    fold_into(dtype, op, &mut acc, &v)?;
                }
                Ok(acc)
            } else {
                inner.send_segments(root, coll, stream, &acc)?;
                Ok(Vec::new())
            }
        }
        // A reduction has no pipeline to win from a chain; ring requests
        // run the tree schedule.
        Topology::BinomialTree | Topology::Ring => {
            for (c, _) in tree_children(rel, size) {
                let v = router.recv_payload(inner.abs_of(c, root), coll, stream, deadline)?;
                fold_into(dtype, op, &mut acc, &v)?;
            }
            match tree_parent(rel, size) {
                Some(p) => {
                    inner.send_segments(inner.abs_of(p, root), coll, stream, &acc)?;
                    Ok(Vec::new())
                }
                None => Ok(acc),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn op_scatter(
    inner: &Inner,
    router: &mut Router,
    coll: u32,
    stream: u32,
    payload: Vec<u8>,
    root: usize,
    topo: Topology,
    deadline: Duration,
) -> Result<Vec<u8>, CollectiveError> {
    let size = inner.size;
    if size == 1 {
        return Ok(payload);
    }
    let rel = inner.rel_of(inner.rank, root);
    // The root re-orders its rank-major buffer into relabelled order so
    // every subtree is one contiguous byte range.
    let (buf, span, chunk) = if rel == 0 {
        if !payload.len().is_multiple_of(size) {
            return Err(CollectiveError::BadArg(format!(
                "scatter payload of {} bytes does not divide into {size} chunks",
                payload.len()
            )));
        }
        let chunk = payload.len() / size;
        let mut rel_buf = Vec::with_capacity(payload.len());
        for x in 0..size {
            let r = inner.abs_of(x, root);
            rel_buf.extend_from_slice(&payload[r * chunk..(r + 1) * chunk]);
        }
        (rel_buf, size, chunk)
    } else {
        match topo {
            Topology::Flat => {
                let own = router.recv_payload(root, coll, stream, deadline)?;
                return Ok(own);
            }
            Topology::BinomialTree | Topology::Ring => {
                let parent = inner.abs_of(tree_parent(rel, size).expect("rel > 0"), root);
                let buf = router.recv_payload(parent, coll, stream, deadline)?;
                let span = tree_span(rel, size);
                if span == 0 || buf.len() % span != 0 {
                    return Err(CollectiveError::Protocol(format!(
                        "scatter subtree of {} bytes does not divide across {span} members",
                        buf.len()
                    )));
                }
                let chunk = buf.len() / span;
                (buf, span, chunk)
            }
        }
    };
    match topo {
        Topology::Flat => {
            // Only the root reaches here.
            for x in 1..span {
                inner.send_segments(
                    inner.abs_of(x, root),
                    coll,
                    stream,
                    &buf[x * chunk..(x + 1) * chunk],
                )?;
            }
        }
        Topology::BinomialTree | Topology::Ring => {
            for (c, c_span) in tree_children(rel, size) {
                let lo = (c - rel) * chunk;
                inner.send_segments(
                    inner.abs_of(c, root),
                    coll,
                    stream,
                    &buf[lo..lo + c_span * chunk],
                )?;
            }
        }
    }
    Ok(buf[..chunk].to_vec())
}

#[allow(clippy::too_many_arguments)]
fn op_gather(
    inner: &Inner,
    router: &mut Router,
    coll: u32,
    stream: u32,
    contrib: Vec<u8>,
    root: usize,
    topo: Topology,
    deadline: Duration,
) -> Result<Vec<u8>, CollectiveError> {
    let size = inner.size;
    if size == 1 {
        return Ok(contrib);
    }
    let rel = inner.rel_of(inner.rank, root);
    let chunk = contrib.len();
    let rel_buf = match topo {
        Topology::Flat => {
            if rel != 0 {
                inner.send_segments(root, coll, stream, &contrib)?;
                return Ok(Vec::new());
            }
            let mut buf = vec![0u8; size * chunk];
            buf[..chunk].copy_from_slice(&contrib);
            for x in 1..size {
                let v = router.recv_payload(inner.abs_of(x, root), coll, stream, deadline)?;
                if v.len() != chunk {
                    return Err(mismatched_contribution(v.len(), chunk));
                }
                buf[x * chunk..(x + 1) * chunk].copy_from_slice(&v);
            }
            buf
        }
        Topology::BinomialTree | Topology::Ring => {
            let span = tree_span(rel, size);
            let mut buf = vec![0u8; span * chunk];
            buf[..chunk].copy_from_slice(&contrib);
            for (c, c_span) in tree_children(rel, size) {
                let v = router.recv_payload(inner.abs_of(c, root), coll, stream, deadline)?;
                if v.len() != c_span * chunk {
                    return Err(mismatched_contribution(v.len(), c_span * chunk));
                }
                let lo = (c - rel) * chunk;
                buf[lo..lo + v.len()].copy_from_slice(&v);
            }
            match tree_parent(rel, size) {
                Some(p) => {
                    inner.send_segments(inner.abs_of(p, root), coll, stream, &buf)?;
                    return Ok(Vec::new());
                }
                None => buf,
            }
        }
    };
    // Back to rank-major order for the caller.
    let mut out = Vec::with_capacity(rel_buf.len());
    for r in 0..size {
        let x = inner.rel_of(r, root);
        out.extend_from_slice(&rel_buf[x * chunk..(x + 1) * chunk]);
    }
    Ok(out)
}

fn mismatched_contribution(got: usize, want: usize) -> CollectiveError {
    CollectiveError::Protocol(format!(
        "gather contribution of {got} bytes where {want} were expected \
         (every member must contribute equally)"
    ))
}

fn op_allgather_ring(
    inner: &Inner,
    router: &mut Router,
    coll: u32,
    contrib: Vec<u8>,
    deadline: Duration,
) -> Result<Vec<u8>, CollectiveError> {
    let size = inner.size;
    let rank = inner.rank;
    let chunk = contrib.len();
    let mut out = vec![0u8; size * chunk];
    out[rank * chunk..(rank + 1) * chunk].copy_from_slice(&contrib);
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    // Round r: pass along the block that originated r hops behind us.
    for round in 0..size - 1 {
        let send_block = (rank + size - round) % size;
        inner.send_segments(
            right,
            coll,
            round as u32,
            &out[send_block * chunk..(send_block + 1) * chunk],
        )?;
        let recv_block = (rank + size - round - 1) % size;
        let v = router.recv_payload(left, coll, round as u32, deadline)?;
        if v.len() != chunk {
            return Err(mismatched_contribution(v.len(), chunk));
        }
        out[recv_block * chunk..(recv_block + 1) * chunk].copy_from_slice(&v);
    }
    Ok(out)
}

fn op_barrier(
    inner: &Inner,
    router: &mut Router,
    coll: u32,
    deadline: Duration,
) -> Result<(), CollectiveError> {
    // Dissemination barrier: ⌈log₂ n⌉ rounds, no root hotspot, and every
    // member leaves only after transitively hearing from every other.
    let size = inner.size;
    let rank = inner.rank;
    let mut dist = 1;
    let mut round = 0u32;
    while dist < size {
        inner.send_segments((rank + dist) % size, coll, round, &[])?;
        router.recv_seg((rank + size - dist) % size, coll, round, deadline)?;
        dist *= 2;
        round += 1;
    }
    Ok(())
}

fn run_op(
    inner: &Inner,
    router: &mut Router,
    req: &mut OpRequest,
) -> Result<Vec<u8>, CollectiveError> {
    let deadline = inner.clock.now() + req.timeout;
    let payload = std::mem::take(&mut req.payload);
    let coll = req.coll;
    match req.kind {
        OpKind::Broadcast => op_broadcast(
            inner,
            router,
            coll,
            0,
            payload,
            req.root,
            req.topo,
            req.expect_len,
            deadline,
        ),
        OpKind::Reduce => {
            let (dtype, op) = req.combine.expect("reduce carries a combine");
            op_reduce(
                inner, router, coll, 0, payload, req.root, req.topo, dtype, op, deadline,
            )
        }
        OpKind::Allreduce => {
            let (dtype, op) = req.combine.expect("allreduce carries a combine");
            let expect = payload.len();
            let acc = op_reduce(
                inner, router, coll, 0, payload, req.root, req.topo, dtype, op, deadline,
            )?;
            // `acc` is the full reduction at the root, empty elsewhere.
            op_broadcast(
                inner, router, coll, 1, acc, req.root, req.topo2, expect, deadline,
            )
        }
        OpKind::Scatter => op_scatter(
            inner, router, coll, 0, payload, req.root, req.topo, deadline,
        ),
        OpKind::Gather => op_gather(
            inner, router, coll, 0, payload, req.root, req.topo, deadline,
        ),
        OpKind::Allgather => match req.topo {
            Topology::Ring => op_allgather_ring(inner, router, coll, payload, deadline),
            _ => {
                let chunk = payload.len();
                let all = op_gather(
                    inner, router, coll, 0, payload, req.root, req.topo, deadline,
                )?;
                op_broadcast(
                    inner,
                    router,
                    coll,
                    1,
                    all,
                    req.root,
                    req.topo2,
                    chunk * inner.size,
                    deadline,
                )
            }
        },
        OpKind::Barrier => op_barrier(inner, router, coll, deadline).map(|()| Vec::new()),
    }
}

// ---------------------------------------------------------------------------
// Progress (on demand)
// ---------------------------------------------------------------------------

/// Ensures a progress runner is servicing the operation queue, borrowing
/// a blocking-lane thread from the reactor if none is. The
/// `progress_active` swap makes the claim exclusive: exactly one runner
/// exists while operations are queued, zero once the queue drains.
fn kick_progress(inner: &Arc<Inner>, router: &Arc<Mutex<Option<Router>>>) {
    if inner.progress_active.swap(true, Ordering::AcqRel) {
        return;
    }
    let i = Arc::clone(inner);
    let r = Arc::clone(router);
    inner
        .reactor
        .spawn_blocking(Box::new(move || run_progress(&i, &r)));
}

/// The progress runner: executes queued operations in submission order,
/// then releases its thread. Schedules block legitimately (waiting on
/// peers' frames), which is why this runs on the blocking lane and not a
/// reactor event loop.
fn run_progress(inner: &Arc<Inner>, router: &Arc<Mutex<Option<Router>>>) {
    loop {
        let Some(mut req) = inner.ops.try_recv() else {
            inner.progress_active.store(false, Ordering::Release);
            // A submission may have slipped in between the drain and the
            // release; reclaim the runner role unless its kick already
            // spawned a successor.
            if inner.ops.is_empty() || inner.progress_active.swap(true, Ordering::AcqRel) {
                return;
            }
            continue;
        };
        if let Err(e) = inner.check_closed() {
            req.done.complete(Err(e));
            continue;
        }
        let result = {
            // Held across the operation: the router's stash (early frames
            // for later collectives) must survive between runner
            // incarnations, and close()/drop synchronise on this lock.
            let mut guard = router.lock();
            let r = guard.get_or_insert_with(|| Router::new(Arc::clone(inner)));
            r.prune_below(req.coll);
            run_op(inner, r, &mut req)
        };
        inner.stats.ops_completed.inc();
        req.done.complete(result);
    }
}

// ---------------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------------

/// One member's endpoint of a collective group.
///
/// Built over dedicated pairwise NCS connections (a full mesh, as
/// [`ncs_core::NcsGroup`] uses); the group owns their receive queues
/// (through [`NcsConnection::set_receive_sink`]), so do not share the
/// connections with point-to-point traffic.
///
/// The group holds **no standing threads**: link traffic flows in through
/// receive sinks driven by the node's readiness reactor, and a progress
/// runner borrows a blocking-lane thread only while operations are
/// queued. Application threads *submit* operations and keep computing;
/// the runner executes the communication schedules and resolves the
/// [`CollectiveHandle`]s.
///
/// **Ordering contract** (as MPI): collective calls must be issued in the
/// same order on every member. Within one member, concurrent submissions
/// are serialised — submission order is execution order. Operations
/// pipeline: many may be outstanding, executed in submission order, with
/// early-arriving frames for later operations stashed by the engine's
/// router. See the [crate docs](crate) for a usage example.
pub struct CollectiveGroup {
    inner: Arc<Inner>,
    /// The router (frame stash) shared by successive progress-runner
    /// incarnations. Lives outside `Inner` so the `Router -> Inner` Arc
    /// is not a cycle.
    router: Arc<Mutex<Option<Router>>>,
}

impl std::fmt::Debug for CollectiveGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveGroup")
            .field("id", &self.inner.group)
            .field("rank", &self.inner.rank)
            .field("size", &self.inner.size)
            .finish()
    }
}

impl CollectiveGroup {
    /// Forms collective group `id` with this member at `rank`, over
    /// `links` mapping every other member's rank to an established
    /// connection, with the default [`CollectiveConfig`].
    ///
    /// # Errors
    ///
    /// [`CollectiveError::BadArg`] unless `links` covers exactly the ranks
    /// `0..size` minus `rank`.
    pub fn new(
        node: &NcsNode,
        id: u32,
        rank: usize,
        links: HashMap<usize, NcsConnection>,
    ) -> Result<Self, CollectiveError> {
        Self::with_config(node, id, rank, links, CollectiveConfig::default())
    }

    /// [`CollectiveGroup::new`] with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::new`].
    pub fn with_config(
        node: &NcsNode,
        id: u32,
        rank: usize,
        links: HashMap<usize, NcsConnection>,
        cfg: CollectiveConfig,
    ) -> Result<Self, CollectiveError> {
        let size = links.len() + 1;
        if links.contains_key(&rank) {
            return Err(CollectiveError::BadArg(format!(
                "links must not include own rank {rank}"
            )));
        }
        for r in 0..size {
            if r != rank && !links.contains_key(&r) {
                return Err(CollectiveError::BadArg(format!(
                    "missing link to rank {r} (size {size})"
                )));
            }
        }
        if cfg.seg_size == 0 {
            return Err(CollectiveError::BadArg("seg_size must be positive".into()));
        }
        let inner = Arc::new(Inner {
            group: id,
            rank,
            size,
            cfg,
            links,
            pool: node.buffer_pool(),
            reactor: node.reactor(),
            ops: Mailbox::unbounded(),
            inbox: Mailbox::unbounded(),
            next_coll: AtomicU32::new(0),
            submit_lock: Mutex::new(()),
            progress_active: AtomicBool::new(false),
            closed: Arc::new(AtomicBool::new(false)),
            view_changed: AtomicU64::new(0),
            link_down: Mutex::new(HashMap::new()),
            clock: node.clock(),
            stats: StatCounters::registered(&node.registry(), id),
        });
        // Take ownership of every link's untagged receive stream: the
        // reactor task that reassembles a frame pushes it straight into
        // the member's inbox (no pump thread parked on recv), and a dying
        // link records itself so waiting schedules fail promptly.
        for (&peer, conn) in &inner.links {
            let i = Arc::clone(&inner);
            conn.set_receive_sink(Some(Arc::new(move |res| match res {
                Ok(view) => i.inbox.send((peer, view.into_vec())),
                Err(e) => {
                    i.link_down.lock().insert(peer, e);
                }
            })));
        }
        Ok(CollectiveGroup {
            inner,
            router: Arc::new(Mutex::new(None)),
        })
    }

    /// This member's rank.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// Group size (members).
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// The group's configuration.
    pub fn config(&self) -> CollectiveConfig {
        self.inner.cfg
    }

    /// Engine counters.
    pub fn stats(&self) -> CollectiveStats {
        let s = &self.inner.stats;
        CollectiveStats {
            ops_completed: s.ops_completed.get(),
            frames_sent: s.frames_sent.get(),
            frames_received: s.frames_received.get(),
            bytes_sent: s.bytes_sent.get(),
            bytes_received: s.bytes_received.get(),
        }
    }

    /// Leaves the group: detaches the link sinks, fails any queued
    /// operations with [`CollectiveError::Closed`] and aborts the one in
    /// flight (its schedule observes the flag within a tick). The
    /// underlying connections remain open (owned by the caller's node).
    /// Idempotent.
    pub fn close(&self) {
        if self.inner.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Give the links their receive queues back (also breaks the
        // sink -> Inner reference cycle).
        for conn in self.inner.links.values() {
            conn.set_receive_sink(None);
        }
        // Fail everything still queued so no waiter hangs. A submission
        // racing this drain is caught by the runner's own closed check.
        while let Some(req) = self.inner.ops.try_recv() {
            req.done.complete(Err(CollectiveError::Closed));
        }
    }

    /// Marks the group invalidated by membership `epoch`: every queued
    /// operation fails at once with [`CollectiveError::ViewChanged`], the
    /// operation in flight observes the change within a tick of its
    /// schedule, and all future submissions are refused with the same
    /// error. First abort wins (later epochs don't overwrite the one that
    /// killed the group); returns whether this call did the aborting.
    ///
    /// The group stays closed to traffic afterwards — rebuild a fresh
    /// group over links matching the new view and retry there.
    pub fn abort_view_changed(&self, epoch: u64) -> bool {
        self.inner.abort_view_changed(epoch)
    }

    /// A weak handle through which a membership layer can abort this
    /// group on view change without keeping it alive (a dropped group
    /// makes the handle inert).
    pub fn view_abort_handle(&self) -> ViewAbortHandle {
        ViewAbortHandle(Arc::downgrade(&self.inner))
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        kind: OpKind,
        root: usize,
        payload: Vec<u8>,
        expect_len: usize,
        topo: Topology,
        topo2: Topology,
        combine: Option<(DType, ReduceOp)>,
    ) -> Result<Arc<OpCompletion>, CollectiveError> {
        self.inner.check_closed()?;
        if root >= self.inner.size {
            return Err(CollectiveError::BadArg(format!(
                "root {root} out of range for group of {}",
                self.inner.size
            )));
        }
        let done = OpCompletion::new();
        let _order = self.inner.submit_lock.lock();
        let coll = self.inner.next_coll.fetch_add(1, Ordering::Relaxed);
        self.inner.ops.send(OpRequest {
            coll,
            kind,
            topo,
            topo2,
            root,
            payload,
            expect_len,
            combine,
            timeout: self.inner.cfg.op_timeout,
            done: Arc::clone(&done),
        });
        kick_progress(&self.inner, &self.router);
        Ok(done)
    }

    // -- broadcast ---------------------------------------------------------

    /// Nonblocking broadcast from `root`.
    ///
    /// In-out buffer semantics (as MPI's `MPI_Bcast`): **every member must
    /// pass a buffer of the same length** — the root's contents are
    /// distributed, the others' are replaced. The shared length is what
    /// lets every member select the same topology independently.
    ///
    /// # Errors
    ///
    /// [`CollectiveError::BadArg`] / [`CollectiveError::Closed`] at
    /// submission; the operation's own errors surface on the handle.
    pub fn ibroadcast<T: Scalar>(
        &self,
        root: usize,
        buf: Vec<T>,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        let bytes = buf.len() * T::DTYPE.elem_size();
        let topo = self
            .inner
            .cfg
            .policy
            .select(OpClass::Broadcast, self.inner.size, bytes);
        self.ibroadcast_with(root, buf, topo)
    }

    /// [`CollectiveGroup::ibroadcast`] over an explicit topology (every
    /// member must pass the same one).
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::ibroadcast`].
    pub fn ibroadcast_with<T: Scalar>(
        &self,
        root: usize,
        buf: Vec<T>,
        topo: Topology,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        let expect = buf.len() * T::DTYPE.elem_size();
        let payload = if self.inner.rank == root {
            to_bytes(&buf)
        } else {
            Vec::new()
        };
        let done = self.submit(OpKind::Broadcast, root, payload, expect, topo, topo, None)?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::ibroadcast`].
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn broadcast<T: Scalar>(
        &self,
        root: usize,
        buf: Vec<T>,
    ) -> Result<Vec<T>, CollectiveError> {
        self.ibroadcast(root, buf)?.wait()
    }

    /// Blocking [`CollectiveGroup::ibroadcast_with`].
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn broadcast_with<T: Scalar>(
        &self,
        root: usize,
        buf: Vec<T>,
        topo: Topology,
    ) -> Result<Vec<T>, CollectiveError> {
        self.ibroadcast_with(root, buf, topo)?.wait()
    }

    // -- reduce / allreduce ------------------------------------------------

    /// Nonblocking reduction to `root`: every member contributes an
    /// equal-length vector; the handle resolves to the elementwise
    /// reduction at the root and to an empty vector elsewhere.
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::ibroadcast`].
    pub fn ireduce<T: Scalar>(
        &self,
        root: usize,
        contrib: Vec<T>,
        op: ReduceOp,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        let topo = self.inner.cfg.policy.select(
            OpClass::Reduce,
            self.inner.size,
            contrib.len() * T::DTYPE.elem_size(),
        );
        let done = self.submit(
            OpKind::Reduce,
            root,
            to_bytes(&contrib),
            0,
            topo,
            topo,
            Some((T::DTYPE, op)),
        )?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::ireduce`]: `Some(result)` at the root,
    /// `None` elsewhere.
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn reduce<T: Scalar>(
        &self,
        root: usize,
        contrib: Vec<T>,
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>, CollectiveError> {
        let v = self.ireduce(root, contrib, op)?.wait()?;
        Ok((self.inner.rank == root).then_some(v))
    }

    /// Nonblocking allreduce (reduce to rank 0, then broadcast): the
    /// handle resolves to the full reduction on every member.
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::ibroadcast`].
    pub fn iallreduce<T: Scalar>(
        &self,
        contrib: Vec<T>,
        op: ReduceOp,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        let bytes = contrib.len() * T::DTYPE.elem_size();
        let policy = &self.inner.cfg.policy;
        let topo = policy.select(OpClass::Reduce, self.inner.size, bytes);
        let topo2 = policy.select(OpClass::Broadcast, self.inner.size, bytes);
        let done = self.submit(
            OpKind::Allreduce,
            0,
            to_bytes(&contrib),
            0,
            topo,
            topo2,
            Some((T::DTYPE, op)),
        )?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::iallreduce`].
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn allreduce<T: Scalar>(
        &self,
        contrib: Vec<T>,
        op: ReduceOp,
    ) -> Result<Vec<T>, CollectiveError> {
        self.iallreduce(contrib, op)?.wait()
    }

    // -- scatter / gather / allgather -------------------------------------

    /// Nonblocking scatter from `root`: the root's vector is cut into
    /// `size` equal chunks and chunk `r` is delivered to rank `r` (other
    /// members pass an empty vector). The handle resolves to this member's
    /// chunk.
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::ibroadcast`], plus
    /// [`CollectiveError::BadArg`] at the root when the vector does not
    /// divide evenly.
    pub fn iscatter<T: Scalar>(
        &self,
        root: usize,
        data: Vec<T>,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        if self.inner.rank == root && !data.len().is_multiple_of(self.inner.size) {
            return Err(CollectiveError::BadArg(format!(
                "scatter of {} elements does not divide across {} members",
                data.len(),
                self.inner.size
            )));
        }
        let topo = self
            .inner
            .cfg
            .policy
            .select(OpClass::Scatter, self.inner.size, 0);
        let done = self.submit(OpKind::Scatter, root, to_bytes(&data), 0, topo, topo, None)?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::iscatter`].
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn scatter<T: Scalar>(&self, root: usize, data: Vec<T>) -> Result<Vec<T>, CollectiveError> {
        self.iscatter(root, data)?.wait()
    }

    /// Nonblocking gather to `root`: every member contributes an
    /// equal-length vector; the handle resolves to the rank-ordered
    /// concatenation at the root and to an empty vector elsewhere.
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::ibroadcast`].
    pub fn igather<T: Scalar>(
        &self,
        root: usize,
        contrib: Vec<T>,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        let topo = self
            .inner
            .cfg
            .policy
            .select(OpClass::Gather, self.inner.size, 0);
        let done = self.submit(
            OpKind::Gather,
            root,
            to_bytes(&contrib),
            0,
            topo,
            topo,
            None,
        )?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::igather`]: `Some(concatenation)` at the
    /// root, `None` elsewhere.
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn gather<T: Scalar>(
        &self,
        root: usize,
        contrib: Vec<T>,
    ) -> Result<Option<Vec<T>>, CollectiveError> {
        let v = self.igather(root, contrib)?.wait()?;
        Ok((self.inner.rank == root).then_some(v))
    }

    /// Nonblocking allgather: every member contributes an equal-length
    /// vector and the handle resolves to the rank-ordered concatenation on
    /// every member.
    ///
    /// # Errors
    ///
    /// As [`CollectiveGroup::ibroadcast`].
    pub fn iallgather<T: Scalar>(
        &self,
        contrib: Vec<T>,
    ) -> Result<CollectiveHandle<Vec<T>>, CollectiveError> {
        let bytes = contrib.len() * T::DTYPE.elem_size();
        let policy = &self.inner.cfg.policy;
        let topo = policy.select(OpClass::Allgather, self.inner.size, bytes);
        let topo2 = policy.select(
            OpClass::Broadcast,
            self.inner.size,
            bytes.saturating_mul(self.inner.size),
        );
        let done = self.submit(
            OpKind::Allgather,
            0,
            to_bytes(&contrib),
            0,
            topo,
            topo2,
            None,
        )?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::iallgather`].
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn allgather<T: Scalar>(&self, contrib: Vec<T>) -> Result<Vec<T>, CollectiveError> {
        self.iallgather(contrib)?.wait()
    }

    // -- barrier -----------------------------------------------------------

    /// Nonblocking barrier (dissemination schedule, `⌈log₂ n⌉` rounds):
    /// the handle resolves once every member has entered the barrier.
    ///
    /// # Errors
    ///
    /// [`CollectiveError::Closed`] at submission.
    pub fn ibarrier(&self) -> Result<CollectiveHandle<()>, CollectiveError> {
        let done = self.submit(
            OpKind::Barrier,
            0,
            Vec::new(),
            0,
            Topology::Flat,
            Topology::Flat,
            None,
        )?;
        Ok(CollectiveHandle::new(done))
    }

    /// Blocking [`CollectiveGroup::ibarrier`].
    ///
    /// # Errors
    ///
    /// See [`CollectiveError`].
    pub fn barrier(&self) -> Result<(), CollectiveError> {
        self.ibarrier()?.wait()
    }
}

impl Drop for CollectiveGroup {
    fn drop(&mut self) {
        self.close();
        // Synchronise with an in-flight operation (its schedule aborts on
        // the closed flag within a tick) and drop the frame stash.
        *self.router.lock() = None;
    }
}

/// A weak abort handle onto one [`CollectiveGroup`], held by a
/// membership layer (e.g. `ncs-runtime`'s `ClusterNode`): when the
/// world's view changes, [`ViewAbortHandle::abort`] fails the group fast
/// with [`CollectiveError::ViewChanged`] so no collective idles out its
/// timeout against a member that will never answer. Weak on purpose —
/// watching a group must not keep it alive, and aborting an
/// already-dropped group is a no-op.
pub struct ViewAbortHandle(Weak<Inner>);

impl std::fmt::Debug for ViewAbortHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewAbortHandle")
            .field("live", &(self.0.strong_count() > 0))
            .finish()
    }
}

impl ViewAbortHandle {
    /// Aborts the watched group under membership `epoch` (see
    /// [`CollectiveGroup::abort_view_changed`]). Returns `false` when the
    /// group is already gone or already aborted.
    pub fn abort(&self, epoch: u64) -> bool {
        self.0
            .upgrade()
            .is_some_and(|i| i.abort_view_changed(epoch))
    }

    /// Whether the watched group still exists.
    pub fn is_live(&self) -> bool {
        self.0.strong_count() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_is_validated() {
        let node = NcsNode::builder("solo").build();
        // A singleton group is valid.
        let g = CollectiveGroup::new(&node, 1, 0, HashMap::new()).unwrap();
        assert_eq!(g.size(), 1);
        assert_eq!(g.rank(), 0);
        // Singleton collectives complete locally.
        assert_eq!(g.allreduce(vec![3u32], ReduceOp::Sum).unwrap(), vec![3]);
        assert_eq!(g.broadcast(0, vec![1u8, 2]).unwrap(), vec![1, 2]);
        assert_eq!(g.scatter(0, vec![9i64]).unwrap(), vec![9]);
        assert_eq!(g.gather(0, vec![4f32]).unwrap(), Some(vec![4.0]));
        assert_eq!(g.allgather(vec![5u64]).unwrap(), vec![5]);
        g.barrier().unwrap();
        assert!(g.stats().ops_completed >= 6);
        // Root out of range is rejected at submission.
        assert!(matches!(
            g.broadcast(3, vec![0u8]),
            Err(CollectiveError::BadArg(_))
        ));
        drop(g);
        node.shutdown();
    }

    #[test]
    fn zero_seg_size_rejected() {
        let node = NcsNode::builder("cfg").build();
        let cfg = CollectiveConfig {
            seg_size: 0,
            ..CollectiveConfig::default()
        };
        assert!(matches!(
            CollectiveGroup::with_config(&node, 1, 0, HashMap::new(), cfg),
            Err(CollectiveError::BadArg(_))
        ));
        node.shutdown();
    }

    #[test]
    fn closed_group_rejects_submissions() {
        let node = NcsNode::builder("closer").build();
        let g = CollectiveGroup::new(&node, 1, 0, HashMap::new()).unwrap();
        g.close();
        assert!(matches!(g.barrier(), Err(CollectiveError::Closed)));
        drop(g);
        node.shutdown();
    }

    #[test]
    fn view_abort_fails_fast_and_sticks() {
        let node = NcsNode::builder("elastic").build();
        let g = CollectiveGroup::new(&node, 1, 0, HashMap::new()).unwrap();
        let handle = g.view_abort_handle();
        assert!(handle.is_live());
        // First abort wins; the losing epoch reports false.
        assert!(handle.abort(7));
        assert!(!handle.abort(8));
        assert!(!g.abort_view_changed(9));
        // Submissions fail with the aborting epoch, not a generic close.
        assert!(matches!(
            g.barrier(),
            Err(CollectiveError::ViewChanged { epoch: 7 })
        ));
        // Even after close(), waiters learn *why* the topology died.
        g.close();
        assert!(matches!(
            g.allreduce(vec![1u32], ReduceOp::Sum),
            Err(CollectiveError::ViewChanged { epoch: 7 })
        ));
        drop(g);
        assert!(!handle.is_live());
        assert!(!handle.abort(10), "aborting a dropped group is a no-op");
        node.shutdown();
    }

    #[test]
    fn view_abort_drains_queued_operations() {
        // A two-member group where the peer never participates: the
        // submitted op can only hang on the peer's frames — until the
        // view abort fails it fast (well before its op timeout).
        let node = NcsNode::builder("survivor").build();
        let peer = NcsNode::builder("ghost").build();
        let (ln, lp) = ncs_core::link::HpiLinkPair::with_capacity(256);
        node.attach_peer("ghost", ln);
        peer.attach_peer("survivor", lp);
        let conn = node
            .connect("ghost", ncs_core::ConnectionConfig::unreliable())
            .unwrap();
        let _peer_side = peer.accept_default().unwrap();
        let g = CollectiveGroup::new(&node, 1, 0, HashMap::from([(1usize, conn)])).unwrap();
        let h = g.iallreduce(vec![1.0f64], ReduceOp::Sum).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(g.abort_view_changed(3));
        assert_eq!(
            h.wait(),
            Err(CollectiveError::ViewChanged { epoch: 3 }),
            "in-flight op must fail fast on view change"
        );
        drop(g);
        node.shutdown();
        peer.shutdown();
    }
}
