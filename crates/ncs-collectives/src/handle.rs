//! Nonblocking completion handles and collective errors.

use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

use ncs_core::{Completion, SendError};
use ncs_threads::sync::Event;
use parking_lot::Mutex;

use crate::datatype::{from_bytes, Scalar};

/// Errors from collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// The group (or an underlying connection) was closed.
    Closed,
    /// The world's membership view changed (a member died, left, or
    /// joined) while this operation was in flight. The group's topology
    /// no longer matches reality: close this group and build a fresh one
    /// against the new view (see `ncs-runtime`'s membership module),
    /// then retry the operation there.
    ViewChanged {
        /// The membership epoch that invalidated the group.
        epoch: u64,
    },
    /// The operation did not complete in time — usually a member that
    /// never issued the matching call.
    Timeout,
    /// A group link failed.
    Send(SendError),
    /// Invalid argument (root out of range, non-divisible scatter payload).
    BadArg(String),
    /// Members disagreed about the operation (mismatched contribution
    /// sizes, malformed frames) or a result was consumed twice.
    Protocol(String),
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Closed => write!(f, "collective group closed"),
            CollectiveError::ViewChanged { epoch } => {
                write!(f, "group view changed (epoch {epoch}); rebuild the group")
            }
            CollectiveError::Timeout => write!(f, "collective operation timed out"),
            CollectiveError::Send(e) => write!(f, "group link failure: {e}"),
            CollectiveError::BadArg(why) => write!(f, "bad collective argument: {why}"),
            CollectiveError::Protocol(why) => write!(f, "collective protocol violation: {why}"),
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<SendError> for CollectiveError {
    fn from(e: SendError) -> Self {
        match e {
            SendError::Closed => CollectiveError::Closed,
            SendError::Timeout => CollectiveError::Timeout,
            other => CollectiveError::Send(other),
        }
    }
}

/// The progress runner's completion slot for one submitted operation.
pub(crate) struct OpCompletion {
    result: Mutex<Option<Result<Vec<u8>, CollectiveError>>>,
    done: Event,
    /// Wait-set subscribers ([`Completion::subscribe`]), drained on
    /// completion.
    notify: Mutex<Vec<ncs_core::CompletionNotify>>,
}

impl std::fmt::Debug for OpCompletion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpCompletion")
            .field("complete", &self.done.is_fired())
            .finish()
    }
}

impl OpCompletion {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(OpCompletion {
            result: Mutex::new(None),
            done: Event::new(),
            notify: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn complete(&self, r: Result<Vec<u8>, CollectiveError>) {
        *self.result.lock() = Some(r);
        self.done.fire();
        for n in self.notify.lock().drain(..) {
            n();
        }
    }

    fn subscribe(&self, notify: ncs_core::CompletionNotify) {
        {
            let mut list = self.notify.lock();
            if !self.done.is_fired() {
                list.push(notify);
                return;
            }
        }
        notify();
    }
}

/// A value a collective can resolve to (the byte payload the engine
/// produced, decoded for the caller).
pub trait CollectiveResult: Sized {
    /// Decodes the engine's result payload.
    ///
    /// # Errors
    ///
    /// [`CollectiveError::Protocol`] when the payload does not decode.
    fn from_payload(bytes: Vec<u8>) -> Result<Self, CollectiveError>;
}

impl CollectiveResult for () {
    fn from_payload(_bytes: Vec<u8>) -> Result<Self, CollectiveError> {
        Ok(())
    }
}

impl<T: Scalar> CollectiveResult for Vec<T> {
    fn from_payload(bytes: Vec<u8>) -> Result<Self, CollectiveError> {
        from_bytes(&bytes)
    }
}

/// Handle to an in-flight nonblocking collective.
///
/// The operation is serviced by the group's progress thread; the issuing
/// thread is free to compute until it calls [`CollectiveHandle::wait`].
/// [`CollectiveHandle::test`] polls without blocking. The result can be
/// taken exactly once; a second `wait` reports
/// [`CollectiveError::Protocol`].
#[derive(Debug)]
pub struct CollectiveHandle<R: CollectiveResult> {
    completion: Arc<OpCompletion>,
    _result: PhantomData<fn() -> R>,
}

impl<R: CollectiveResult> CollectiveHandle<R> {
    pub(crate) fn new(completion: Arc<OpCompletion>) -> Self {
        CollectiveHandle {
            completion,
            _result: PhantomData,
        }
    }

    /// Whether the operation has completed (successfully or not). Never
    /// blocks.
    pub fn test(&self) -> bool {
        self.completion.done.is_fired()
    }

    /// Blocks until the operation completes and takes its result.
    ///
    /// # Errors
    ///
    /// The operation's error, or [`CollectiveError::Protocol`] if the
    /// result was already taken.
    pub fn wait(&self) -> Result<R, CollectiveError> {
        self.completion.done.wait();
        self.take_result()
    }

    /// [`CollectiveHandle::wait`] with a deadline. On
    /// [`CollectiveError::Timeout`] the handle remains usable — the
    /// operation keeps progressing and a later wait can still take the
    /// result.
    ///
    /// # Errors
    ///
    /// As [`CollectiveHandle::wait`], plus [`CollectiveError::Timeout`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<R, CollectiveError> {
        if !self.completion.done.wait_timeout(timeout) {
            return Err(CollectiveError::Timeout);
        }
        self.take_result()
    }

    fn take_result(&self) -> Result<R, CollectiveError> {
        let bytes = self
            .completion
            .result
            .lock()
            .take()
            .ok_or_else(|| CollectiveError::Protocol("result already taken".to_owned()))??;
        R::from_payload(bytes)
    }
}

/// Collective handles share the point-to-point [`Completion`] model, so a
/// heterogeneous [`ncs_core::wait_any`] / [`ncs_core::wait_all`] set can
/// mix an `iallreduce` with `isend`/`irecv` requests and drive both from
/// one application loop.
impl<R: CollectiveResult> Completion for CollectiveHandle<R> {
    fn is_complete(&self) -> bool {
        self.completion.done.is_fired()
    }

    fn wait_complete(&self, timeout: Duration) -> bool {
        self.completion.done.wait_timeout(timeout)
    }

    fn subscribe(&self, notify: ncs_core::CompletionNotify) -> bool {
        self.completion.subscribe(notify);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_resolves_once() {
        let c = OpCompletion::new();
        let h: CollectiveHandle<Vec<u32>> = CollectiveHandle::new(Arc::clone(&c));
        assert!(!h.test());
        assert_eq!(
            h.wait_timeout(Duration::from_millis(10)),
            Err(CollectiveError::Timeout)
        );
        c.complete(Ok(crate::datatype::to_bytes(&[5u32])));
        assert!(h.test());
        assert_eq!(h.wait().unwrap(), vec![5]);
        assert!(matches!(h.wait(), Err(CollectiveError::Protocol(_))));
    }

    #[test]
    fn handle_surfaces_errors() {
        let c = OpCompletion::new();
        let h: CollectiveHandle<()> = CollectiveHandle::new(Arc::clone(&c));
        c.complete(Err(CollectiveError::Closed));
        assert_eq!(h.wait(), Err(CollectiveError::Closed));
    }

    #[test]
    fn handle_joins_heterogeneous_wait_sets() {
        let c = OpCompletion::new();
        let h: CollectiveHandle<()> = CollectiveHandle::new(Arc::clone(&c));
        let set: [&dyn Completion; 1] = [&h];
        assert!(!ncs_core::test_all(&set));
        assert_eq!(ncs_core::wait_any(&set, Duration::from_millis(5)), None);
        c.complete(Ok(Vec::new()));
        assert_eq!(ncs_core::wait_any(&set, Duration::from_secs(1)), Some(0));
        assert!(ncs_core::wait_all(&set, Duration::from_secs(1)));
    }

    #[test]
    fn error_conversions_and_display() {
        assert_eq!(
            CollectiveError::from(SendError::Closed),
            CollectiveError::Closed
        );
        assert_eq!(
            CollectiveError::from(SendError::Timeout),
            CollectiveError::Timeout
        );
        assert!(matches!(
            CollectiveError::from(SendError::Empty),
            CollectiveError::Send(_)
        ));
        assert!(!CollectiveError::Timeout.to_string().is_empty());
    }
}
