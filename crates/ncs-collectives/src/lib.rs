//! NCS collective operations.
//!
//! The paper's group communication service, grown into a full collectives
//! subsystem: typed `broadcast`, `reduce`/`allreduce`, `scatter`/`gather`/
//! `allgather` and a redesigned `barrier`, each in blocking and
//! nonblocking ([`CollectiveHandle`]) form, over pluggable topologies
//! (binomial tree, ring pipeline, flat) selected per operation by message
//! size and group size.
//!
//! Collectives are serviced by a dedicated per-member **progress thread**
//! built on [`ncs_threads`] — the paper's central thesis applied to group
//! communication: application threads submit an operation and keep
//! computing while the runtime's threads move the data, under either the
//! kernel-level or the user-level thread package. The data path is the
//! pooled, batched point-to-point plane: collective frames are encoded
//! once into pooled buffers ([`ncs_core::BufPool`]), fan out through
//! [`ncs_core::NcsConnection::send_batch`], and large payloads are
//! pipelined in segments while flow/error control below run the unchanged
//! per-connection state machines (so a lossy ACI link heals under
//! selective repeat without the collectives layer noticing).
//!
//! # Example
//!
//! Two co-located members allreduce a vector (real applications put each
//! member in its own process or thread):
//!
//! ```
//! use std::collections::HashMap;
//! use ncs_core::link::HpiLinkPair;
//! use ncs_core::{ConnectionConfig, NcsNode};
//! use ncs_collectives::{CollectiveGroup, ReduceOp};
//!
//! let a = NcsNode::builder("a").build();
//! let b = NcsNode::builder("b").build();
//! let (la, lb) = HpiLinkPair::create();
//! a.attach_peer("b", la);
//! b.attach_peer("a", lb);
//! let ab = a.connect("b", ConnectionConfig::reliable()).unwrap();
//! let ba = b.accept_default().unwrap();
//!
//! let ga = CollectiveGroup::new(&a, 7, 0, HashMap::from([(1, ab)])).unwrap();
//! let gb = CollectiveGroup::new(&b, 7, 1, HashMap::from([(0, ba)])).unwrap();
//! let t = std::thread::spawn(move || gb.allreduce(vec![2.0f64, 20.0], ReduceOp::Sum));
//! assert_eq!(ga.allreduce(vec![1.0f64, 10.0], ReduceOp::Sum).unwrap(), vec![3.0, 30.0]);
//! assert_eq!(t.join().unwrap().unwrap(), vec![3.0, 30.0]);
//! # drop(ga); a.shutdown(); b.shutdown();
//! ```
//!
//! For compute/communication overlap, use the nonblocking forms:
//! `iallreduce` returns a [`CollectiveHandle`] immediately; the progress
//! thread completes the operation while the caller computes, and
//! [`CollectiveHandle::wait`] collects the result.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod datatype;
mod engine;
mod frame;
mod handle;
mod topology;

pub use datatype::{DType, ReduceOp, Scalar};
pub use engine::{CollectiveConfig, CollectiveGroup, CollectiveStats, ViewAbortHandle};
pub use handle::{CollectiveError, CollectiveHandle, CollectiveResult};
pub use topology::{OpClass, Topology, TopologyPolicy};
