//! Pluggable collective topologies and the per-op selection policy.
//!
//! Three shapes, selected per operation by message size and group size:
//!
//! * **Flat** — the root exchanges directly with every member. Cheapest
//!   for tiny groups (one hop, no forwarding), but the root's link work
//!   grows linearly with the group.
//! * **Binomial tree** — recursive halving with contiguous subtree ranges
//!   (rank 0 of the relabelled group owns `[0, n)`, hands the upper half
//!   to its first child, and so on). The root transmits `⌈log₂ n⌉` copies
//!   instead of `n-1`, and every subtree is a contiguous rank range, which
//!   lets scatter/gather ship exactly one contiguous byte range per edge.
//! * **Ring** — a chain pipeline `0 → 1 → … → n-1`. Highest per-operation
//!   latency, but with segmented payloads every link carries every byte
//!   exactly once, which maximises bandwidth for large transfers.
//!
//! Tree computations work on *relabelled* ranks: `rel = (rank + n - root)
//! % n`, so any member can be the root of the same shape.

/// A collective communication shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Root exchanges directly with every member.
    Flat,
    /// Recursive-halving binomial tree with contiguous subtrees.
    #[default]
    BinomialTree,
    /// Chain pipeline (segmented store-and-forward).
    Ring,
}

/// Parent of relabelled rank `rel` in the binomial tree over `size`
/// members, or `None` for the root.
pub(crate) fn tree_parent(rel: usize, size: usize) -> Option<usize> {
    if rel == 0 {
        return None;
    }
    debug_assert!(rel < size);
    let (mut lo, mut hi) = (0, size);
    loop {
        let mid = lo + (hi - lo).div_ceil(2);
        match rel.cmp(&mid) {
            std::cmp::Ordering::Less => hi = mid,
            std::cmp::Ordering::Equal => return Some(lo),
            std::cmp::Ordering::Greater => lo = mid,
        }
    }
}

/// Children of relabelled rank `rel` with their subtree sizes, widest
/// subtree first (the transmission order that overlaps the deepest
/// forwarding chain with the shallow ones).
pub(crate) fn tree_children(rel: usize, size: usize) -> Vec<(usize, usize)> {
    debug_assert!(rel < size);
    let (mut lo, mut hi) = (0, size);
    let mut out = Vec::new();
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        if rel < mid {
            if rel == lo {
                out.push((mid, hi - mid));
            }
            hi = mid;
        } else {
            lo = mid;
        }
    }
    out
}

/// Size of `rel`'s subtree (the contiguous relabelled range it roots).
pub(crate) fn tree_span(rel: usize, size: usize) -> usize {
    let (mut lo, mut hi) = (0, size);
    while lo != rel {
        let mid = lo + (hi - lo).div_ceil(2);
        if rel < mid {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi - lo
}

/// The operation classes the policy distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// One-to-all data movement.
    Broadcast,
    /// All-to-one combining.
    Reduce,
    /// One-to-all personalized chunks.
    Scatter,
    /// All-to-one personalized chunks.
    Gather,
    /// All-to-all replication.
    Allgather,
}

/// Per-operation topology selection by message size and group size.
///
/// The defaults encode the standard trade-offs: flat for groups too small
/// for a tree to pay off, ring pipelines once a broadcast (or the
/// allgather total) is large enough that bandwidth dominates latency, and
/// the binomial tree everywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyPolicy {
    /// Groups of at most this many members use [`Topology::Flat`].
    pub flat_max_group: usize,
    /// Broadcast payloads (and allgather totals) of at least this many
    /// bytes use [`Topology::Ring`].
    pub ring_min_bytes: usize,
}

impl Default for TopologyPolicy {
    fn default() -> Self {
        TopologyPolicy {
            flat_max_group: 2,
            ring_min_bytes: 256 * 1024,
        }
    }
}

impl TopologyPolicy {
    /// Selects the topology for one operation: `bytes` is the payload this
    /// member contributes or (for a broadcast root) offers.
    pub fn select(&self, op: OpClass, group_size: usize, bytes: usize) -> Topology {
        if group_size <= self.flat_max_group {
            return Topology::Flat;
        }
        match op {
            OpClass::Broadcast if bytes >= self.ring_min_bytes => Topology::Ring,
            OpClass::Allgather if bytes.saturating_mul(group_size) >= self.ring_min_bytes => {
                Topology::Ring
            }
            _ => Topology::BinomialTree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_covers_every_rank_exactly_once() {
        for size in 1..33 {
            let mut covered = vec![false; size];
            covered[0] = true;
            let mut frontier = vec![0];
            while let Some(r) = frontier.pop() {
                for (c, span) in tree_children(r, size) {
                    assert!(!covered[c], "rel {c} covered twice (size {size})");
                    assert_eq!(span, tree_span(c, size), "span mismatch at {c}/{size}");
                    covered[c] = true;
                    frontier.push(c);
                }
            }
            assert!(covered.iter().all(|&c| c), "not all covered: size {size}");
        }
    }

    #[test]
    fn parent_and_children_agree() {
        for size in 2..33 {
            for rel in 1..size {
                let p = tree_parent(rel, size).unwrap();
                assert!(
                    tree_children(p, size).iter().any(|&(c, _)| c == rel),
                    "rel {rel} not a child of its parent {p} (size {size})"
                );
            }
            assert_eq!(tree_parent(0, size), None);
        }
    }

    #[test]
    fn subtrees_are_contiguous() {
        for size in 2..20 {
            for rel in 0..size {
                let span = tree_span(rel, size);
                // Everything in [rel, rel+span) must be reachable from rel.
                let mut seen = vec![rel];
                let mut frontier = vec![rel];
                while let Some(r) = frontier.pop() {
                    for (c, _) in tree_children(r, size) {
                        seen.push(c);
                        frontier.push(c);
                    }
                }
                seen.sort_unstable();
                let want: Vec<usize> = (rel..rel + span).collect();
                assert_eq!(seen, want, "subtree of {rel} (size {size})");
            }
        }
    }

    #[test]
    fn root_degree_is_logarithmic() {
        assert_eq!(tree_children(0, 2).len(), 1);
        assert_eq!(tree_children(0, 4).len(), 2);
        assert_eq!(tree_children(0, 8).len(), 3);
        assert_eq!(tree_children(0, 5).len(), 3);
    }

    #[test]
    fn policy_selects_by_size() {
        let p = TopologyPolicy::default();
        assert_eq!(p.select(OpClass::Broadcast, 2, 1 << 20), Topology::Flat);
        assert_eq!(p.select(OpClass::Broadcast, 8, 64), Topology::BinomialTree);
        assert_eq!(p.select(OpClass::Broadcast, 8, 1 << 20), Topology::Ring);
        assert_eq!(
            p.select(OpClass::Reduce, 8, 1 << 20),
            Topology::BinomialTree
        );
        assert_eq!(p.select(OpClass::Scatter, 8, 64), Topology::BinomialTree);
        assert_eq!(p.select(OpClass::Allgather, 8, 1 << 20), Topology::Ring);
        assert_eq!(p.select(OpClass::Allgather, 8, 64), Topology::BinomialTree);
    }
}
