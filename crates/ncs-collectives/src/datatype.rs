//! Typed elements and reduction operators.
//!
//! The engine moves byte payloads; the typed API converts element vectors
//! to little-endian bytes on submission and back on completion. Reductions
//! are described by a ([`DType`], [`ReduceOp`]) pair so the fold can run on
//! the progress thread, away from the caller's type parameters.

use crate::handle::CollectiveError;

/// Element type descriptor carried through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// `u8`
    U8,
    /// `u32`
    U32,
    /// `u64`
    U64,
    /// `i32`
    I32,
    /// `i64`
    I64,
    /// `f32`
    F32,
    /// `f64`
    F64,
}

impl DType {
    /// Encoded size of one element, in bytes.
    pub fn elem_size(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::U32 | DType::I32 | DType::F32 => 4,
            DType::U64 | DType::I64 | DType::F64 => 8,
        }
    }
}

/// Elementwise reduction operator. Integer `Sum`/`Prod` wrap on overflow
/// (a reduction must not panic mid-collective).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise addition.
    Sum,
    /// Elementwise multiplication.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

/// An element type usable in typed collectives.
///
/// Implemented for the fixed-width integers and floats the engine can
/// reduce over; encoding is little-endian.
pub trait Scalar: Copy + Send + 'static {
    /// The engine-side descriptor for this type.
    const DTYPE: DType;

    /// Appends this element's little-endian encoding to `out`.
    fn write_le(&self, out: &mut Vec<u8>);

    /// Reads one element from `bytes` (exactly `DTYPE.elem_size()` bytes).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($ty:ty => $dtype:expr),* $(,)?) => {$(
        impl Scalar for $ty {
            const DTYPE: DType = $dtype;

            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn read_le(bytes: &[u8]) -> Self {
                <$ty>::from_le_bytes(bytes.try_into().expect("elem_size bytes"))
            }
        }
    )*};
}

impl_scalar! {
    u8 => DType::U8,
    u32 => DType::U32,
    u64 => DType::U64,
    i32 => DType::I32,
    i64 => DType::I64,
    f32 => DType::F32,
    f64 => DType::F64,
}

/// Encodes an element slice into little-endian bytes.
pub(crate) fn to_bytes<T: Scalar>(v: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * T::DTYPE.elem_size());
    for x in v {
        x.write_le(&mut out);
    }
    out
}

/// Decodes little-endian bytes back into an element vector.
pub(crate) fn from_bytes<T: Scalar>(bytes: &[u8]) -> Result<Vec<T>, CollectiveError> {
    let k = T::DTYPE.elem_size();
    if !bytes.len().is_multiple_of(k) {
        return Err(CollectiveError::Protocol(format!(
            "payload of {} bytes is not a whole number of {k}-byte elements",
            bytes.len()
        )));
    }
    Ok(bytes.chunks_exact(k).map(T::read_le).collect())
}

macro_rules! fold_arm {
    ($ty:ty, $op:expr, $acc:expr, $other:expr, $sum:expr, $prod:expr) => {{
        let k = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(k).zip($other.chunks_exact(k)) {
            let x = <$ty>::from_le_bytes(a.try_into().expect("k bytes"));
            let y = <$ty>::from_le_bytes(b.try_into().expect("k bytes"));
            // Min/max through the partial comparison: `y < x` is false for
            // a NaN accumulator, so a NaN sticks — deterministic across
            // topologies (relevant to the float instantiations only).
            let r = match $op {
                ReduceOp::Sum => $sum(x, y),
                ReduceOp::Prod => $prod(x, y),
                ReduceOp::Min => {
                    if y < x {
                        y
                    } else {
                        x
                    }
                }
                ReduceOp::Max => {
                    if y > x {
                        y
                    } else {
                        x
                    }
                }
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

/// Folds `other` into `acc` elementwise under `op`.
///
/// # Errors
///
/// [`CollectiveError::Protocol`] when the two byte payloads disagree in
/// length or are not whole elements (contribution-size mismatch between
/// members).
pub(crate) fn fold_into(
    dtype: DType,
    op: ReduceOp,
    acc: &mut [u8],
    other: &[u8],
) -> Result<(), CollectiveError> {
    if acc.len() != other.len() || !acc.len().is_multiple_of(dtype.elem_size()) {
        return Err(CollectiveError::Protocol(format!(
            "reduce contribution mismatch: {} vs {} bytes ({dtype:?})",
            acc.len(),
            other.len()
        )));
    }
    // Integers combine wrapping (a reduction must not panic mid-
    // collective); floats have no wrapping arithmetic, so they use the
    // plain operators.
    match dtype {
        DType::U8 => fold_arm!(u8, op, acc, other, u8::wrapping_add, u8::wrapping_mul),
        DType::U32 => fold_arm!(u32, op, acc, other, u32::wrapping_add, u32::wrapping_mul),
        DType::U64 => fold_arm!(u64, op, acc, other, u64::wrapping_add, u64::wrapping_mul),
        DType::I32 => fold_arm!(i32, op, acc, other, i32::wrapping_add, i32::wrapping_mul),
        DType::I64 => fold_arm!(i64, op, acc, other, i64::wrapping_add, i64::wrapping_mul),
        DType::F32 => fold_arm!(f32, op, acc, other, |x, y| x + y, |x, y| x * y),
        DType::F64 => fold_arm!(f64, op, acc, other, |x, y| x + y, |x, y| x * y),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_dtypes() {
        assert_eq!(
            from_bytes::<u32>(&to_bytes(&[1u32, 2, 3])).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            from_bytes::<f64>(&to_bytes(&[1.5f64, -2.5])).unwrap(),
            vec![1.5, -2.5]
        );
        assert_eq!(from_bytes::<i64>(&to_bytes(&[-9i64])).unwrap(), vec![-9]);
        assert_eq!(from_bytes::<u8>(&to_bytes(&[7u8, 8])).unwrap(), vec![7, 8]);
        assert!(from_bytes::<u32>(&[0, 1, 2]).is_err());
    }

    #[test]
    fn fold_applies_ops() {
        let mut acc = to_bytes(&[1u32, 10, 5]);
        fold_into(
            DType::U32,
            ReduceOp::Sum,
            &mut acc,
            &to_bytes(&[2u32, 3, 4]),
        )
        .unwrap();
        assert_eq!(from_bytes::<u32>(&acc).unwrap(), vec![3, 13, 9]);
        fold_into(
            DType::U32,
            ReduceOp::Max,
            &mut acc,
            &to_bytes(&[5u32, 5, 5]),
        )
        .unwrap();
        assert_eq!(from_bytes::<u32>(&acc).unwrap(), vec![5, 13, 9]);
        let mut f = to_bytes(&[2.0f64, -1.0]);
        fold_into(
            DType::F64,
            ReduceOp::Prod,
            &mut f,
            &to_bytes(&[3.0f64, 3.0]),
        )
        .unwrap();
        assert_eq!(from_bytes::<f64>(&f).unwrap(), vec![6.0, -3.0]);
        let mut m = to_bytes(&[2.0f32]);
        fold_into(DType::F32, ReduceOp::Min, &mut m, &to_bytes(&[-7.0f32])).unwrap();
        assert_eq!(from_bytes::<f32>(&m).unwrap(), vec![-7.0]);
    }

    #[test]
    fn fold_wraps_instead_of_panicking() {
        let mut acc = to_bytes(&[u8::MAX]);
        fold_into(DType::U8, ReduceOp::Sum, &mut acc, &to_bytes(&[2u8])).unwrap();
        assert_eq!(from_bytes::<u8>(&acc).unwrap(), vec![1]);
    }

    #[test]
    fn fold_rejects_mismatched_lengths() {
        let mut acc = to_bytes(&[1u32]);
        assert!(fold_into(DType::U32, ReduceOp::Sum, &mut acc, &to_bytes(&[1u32, 2])).is_err());
    }
}
