//! End-to-end collectives tests: correctness of broadcast/allreduce (and
//! friends) for groups of 2–8 members across all four communication
//! interfaces, under both thread packages, including a seeded-loss ACI
//! run that heals through the error-control plane, nonblocking overlap,
//! and barrier races against the legacy `NcsGroup` barrier.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ncs_collectives::{CollectiveConfig, CollectiveError, CollectiveGroup, ReduceOp, Topology};
use ncs_core::link::{AciLink, HpiLinkPair, PipeLinkPair, SciLink};
use ncs_core::{ConnectionConfig, ErrorControlAlg, FlowControlAlg, NcsConnection, NcsNode};
use ncs_threads::{
    KernelPackage, SwitchMech, ThreadPackage, ThreadPackageExt, UserConfig, UserRuntime,
};
use ncs_transport::pipe::PipeConfig;
use ncs_transport::sci::SciListener;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Iface {
    Hpi,
    Pipe,
    Sci,
    Aci,
}

struct Cluster {
    nodes: Vec<NcsNode>,
    groups: Vec<Arc<CollectiveGroup>>,
    fabric: Option<Arc<ncs_transport::aci::AciFabric>>,
}

impl Cluster {
    fn shutdown(self) {
        drop(self.groups);
        for n in self.nodes {
            n.shutdown();
        }
        if let Some(f) = self.fabric {
            f.shutdown();
        }
    }
}

fn attach_mesh(nodes: &[NcsNode], iface: Iface) -> Option<Arc<ncs_transport::aci::AciFabric>> {
    let n = nodes.len();
    match iface {
        Iface::Hpi => {
            for i in 0..n {
                for j in (i + 1)..n {
                    let (li, lj) = HpiLinkPair::with_capacity(2048);
                    nodes[i].attach_peer(&format!("c{j}"), li);
                    nodes[j].attach_peer(&format!("c{i}"), lj);
                }
            }
            None
        }
        Iface::Pipe => {
            let wire = PipeConfig {
                buffer_bytes: 256 * 1024,
                drain_bytes_per_sec: None,
                latency: Duration::ZERO,
                time_scale: 1.0,
            };
            for i in 0..n {
                for j in (i + 1)..n {
                    let (li, lj) = PipeLinkPair::create(wire.clone(), None, None);
                    nodes[i].attach_peer(&format!("c{j}"), li);
                    nodes[j].attach_peer(&format!("c{i}"), lj);
                }
            }
            None
        }
        Iface::Sci => {
            let listeners: Vec<Arc<SciListener>> = (0..n)
                .map(|_| Arc::new(SciListener::bind("127.0.0.1:0").expect("bind")))
                .collect();
            let addrs: Vec<std::net::SocketAddr> = listeners
                .iter()
                .map(|l| l.local_addr().expect("addr"))
                .collect();
            for i in 0..n {
                for (j, &addr) in addrs.iter().enumerate() {
                    if i != j {
                        nodes[i].attach_peer(
                            &format!("c{j}"),
                            SciLink::new(addr, Arc::clone(&listeners[i])),
                        );
                    }
                }
            }
            None
        }
        Iface::Aci => Some(attach_aci_mesh(nodes, 0.0, 0)),
    }
}

/// Wires `nodes` as hosts of a star ATM network; `cell_loss > 0` arms the
/// host uplinks with seeded cell-loss faults.
fn attach_aci_mesh(
    nodes: &[NcsNode],
    cell_loss: f64,
    seed: u64,
) -> Arc<ncs_transport::aci::AciFabric> {
    use atm_sim::{FaultSpec, LinkSpec, NetworkBuilder, PumpConfig, QosParams};
    use ncs_transport::aci::AciFabric;
    let n = nodes.len();
    let mut builder = NetworkBuilder::new().switch("sw");
    for i in 0..n {
        builder = builder.host(&format!("c{i}"));
    }
    for i in 0..n {
        let spec = if cell_loss > 0.0 {
            LinkSpec::oc3().with_fault(FaultSpec::cell_loss(cell_loss, seed + i as u64))
        } else {
            LinkSpec::oc3()
        };
        builder = builder.link(&format!("c{i}"), "sw", spec);
    }
    let fabric = AciFabric::start(
        builder.build().expect("atm network"),
        PumpConfig::speedup(4.0),
    );
    for (i, node) in nodes.iter().enumerate() {
        let dev = Arc::new(fabric.device(&format!("c{i}")).expect("device"));
        for j in 0..n {
            if i != j {
                node.attach_peer(
                    &format!("c{j}"),
                    AciLink::new(Arc::clone(&dev), &format!("c{j}"), QosParams::unspecified()),
                );
            }
        }
    }
    fabric
}

fn connect_mesh(nodes: &[NcsNode], cfg: &ConnectionConfig) -> Vec<HashMap<usize, NcsConnection>> {
    let n = nodes.len();
    let mut conns: Vec<HashMap<usize, NcsConnection>> = (0..n).map(|_| HashMap::new()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let cij = nodes[i]
                .connect(&format!("c{j}"), cfg.clone())
                .expect("connect");
            let cji = nodes[j].accept_default().expect("accept");
            conns[i].insert(j, cij);
            conns[j].insert(i, cji);
        }
    }
    conns
}

fn build_cluster(
    n: usize,
    iface: Iface,
    pkg: &Arc<dyn ThreadPackage>,
    conn_cfg: &ConnectionConfig,
    coll_cfg: CollectiveConfig,
) -> Cluster {
    let nodes: Vec<NcsNode> = (0..n)
        .map(|i| {
            NcsNode::builder(&format!("c{i}"))
                .thread_package(Arc::clone(pkg))
                .build()
        })
        .collect();
    let fabric = attach_mesh(&nodes, iface);
    let conn_maps = connect_mesh(&nodes, conn_cfg);
    let mut groups = Vec::new();
    for (rank, (node, links)) in nodes.iter().zip(conn_maps).enumerate() {
        groups.push(Arc::new(
            CollectiveGroup::with_config(node, 1, rank, links, coll_cfg).expect("group"),
        ));
    }
    Cluster {
        nodes,
        groups,
        fabric,
    }
}

/// Runs `f(rank, group)` on one package thread per member and collects the
/// results (package-aware joins, so this also works as the root green
/// thread of the user-level runtime).
fn run_members<R, F>(pkg: &Arc<dyn ThreadPackage>, groups: &[Arc<CollectiveGroup>], f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize, Arc<CollectiveGroup>) -> R + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let handles: Vec<_> = groups
        .iter()
        .enumerate()
        .map(|(rank, g)| {
            let f = Arc::clone(&f);
            let g = Arc::clone(g);
            pkg.spawn_typed(&format!("member-{rank}"), move || f(rank, g))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("member panicked"))
        .collect()
}

/// The acceptance exercise: broadcasts (two roots, single- and
/// multi-segment) and a summing allreduce, then a barrier.
fn exercise_basics(rank: usize, g: &CollectiveGroup, big_elems: usize) {
    let size = g.size();
    for &root in &[0, size - 1] {
        for &len in &[5usize, big_elems] {
            let stamp = root as u32 + 1;
            let buf: Vec<u32> = if rank == root {
                (0..len as u32).map(|i| i.wrapping_mul(stamp)).collect()
            } else {
                vec![0u32; len]
            };
            let got = g.broadcast(root, buf).expect("broadcast");
            assert_eq!(got.len(), len, "rank {rank} root {root}");
            for (i, v) in got.iter().enumerate() {
                assert_eq!(
                    *v,
                    (i as u32).wrapping_mul(stamp),
                    "rank {rank} root {root} idx {i}"
                );
            }
        }
    }
    let contrib: Vec<f64> = (0..48).map(|i| (rank + 1) as f64 * i as f64).collect();
    let sum = g.allreduce(contrib, ReduceOp::Sum).expect("allreduce");
    let factor: f64 = (1..=size).sum::<usize>() as f64;
    for (i, v) in sum.iter().enumerate() {
        assert!((v - factor * i as f64).abs() < 1e-9, "rank {rank} idx {i}");
    }
    g.barrier().expect("barrier");
}

fn kernel_pkg() -> Arc<dyn ThreadPackage> {
    Arc::new(KernelPackage::new())
}

fn run_matrix_case(n: usize, iface: Iface, pkg: &Arc<dyn ThreadPackage>, big_elems: usize) {
    // HPI rings can overrun and ACI cells can be lost under congestion:
    // those interfaces run the full FC/EC plane; PIPE and SCI are
    // reliable wires, so the §3.1 bypass carries the collectives.
    let conn_cfg = match iface {
        Iface::Hpi | Iface::Aci => ConnectionConfig::reliable(),
        Iface::Pipe | Iface::Sci => ConnectionConfig::unreliable(),
    };
    let cluster = build_cluster(n, iface, pkg, &conn_cfg, CollectiveConfig::default());
    run_members(pkg, &cluster.groups, move |rank, g| {
        exercise_basics(rank, &g, big_elems)
    });
    cluster.shutdown();
}

#[test]
fn hpi_kernel_groups_of_2_to_8() {
    let pkg = kernel_pkg();
    for n in 2..=8 {
        run_matrix_case(n, Iface::Hpi, &pkg, 9_000);
    }
}

#[test]
fn hpi_user_package_groups() {
    for n in [2usize, 4, 8] {
        UserRuntime::new(UserConfig {
            mech: SwitchMech::Native,
            ..UserConfig::default()
        })
        .run(move |pkg| {
            let pkg: Arc<dyn ThreadPackage> = Arc::new(pkg);
            run_matrix_case(n, Iface::Hpi, &pkg, 9_000);
        });
    }
}

#[test]
fn pipe_kernel_groups() {
    let pkg = kernel_pkg();
    for n in [2usize, 5] {
        run_matrix_case(n, Iface::Pipe, &pkg, 9_000);
    }
}

#[test]
fn pipe_user_package_group() {
    UserRuntime::new(UserConfig {
        mech: SwitchMech::Native,
        ..UserConfig::default()
    })
    .run(|pkg| {
        let pkg: Arc<dyn ThreadPackage> = Arc::new(pkg);
        run_matrix_case(4, Iface::Pipe, &pkg, 9_000);
    });
}

#[test]
fn sci_kernel_group() {
    run_matrix_case(4, Iface::Sci, &kernel_pkg(), 9_000);
}

#[test]
fn sci_user_package_group() {
    // SCI receives are system calls: under the user-level package they run
    // the §4.1 nonblocking-poll discipline. Keep the group small.
    UserRuntime::new(UserConfig {
        mech: SwitchMech::Native,
        ..UserConfig::default()
    })
    .run(|pkg| {
        let pkg: Arc<dyn ThreadPackage> = Arc::new(pkg);
        run_matrix_case(2, Iface::Sci, &pkg, 2_000);
    });
}

#[test]
fn aci_kernel_group() {
    run_matrix_case(4, Iface::Aci, &kernel_pkg(), 3_000);
}

#[test]
fn aci_user_package_group() {
    UserRuntime::new(UserConfig {
        mech: SwitchMech::Native,
        ..UserConfig::default()
    })
    .run(|pkg| {
        let pkg: Arc<dyn ThreadPackage> = Arc::new(pkg);
        run_matrix_case(3, Iface::Aci, &pkg, 3_000);
    });
}

#[test]
fn aci_seeded_loss_heals_through_error_control() {
    // 0.1% cell loss on every host uplink kills roughly one 4 KB SDU in
    // twelve; selective repeat under the collectives must still deliver
    // every broadcast and allreduce intact.
    let pkg = kernel_pkg();
    let n = 3;
    let nodes: Vec<NcsNode> = (0..n)
        .map(|i| {
            NcsNode::builder(&format!("c{i}"))
                .thread_package(Arc::clone(&pkg))
                .build()
        })
        .collect();
    let fabric = attach_aci_mesh(&nodes, 0.001, 42);
    let conn_cfg = ConnectionConfig::builder()
        .sdu_size(4 * 1024)
        .flow_control(FlowControlAlg::CreditBased {
            initial_credits: 4,
            dynamic: true,
        })
        .error_control(ErrorControlAlg::SelectiveRepeat {
            timeout: Duration::from_millis(150),
            max_retries: 30,
        })
        .build();
    let conn_maps = connect_mesh(&nodes, &conn_cfg);
    let mut groups = Vec::new();
    let mut conns = Vec::new();
    for (rank, (node, links)) in nodes.iter().zip(conn_maps).enumerate() {
        conns.push(links.values().cloned().collect::<Vec<_>>());
        groups.push(Arc::new(
            CollectiveGroup::new(node, 1, rank, links).expect("group"),
        ));
    }
    run_members(&pkg, &groups, |rank, g| {
        for round in 0..4u32 {
            let root = (round as usize) % g.size();
            let len = 6_000; // 24 KB -> 6 SDUs per hop
            let buf: Vec<u32> = if rank == root {
                (0..len as u32).map(|i| i ^ round).collect()
            } else {
                vec![0u32; len]
            };
            let got = g.broadcast(root, buf).expect("broadcast under loss");
            for (i, v) in got.iter().enumerate() {
                assert_eq!(*v, (i as u32) ^ round, "round {round} idx {i}");
            }
            let sum = g
                .allreduce(vec![(rank + 1) as u64; 2_000], ReduceOp::Sum)
                .expect("allreduce under loss");
            let want: u64 = (1..=g.size() as u64).sum();
            assert!(sum.iter().all(|&v| v == want), "round {round}");
        }
    });
    let retransmissions: u64 = conns
        .iter()
        .flatten()
        .map(|c| c.stats().retransmissions)
        .sum();
    assert!(
        retransmissions > 0,
        "a lossy fabric must force selective-repeat recoveries"
    );
    drop(groups);
    for node in nodes {
        node.shutdown();
    }
    fabric.shutdown();
}

#[test]
fn scatter_gather_allgather_round_trip() {
    let pkg = kernel_pkg();
    let n = 5;
    let cluster = build_cluster(
        n,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    run_members(&pkg, &cluster.groups, move |rank, g| {
        let k = 7usize;
        for root in 0..n {
            // Scatter: rank r receives chunk r of the root's vector.
            let data: Vec<u64> = if rank == root {
                (0..(n * k) as u64)
                    .map(|i| i + 1000 * root as u64)
                    .collect()
            } else {
                Vec::new()
            };
            let chunk = g.scatter(root, data).expect("scatter");
            let want: Vec<u64> = (0..k as u64)
                .map(|i| (rank * k) as u64 + i + 1000 * root as u64)
                .collect();
            assert_eq!(chunk, want, "scatter rank {rank} root {root}");

            // Gather: the root sees every contribution in rank order.
            let contrib: Vec<u64> = (0..k as u64).map(|i| (rank * 100) as u64 + i).collect();
            let gathered = g.gather(root, contrib.clone()).expect("gather");
            if rank == root {
                let got = gathered.expect("root result");
                for r in 0..n {
                    for i in 0..k {
                        assert_eq!(got[r * k + i], (r * 100 + i) as u64, "gather root {root}");
                    }
                }
            } else {
                assert!(gathered.is_none());
            }

            // Allgather: everyone sees the same rank-ordered concatenation.
            let all = g.allgather(contrib).expect("allgather");
            assert_eq!(all.len(), n * k);
            for r in 0..n {
                for i in 0..k {
                    assert_eq!(
                        all[r * k + i],
                        (r * 100 + i) as u64,
                        "allgather rank {rank}"
                    );
                }
            }
        }
    });
    cluster.shutdown();
}

#[test]
fn reduce_every_root_and_operator() {
    let pkg = kernel_pkg();
    let n = 4;
    let cluster = build_cluster(
        n,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    run_members(&pkg, &cluster.groups, move |rank, g| {
        for root in 0..n {
            let contrib: Vec<i64> = vec![rank as i64 + 1, -(rank as i64) - 1, 3];
            let got = g.reduce(root, contrib, ReduceOp::Min).expect("reduce");
            if rank == root {
                assert_eq!(got, Some(vec![1, -(n as i64), 3]));
            } else {
                assert!(got.is_none());
            }
        }
        let prod = g
            .allreduce(vec![2.0f32, rank as f32 + 1.0], ReduceOp::Prod)
            .expect("prod");
        assert_eq!(prod[0], 2.0f32.powi(n as i32));
        assert_eq!(prod[1], (1..=n).product::<usize>() as f32);
        let max = g
            .allreduce(vec![rank as u32 * 10], ReduceOp::Max)
            .expect("max");
        assert_eq!(max, vec![(n as u32 - 1) * 10]);
    });
    cluster.shutdown();
}

#[test]
fn explicit_topologies_all_deliver() {
    let pkg = kernel_pkg();
    let n = 5;
    let cluster = build_cluster(
        n,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    // 100 KB payload = 4 pipeline segments at the default 32 KB.
    let len = 25_000usize;
    run_members(&pkg, &cluster.groups, move |rank, g| {
        for topo in [Topology::Flat, Topology::BinomialTree, Topology::Ring] {
            for root in [0usize, 2] {
                let buf: Vec<u32> = if rank == root {
                    (0..len as u32)
                        .map(|i| i.rotate_left(root as u32))
                        .collect()
                } else {
                    vec![0u32; len]
                };
                let got = g.broadcast_with(root, buf, topo).expect("broadcast");
                for (i, v) in got.iter().enumerate() {
                    assert_eq!(
                        *v,
                        (i as u32).rotate_left(root as u32),
                        "{topo:?} root {root}"
                    );
                }
            }
        }
    });
    cluster.shutdown();
}

#[test]
fn large_broadcast_selects_ring_automatically() {
    let pkg = kernel_pkg();
    let n = 4;
    let cluster = build_cluster(
        n,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    // 512 KiB of u64 crosses the default ring threshold (256 KiB).
    let len = 64 * 1024usize;
    run_members(&pkg, &cluster.groups, move |rank, g| {
        let buf: Vec<u64> = if rank == 0 {
            (0..len as u64).collect()
        } else {
            vec![0u64; len]
        };
        let got = g.broadcast(0, buf).expect("big broadcast");
        assert_eq!(got.len(), len);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64));
    });
    cluster.shutdown();
}

#[test]
fn nonblocking_handles_overlap_and_pipeline() {
    let pkg = kernel_pkg();
    let n = 4;
    let cluster = build_cluster(
        n,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    run_members(&pkg, &cluster.groups, move |rank, g| {
        // Three collectives in flight at once; the progress thread works
        // through them in submission order while we compute here.
        let h1 = g
            .iallreduce(vec![rank as u64 + 1; 20_000], ReduceOp::Sum)
            .expect("submit 1");
        let h2 = g.ibroadcast(0, vec![rank as u32; 1_000]).expect("submit 2");
        let h3 = g.ibarrier().expect("submit 3");
        // Local computation overlapping the in-flight collectives.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        assert!(acc != 0);
        // Wait out of submission order: completion order is still 1, 2, 3.
        h3.wait().expect("barrier");
        let b = h2.wait().expect("broadcast");
        assert!(b.iter().all(|&v| v == 0), "root 0's buffer wins");
        let want: u64 = (1..=n as u64).sum();
        let s = h1.wait().expect("allreduce");
        assert!(s.iter().all(|&v| v == want));
        // A taken result cannot be taken again.
        assert!(matches!(h1.wait(), Err(CollectiveError::Protocol(_))));
    });
    cluster.shutdown();
}

#[test]
fn collective_barrier_synchronises_staggered_members() {
    let pkg = kernel_pkg();
    let n = 5;
    let cluster = build_cluster(
        n,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    let flag = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let flag2 = Arc::clone(&flag);
    run_members(&pkg, &cluster.groups, move |rank, g| {
        for round in 1..=3usize {
            std::thread::sleep(Duration::from_millis((rank * 7) as u64));
            flag2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            g.barrier().expect("barrier");
            assert!(
                flag2.load(std::sync::atomic::Ordering::SeqCst) >= round * n,
                "rank {rank} released before everyone arrived"
            );
        }
    });
    cluster.shutdown();
}

#[test]
fn unmatched_barrier_times_out_cleanly() {
    let pkg = kernel_pkg();
    let cluster = build_cluster(
        2,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig {
            op_timeout: Duration::from_millis(300),
            ..CollectiveConfig::default()
        },
    );
    // Rank 1 never enters the barrier.
    let g0 = Arc::clone(&cluster.groups[0]);
    assert_eq!(g0.barrier(), Err(CollectiveError::Timeout));
    cluster.shutdown();
}

#[test]
fn mismatched_gather_contributions_error() {
    let pkg = kernel_pkg();
    let cluster = build_cluster(
        2,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig {
            op_timeout: Duration::from_secs(5),
            ..CollectiveConfig::default()
        },
    );
    let results = run_members(&pkg, &cluster.groups, |rank, g| {
        let contrib: Vec<u32> = vec![7; if rank == 0 { 3 } else { 2 }];
        g.gather(0, contrib)
    });
    assert!(
        matches!(results[0], Err(CollectiveError::Protocol(_))),
        "root must detect the mismatch: {:?}",
        results[0]
    );
    assert!(results[1].is_ok(), "the leaf's send half succeeds");
    cluster.shutdown();
}

#[test]
fn collectives_barrier_races_legacy_group_barrier() {
    use ncs_core::{MulticastAlgo, NcsGroup};
    let pkg = kernel_pkg();
    let n = 3;
    let nodes: Vec<NcsNode> = (0..n)
        .map(|i| {
            NcsNode::builder(&format!("c{i}"))
                .thread_package(Arc::clone(&pkg))
                .build()
        })
        .collect();
    attach_mesh(&nodes, Iface::Hpi);
    // Two independent link meshes over the same peers: one for the legacy
    // NcsGroup barrier, one for the collectives engine.
    let legacy_links = connect_mesh(&nodes, &ConnectionConfig::reliable());
    let coll_links = connect_mesh(&nodes, &ConnectionConfig::reliable());
    let mut legacy = Vec::new();
    let mut groups = Vec::new();
    for (rank, (node, (ll, cl))) in nodes
        .iter()
        .zip(legacy_links.into_iter().zip(coll_links))
        .enumerate()
    {
        legacy.push(Arc::new(
            NcsGroup::new(node, 9, rank, ll, MulticastAlgo::SpanningTree).expect("legacy group"),
        ));
        groups.push(Arc::new(
            CollectiveGroup::new(node, 1, rank, cl).expect("collective group"),
        ));
    }
    // Per member, the legacy barrier and the collectives barrier run
    // concurrently on separate threads for several rounds: stale releases
    // of one must never starve the other.
    let mut handles = Vec::new();
    for rank in 0..n {
        let lg = Arc::clone(&legacy[rank]);
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                lg.barrier(Duration::from_secs(10)).expect("legacy barrier");
            }
        }));
        let cg = Arc::clone(&groups[rank]);
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                cg.barrier().expect("collective barrier");
            }
        }));
    }
    for h in handles {
        h.join().expect("barrier thread");
    }
    drop(legacy);
    drop(groups);
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn stats_count_traffic() {
    let pkg = kernel_pkg();
    let cluster = build_cluster(
        3,
        Iface::Hpi,
        &pkg,
        &ConnectionConfig::reliable(),
        CollectiveConfig::default(),
    );
    run_members(&pkg, &cluster.groups, |_rank, g| {
        let got = g.broadcast(0, vec![1u8; 64]).expect("broadcast");
        assert_eq!(got, vec![1u8; 64]);
        g.barrier().expect("barrier");
    });
    for g in &cluster.groups {
        let s = g.stats();
        assert!(s.ops_completed >= 2, "{s:?}");
        assert!(s.frames_sent > 0, "{s:?}");
        assert!(s.frames_received > 0, "{s:?}");
    }
    cluster.shutdown();
}
