//! Heterogeneous completion sets: `wait_any`/`wait_all`/`test_all` over
//! mixed point-to-point requests (`isend`/`irecv`, tagged and untagged)
//! and collective handles (`iallreduce`), across all four communication
//! interfaces under both thread packages, including a seeded-loss ACI
//! run that heals through the error-control plane while the application
//! thread drives everything from one wait loop.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ncs_collectives::{CollectiveGroup, ReduceOp};
use ncs_core::link::{AciLink, HpiLinkPair, PipeLinkPair, SciLink};
use ncs_core::{
    test_all, wait_all, wait_any, Completion, ConnectionConfig, ErrorControlAlg, FlowControlAlg,
    NcsConnection, NcsNode,
};
use ncs_threads::{
    KernelPackage, SwitchMech, ThreadPackage, ThreadPackageExt, UserConfig, UserRuntime,
};
use ncs_transport::pipe::PipeConfig;
use ncs_transport::sci::SciListener;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Iface {
    Hpi,
    Pipe,
    Sci,
    Aci,
}

struct Pair {
    nodes: Vec<NcsNode>,
    groups: Vec<Arc<CollectiveGroup>>,
    /// Dedicated point-to-point connections (beyond the group's links):
    /// `p2p[0]` at member 0 towards member 1, `p2p[1]` the reverse end.
    p2p: Vec<NcsConnection>,
    fabric: Option<Arc<ncs_transport::aci::AciFabric>>,
}

impl Pair {
    fn shutdown(self) {
        drop(self.groups);
        for n in self.nodes {
            n.shutdown();
        }
        if let Some(f) = self.fabric {
            f.shutdown();
        }
    }
}

/// Wires two nodes over `iface` (with optional seeded ACI cell loss),
/// builds one collective group per member over bootstrap links, and opens
/// a separate point-to-point connection pair for request traffic.
fn build_pair(
    iface: Iface,
    pkg: &Arc<dyn ThreadPackage>,
    conn_cfg: &ConnectionConfig,
    cell_loss: f64,
) -> Pair {
    let nodes: Vec<NcsNode> = (0..2)
        .map(|i| {
            NcsNode::builder(&format!("c{i}"))
                .thread_package(Arc::clone(pkg))
                .build()
        })
        .collect();
    let mut fabric = None;
    match iface {
        Iface::Hpi => {
            let (l0, l1) = HpiLinkPair::with_capacity(2048);
            nodes[0].attach_peer("c1", l0);
            nodes[1].attach_peer("c0", l1);
        }
        Iface::Pipe => {
            let wire = PipeConfig {
                buffer_bytes: 256 * 1024,
                drain_bytes_per_sec: None,
                latency: Duration::ZERO,
                time_scale: 1.0,
            };
            let (l0, l1) = PipeLinkPair::create(wire, None, None);
            nodes[0].attach_peer("c1", l0);
            nodes[1].attach_peer("c0", l1);
        }
        Iface::Sci => {
            let listeners: Vec<Arc<SciListener>> = (0..2)
                .map(|_| Arc::new(SciListener::bind("127.0.0.1:0").expect("bind")))
                .collect();
            let addrs: Vec<std::net::SocketAddr> = listeners
                .iter()
                .map(|l| l.local_addr().expect("addr"))
                .collect();
            nodes[0].attach_peer("c1", SciLink::new(addrs[1], Arc::clone(&listeners[0])));
            nodes[1].attach_peer("c0", SciLink::new(addrs[0], Arc::clone(&listeners[1])));
        }
        Iface::Aci => {
            use atm_sim::{FaultSpec, LinkSpec, NetworkBuilder, PumpConfig, QosParams};
            use ncs_transport::aci::AciFabric;
            let mut builder = NetworkBuilder::new().switch("sw").host("c0").host("c1");
            for i in 0..2 {
                let spec = if cell_loss > 0.0 {
                    LinkSpec::oc3().with_fault(FaultSpec::cell_loss(cell_loss, 42 + i as u64))
                } else {
                    LinkSpec::oc3()
                };
                builder = builder.link(&format!("c{i}"), "sw", spec);
            }
            let fab = AciFabric::start(
                builder.build().expect("atm network"),
                PumpConfig::speedup(4.0),
            );
            for (i, node) in nodes.iter().enumerate() {
                let dev = Arc::new(fab.device(&format!("c{i}")).expect("device"));
                let peer = format!("c{}", 1 - i);
                node.attach_peer(&peer, AciLink::new(dev, &peer, QosParams::unspecified()));
            }
            fabric = Some(fab);
        }
    }
    // Bootstrap links for the collective groups.
    let boot0 = nodes[0].connect("c1", conn_cfg.clone()).expect("connect");
    let boot1 = nodes[1].accept_default().expect("accept");
    // A dedicated point-to-point pair for the request half of the mixed
    // sets (the group's pump threads own the bootstrap links' delivery).
    let p2p0 = nodes[0]
        .connect("c1", conn_cfg.clone())
        .expect("p2p connect");
    let p2p1 = nodes[1].accept_default().expect("p2p accept");
    let groups = vec![
        Arc::new(
            CollectiveGroup::new(&nodes[0], 1, 0, HashMap::from([(1, boot0)])).expect("group 0"),
        ),
        Arc::new(
            CollectiveGroup::new(&nodes[1], 1, 1, HashMap::from([(0, boot1)])).expect("group 1"),
        ),
    ];
    Pair {
        nodes,
        groups,
        p2p: vec![p2p0, p2p1],
        fabric,
    }
}

const DEADLINE: Duration = Duration::from_secs(60);

/// Member 1's half: participate in two allreduces, then feed member 0's
/// point-to-point requests (an untagged message and a tagged one).
fn member_one(g: &CollectiveGroup, p2p: &NcsConnection) {
    let ar = g
        .iallreduce(vec![2.0f64; 8], ReduceOp::Sum)
        .expect("iallreduce");
    assert_eq!(ar.wait_timeout(DEADLINE).expect("allreduce"), vec![3.0; 8]);
    p2p.isend(b"p2p untagged")
        .expect("isend")
        .wait_timeout(DEADLINE)
        .expect("send completion");
    p2p.isend_tagged(9, b"p2p tag nine")
        .expect("isend_tagged")
        .wait_timeout(DEADLINE)
        .expect("tagged send completion");
    let ar2 = g
        .iallreduce(vec![1.0f64], ReduceOp::Sum)
        .expect("second iallreduce");
    assert_eq!(ar2.wait_timeout(DEADLINE).expect("fence"), vec![2.0]);
}

/// Member 0's half: the mixed wait loop. One heterogeneous set holds a
/// parked untagged `irecv`, a parked tagged `irecv`, and an in-flight
/// `iallreduce`; `wait_any` peels completions off as they land and
/// `wait_all` confirms the stragglers.
fn member_zero(g: &CollectiveGroup, p2p: &NcsConnection) {
    let want_plain = p2p.irecv();
    let want_tagged = p2p.irecv_tagged(9);
    let ar = g
        .iallreduce(vec![1.0f64; 8], ReduceOp::Sum)
        .expect("iallreduce");
    {
        let set: [&dyn Completion; 3] = [&want_plain, &want_tagged, &ar];
        // Something must complete well before the deadline (the allreduce
        // needs only the peer's matching call).
        let first = wait_any(&set, DEADLINE).expect("nothing completed");
        assert!(first < 3);
        assert!(wait_all(&set, DEADLINE), "mixed wait_all timed out");
        assert!(test_all(&set), "wait_all lied");
    }
    assert_eq!(ar.wait().expect("allreduce"), vec![3.0; 8]);
    let plain = want_plain.wait().expect("untagged receive");
    assert_eq!(&*plain, b"p2p untagged");
    assert_eq!(plain.tag(), None);
    let tagged = want_tagged.wait().expect("tagged receive");
    assert_eq!(&*tagged, b"p2p tag nine");
    assert_eq!(tagged.tag(), Some(9));
    // Fence so member 1's sends are fully consumed before shutdown.
    let ar2 = g
        .iallreduce(vec![1.0f64], ReduceOp::Sum)
        .expect("second iallreduce");
    assert_eq!(ar2.wait_timeout(DEADLINE).expect("fence"), vec![2.0]);
}

fn run_mixed_case(iface: Iface, pkg: &Arc<dyn ThreadPackage>, cfg: &ConnectionConfig) {
    let pair = build_pair(iface, pkg, cfg, 0.0);
    let g1 = Arc::clone(&pair.groups[1]);
    let p1 = pair.p2p[1].clone();
    let h = pkg.spawn_typed("member-1", move || member_one(&g1, &p1));
    member_zero(&pair.groups[0], &pair.p2p[0]);
    h.join().expect("member 1 panicked");
    pair.shutdown();
}

fn default_cfg(iface: Iface) -> ConnectionConfig {
    match iface {
        Iface::Hpi | Iface::Aci => ConnectionConfig::reliable(),
        Iface::Pipe | Iface::Sci => ConnectionConfig::unreliable(),
    }
}

fn kernel_pkg() -> Arc<dyn ThreadPackage> {
    Arc::new(KernelPackage::new())
}

#[test]
fn mixed_wait_kernel_all_interfaces() {
    let pkg = kernel_pkg();
    for iface in [Iface::Hpi, Iface::Pipe, Iface::Sci, Iface::Aci] {
        run_mixed_case(iface, &pkg, &default_cfg(iface));
    }
}

#[test]
fn mixed_wait_user_package_all_interfaces() {
    UserRuntime::new(UserConfig {
        mech: SwitchMech::Native,
        ..UserConfig::default()
    })
    .run(|pkg| {
        let pkg: Arc<dyn ThreadPackage> = Arc::new(pkg);
        for iface in [Iface::Hpi, Iface::Pipe, Iface::Sci, Iface::Aci] {
            run_mixed_case(iface, &pkg, &default_cfg(iface));
        }
    });
}

#[test]
fn mixed_wait_aci_seeded_loss_heals_under_requests() {
    // 0.1% cell loss on both host uplinks: selective repeat under the
    // connections must heal every segment while the application thread
    // blocks only in heterogeneous wait sets.
    let pkg = kernel_pkg();
    let cfg = ConnectionConfig::builder()
        .sdu_size(4 * 1024)
        .flow_control(FlowControlAlg::CreditBased {
            initial_credits: 4,
            dynamic: true,
        })
        .error_control(ErrorControlAlg::SelectiveRepeat {
            timeout: Duration::from_millis(150),
            max_retries: 30,
        })
        .build();
    let pair = build_pair(Iface::Aci, &pkg, &cfg, 0.001);
    let g1 = Arc::clone(&pair.groups[1]);
    let p1 = pair.p2p[1].clone();
    let h = pkg.spawn_typed("member-1", move || member_one(&g1, &p1));
    member_zero(&pair.groups[0], &pair.p2p[0]);
    h.join().expect("member 1 panicked");
    pair.shutdown();
}
