//! Failure surfacing: a rank that dies mid-collective must turn into a
//! transport error on every survivor within the control plane's timeout —
//! never a hang until the (much longer) operation timeout.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncs_collectives::{CollectiveConfig, CollectiveError, CollectiveGroup, ReduceOp};
use ncs_core::link::SciLink;
use ncs_core::{ConnectionConfig, NcsConnection, NcsNode};
use ncs_transport::sci::SciListener;

/// Three SCI-linked nodes (real sockets over loopback — the same wire the
/// multi-process cluster runtime uses), one collective group each.
fn sci_trio() -> (Vec<NcsNode>, Vec<Arc<CollectiveGroup>>) {
    let n = 3;
    let nodes: Vec<NcsNode> = (0..n)
        .map(|i| NcsNode::builder(&format!("c{i}")).build())
        .collect();
    let listeners: Vec<Arc<SciListener>> = (0..n)
        .map(|_| Arc::new(SciListener::bind("127.0.0.1:0").expect("bind")))
        .collect();
    let addrs: Vec<std::net::SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    for i in 0..n {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                nodes[i].attach_peer(
                    &format!("c{j}"),
                    SciLink::new(addr, Arc::clone(&listeners[i])),
                );
            }
        }
    }
    let mut conns: Vec<HashMap<usize, NcsConnection>> = (0..n).map(|_| HashMap::new()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let cij = nodes[i]
                .connect(&format!("c{j}"), ConnectionConfig::unreliable())
                .expect("connect");
            let cji = nodes[j].accept_default().expect("accept");
            conns[i].insert(j, cij);
            conns[j].insert(i, cji);
        }
    }
    // A deliberately huge operation timeout: the test passes only if the
    // failure path beats it by more than an order of magnitude.
    let cfg = CollectiveConfig {
        op_timeout: Duration::from_secs(120),
        ..CollectiveConfig::default()
    };
    let groups = nodes
        .iter()
        .zip(conns)
        .enumerate()
        .map(|(rank, (node, links))| {
            Arc::new(CollectiveGroup::with_config(node, 1, rank, links, cfg).expect("group"))
        })
        .collect();
    (nodes, groups)
}

#[test]
fn killed_rank_surfaces_as_transport_error_not_a_hang() {
    let (nodes, groups) = sci_trio();

    // Round 1: everyone participates — sanity that the group works.
    let warm: Vec<_> = groups
        .iter()
        .enumerate()
        .map(|(rank, g)| {
            let g = Arc::clone(g);
            std::thread::spawn(move || g.allreduce(vec![rank as f64], ReduceOp::Sum))
        })
        .collect();
    for h in warm {
        assert_eq!(h.join().unwrap().unwrap(), vec![3.0]);
    }

    // Round 2: ranks 0 and 1 enter the collective; rank 2 dies instead
    // (its node shuts down, closing every connection it owns).
    let survivors: Vec<_> = groups[..2]
        .iter()
        .enumerate()
        .map(|(rank, g)| {
            let g = Arc::clone(g);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let r = g.allreduce(vec![rank as f64], ReduceOp::Sum);
                (r, t0.elapsed())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200));
    let dead = nodes[2].clone();
    drop(groups); // rank 2's group pumps stop consuming
    dead.shutdown();

    for h in survivors {
        let (result, elapsed) = h.join().unwrap();
        let err = result.expect_err("survivor must not deliver a result");
        assert!(
            matches!(err, CollectiveError::Send(_) | CollectiveError::Closed),
            "expected a transport failure, got {err}"
        );
        assert!(
            elapsed < Duration::from_secs(20),
            "failure took {elapsed:?} — the op hung instead of failing fast"
        );
    }
    for n in nodes {
        n.shutdown();
    }
}
