//! Property tests for the log-bucketed histogram: quantile estimates
//! must always land in (or immediately above) the exact quantile's
//! bucket, for arbitrary sample sets across the full u64 range.

use ncs_obs::{bucket_index, Histogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Exact q-quantile of `sorted`: the smallest element whose 1-based rank
/// `r` satisfies `r ≥ ceil(q·n)` — the same rank convention the
/// histogram estimator uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Samples spanning the interesting shapes: tiny values, bucket
/// boundaries (2^k ± 1), and huge values.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    vec(
        prop_oneof![
            Just(0u64),
            1u64..16,
            (0u32..64).prop_map(|k| 1u64 << k),
            (1u32..64).prop_map(|k| (1u64 << k) - 1),
            (1u32..64).prop_map(|k| (1u64 << k) + 1),
            any::<u64>(),
        ],
        1..400,
    )
}

proptest! {
    /// For every quantile the gate cares about, the estimate's bucket is
    /// the exact quantile's bucket (the estimate is that bucket's upper
    /// bound, so it is also never *below* the exact value).
    #[test]
    fn quantile_estimates_are_within_one_bucket(samples in arb_samples()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        for (q, est) in [
            (0.50, snap.p50),
            (0.90, snap.p90),
            (0.99, snap.p99),
            (0.999, snap.p999),
        ] {
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                est >= exact,
                "q={} estimate {} below exact {}", q, est, exact
            );
            prop_assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={} estimate {} strayed from exact {}'s bucket",
                q, est, exact
            );
        }
        let max_exact = *sorted.last().unwrap();
        prop_assert!(snap.max >= max_exact);
        prop_assert_eq!(bucket_index(snap.max), bucket_index(max_exact));
    }

    /// The recorded sum is exact (modulo u64 wrap, which the strategy
    /// cannot reach with < 400 samples unless values are huge — so
    /// compare with wrapping arithmetic).
    #[test]
    fn sum_is_exact_under_wrapping(samples in arb_samples()) {
        let h = Histogram::new();
        let mut want = 0u64;
        for &v in &samples {
            h.record(v);
            want = want.wrapping_add(v);
        }
        prop_assert_eq!(h.sum(), want);
    }
}
