//! The [`Registry`]: where every layer's instruments live.
//!
//! A registry is a named bag of instruments plus a list of pluggable
//! [`MetricSource`]s (adapters over subsystems that keep their own
//! internal stats, e.g. the buffer pool or a reactor). Registration
//! dedupes by `(name, labels)` and hands back a clone of the existing
//! instrument, so two callers asking for the same series share one
//! atomic. The registry lock is touched only at registration,
//! deregistration and snapshot time — never on the metric hot path.

use std::sync::Arc;
use std::sync::Mutex;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{Family, MetricKind, MetricValue, MetricsSnapshot, Series};

/// A label set: `(key, value)` pairs identifying one series within a
/// family (e.g. `[("conn", "3"), ("peer", "rank1")]`).
pub type Labels = Vec<(String, String)>;

fn labels_of(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Labels,
    instrument: Instrument,
}

/// A subsystem that renders its internal statistics as metric families
/// on demand instead of registering individual instruments — the
/// adapter path for components that predate the registry (buffer pool,
/// reactor, thread packages) or whose stats are computed, not stored.
pub trait MetricSource: Send + Sync {
    /// Produces this source's families for one snapshot.
    fn collect(&self) -> Vec<Family>;
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<Entry>,
    sources: Vec<Arc<dyn MetricSource>>,
}

impl std::fmt::Debug for RegistryInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryInner")
            .field("entries", &self.entries.len())
            .field("sources", &self.sources.len())
            .finish()
    }
}

/// The metrics registry one node's layers register into.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let labels = labels_of(labels);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = inner
            .entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.instrument.clone();
        }
        let instrument = make();
        inner.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Registers (or retrieves) the counter series `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Registers (or retrieves) the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Registers (or retrieves) the histogram series `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.instrument(name, help, labels, || {
            Instrument::Histogram(Histogram::new())
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Adds a [`MetricSource`] whose families are appended to every
    /// snapshot.
    pub fn register_source(&self, source: Arc<dyn MetricSource>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.sources.push(source);
    }

    /// Drops every series carrying the label `key=value` — how a retiring
    /// component (e.g. a closed connection) keeps the registry from
    /// accumulating dead series. Handles held elsewhere keep working;
    /// they just stop being reported.
    pub fn unregister_label(&self, key: &str, value: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .entries
            .retain(|e| !e.labels.iter().any(|(k, v)| k == key && v == value));
    }

    /// Number of live registered series (sources not included).
    pub fn series_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Reads every instrument and source into one [`MetricsSnapshot`]
    /// tree, families sorted by name, series in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut families: Vec<Family> = Vec::new();
        for e in &inner.entries {
            let (kind, value) = match &e.instrument {
                Instrument::Counter(c) => (MetricKind::Counter, MetricValue::Counter(c.get())),
                Instrument::Gauge(g) => (MetricKind::Gauge, MetricValue::Gauge(g.get())),
                Instrument::Histogram(h) => {
                    (MetricKind::Histogram, MetricValue::Histogram(h.snapshot()))
                }
            };
            let series = Series {
                labels: e.labels.clone(),
                value,
            };
            match families.iter_mut().find(|f| f.name == e.name) {
                Some(f) => f.series.push(series),
                None => families.push(Family {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    kind,
                    series: vec![series],
                }),
            }
        }
        for source in &inner.sources {
            for fam in source.collect() {
                match families.iter_mut().find(|f| f.name == fam.name) {
                    Some(f) => f.series.extend(fam.series),
                    None => families.push(fam),
                }
            }
        }
        drop(inner);
        families.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { families }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("conn", "1")]);
        let b = r.counter("x_total", "help", &[("conn", "1")]);
        let c = r.counter("x_total", "help", &[("conn", "2")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
        assert_eq!(r.series_count(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "", &[]);
        let _ = r.gauge("x", "", &[]);
    }

    #[test]
    fn unregister_label_retires_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "", &[("conn", "1")]);
        let _ = r.counter("x_total", "", &[("conn", "2")]);
        let _ = r.gauge("depth", "", &[("conn", "1")]);
        r.unregister_label("conn", "1");
        assert_eq!(r.series_count(), 1);
        // Detached handles keep working.
        a.inc();
        assert_eq!(a.get(), 1);
    }

    #[test]
    fn snapshot_groups_series_into_families() {
        let r = Registry::new();
        r.counter("msgs_total", "messages", &[("conn", "1")]).add(3);
        r.counter("msgs_total", "messages", &[("conn", "2")]).add(4);
        r.gauge("depth", "queue depth", &[]).set(7);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 2);
        let msgs = snap.family("msgs_total").expect("family");
        assert_eq!(msgs.series.len(), 2);
        assert_eq!(snap.counter_total("msgs_total"), 7);
    }

    struct FixedSource;
    impl MetricSource for FixedSource {
        fn collect(&self) -> Vec<Family> {
            vec![Family {
                name: "src_metric".into(),
                help: "from a source".into(),
                kind: MetricKind::Counter,
                series: vec![Series {
                    labels: vec![],
                    value: MetricValue::Counter(9),
                }],
            }]
        }
    }

    #[test]
    fn sources_contribute_families() {
        let r = Registry::new();
        r.register_source(Arc::new(FixedSource));
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("src_metric"), 9);
    }
}
