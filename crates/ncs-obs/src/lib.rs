//! # ncs-obs — the NCS telemetry plane
//!
//! One registry, every layer. The paper's evaluation lives and dies by
//! instrumentation (its Table-I send-path breakdown is the whole §5
//! argument), and the grown system had sprouted five disjoint stat
//! islands — connection counters, reactor stats, buffer-pool stats,
//! thread-package stats, ATM-simulator stats — none of which could be
//! read as one picture of a run. This crate is that picture:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free instruments.
//!   Handles are cheap clones over shared atomics: the hot path owns
//!   its handle, the [`Registry`] keeps a twin for snapshots, and a
//!   mutation is a single relaxed atomic op.
//! * [`Registry`] — dedup-by-`(name, labels)` registration, pluggable
//!   [`MetricSource`] adapters for subsystems that keep their own
//!   internal stats, and [`Registry::snapshot`] producing one
//!   [`MetricsSnapshot`] tree renderable as an aligned table
//!   ([`MetricsSnapshot::render_table`]), Prometheus text exposition
//!   ([`MetricsSnapshot::render_prometheus`]) or JSON
//!   ([`MetricsSnapshot::render_json`]).
//! * [`Histogram`] — log2-bucketed latency distribution whose
//!   p50/p90/p99/p999 estimates are exact to within one bucket
//!   (a factor of two), with no locks and no allocation on record.
//! * [`FlightRecorder`] — the per-connection message-lifecycle ring
//!   (isend → packetize → FC wait → EC session → wire → deliver),
//!   two atomic words per event, tear-tolerant dumps, and a runtime
//!   kill-switch whose "off" cost is a single relaxed load.
//! * [`postmortem`] — the `NCS_TELEMETRY_FILE` sink a dying rank writes
//!   its final dump to, which `ncs-launch` wraps with the exit cause.
//!
//! The crate is dependency-free so every layer of the workspace can
//! depend on it without cycles.
//!
//! ```
//! use ncs_obs::{Registry, EventKind, FlightRecorder};
//!
//! let registry = Registry::new();
//! let sent = registry.counter("msgs_sent_total", "sends", &[("conn", "1")]);
//! let lat = registry.histogram("send_us", "send latency", &[]);
//! sent.inc();
//! lat.record(12);
//!
//! let flight = FlightRecorder::new(64);
//! flight.record(EventKind::Isend, 0, 0, 8);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter_total("msgs_sent_total"), 1);
//! assert!(snap.render_prometheus().contains("# TYPE send_us histogram"));
//! assert_eq!(flight.dump().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod postmortem;
pub mod registry;
pub mod snapshot;

pub use flight::{EventKind, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    bucket_index, bucket_upper, Counter, Gauge, HistSnapshot, Histogram, HIST_BUCKETS,
};
pub use registry::{Labels, MetricSource, Registry};
pub use snapshot::{Family, MetricKind, MetricValue, MetricsSnapshot, Series};
