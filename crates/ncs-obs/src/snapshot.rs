//! The [`MetricsSnapshot`] tree and its three renderings: an aligned
//! human-readable table, Prometheus text exposition, and a JSON form
//! used by cluster aggregation (`ncs-launch --telemetry`) and the
//! post-mortem sink.

use crate::json;
use crate::metrics::{bucket_upper, HistSnapshot};

/// What kind of instrument a family's series come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistSnapshot),
}

/// One labelled series within a [`Family`].
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Label pairs identifying this series.
    pub labels: Vec<(String, String)>,
    /// The value read at snapshot time.
    pub value: MetricValue,
}

impl Series {
    fn label_str(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

/// All series sharing one metric name.
#[derive(Clone, Debug, PartialEq)]
pub struct Family {
    /// Metric name (Prometheus-style, e.g. `ncs_conn_messages_sent_total`).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// The series, in registration order.
    pub series: Vec<Series>,
}

/// A point-in-time reading of a whole [`Registry`](crate::Registry):
/// every family, every series, every source.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<Family>,
}

impl MetricsSnapshot {
    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of a counter family across all its series (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name)
            .map(|f| {
                f.series
                    .iter()
                    .map(|s| match &s.value {
                        MetricValue::Counter(v) => *v,
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The human-readable table: one line per series, values aligned.
    ///
    /// Histograms print `count/mean/p50/p99/p999`.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for f in &self.families {
            for s in &f.series {
                let name = format!("{}{}", f.name, s.label_str());
                let value = match &s.value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(h) => format!(
                        "count={} mean={:.1} p50≤{} p99≤{} p999≤{}",
                        h.count,
                        h.mean(),
                        h.p50,
                        h.p99,
                        h.p999
                    ),
                };
                rows.push((name, value));
            }
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4 flavour).
    ///
    /// Histograms emit cumulative `_bucket{le=...}` series over the
    /// non-empty log2 buckets plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            if !f.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            }
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
            for s in &f.series {
                match &s.value {
                    MetricValue::Counter(v) => {
                        out.push_str(&format!("{}{} {v}\n", f.name, s.label_str()));
                    }
                    MetricValue::Gauge(v) => {
                        out.push_str(&format!("{}{} {v}\n", f.name, s.label_str()));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (b, &c) in h.buckets.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            cum += c;
                            let mut labels = s.labels.clone();
                            labels.push(("le".into(), bucket_upper(b).to_string()));
                            let series = Series {
                                labels,
                                value: MetricValue::Counter(cum),
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {cum}\n",
                                f.name,
                                series.label_str()
                            ));
                        }
                        let mut labels = s.labels.clone();
                        labels.push(("le".into(), "+Inf".into()));
                        let series = Series {
                            labels,
                            value: MetricValue::Counter(h.count),
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            series.label_str(),
                            h.count
                        ));
                        out.push_str(&format!("{}_sum{} {}\n", f.name, s.label_str(), h.sum));
                        out.push_str(&format!("{}_count{} {}\n", f.name, s.label_str(), h.count));
                    }
                }
            }
        }
        out
    }

    /// The JSON form: an array of family objects. Histogram series carry
    /// their summary statistics, not raw buckets.
    ///
    /// ```json
    /// [{"name":"x_total","kind":"counter","series":
    ///    [{"labels":{"conn":"1"},"value":3}]}]
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"series\":[",
                json::escape(&f.name),
                f.kind.as_str()
            ));
            for (j, s) in f.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (k, (lk, lv)) in s.labels.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{}\":\"{}\"",
                        json::escape(lk),
                        json::escape(lv)
                    ));
                }
                out.push_str("},\"value\":");
                match &s.value {
                    MetricValue::Counter(v) => out.push_str(&v.to_string()),
                    MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                    MetricValue::Histogram(h) => out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                        h.count, h.sum, h.p50, h.p90, h.p99, h.p999, h.max
                    )),
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        MetricsSnapshot {
            families: vec![
                Family {
                    name: "lat_us".into(),
                    help: "latency".into(),
                    kind: MetricKind::Histogram,
                    series: vec![Series {
                        labels: vec![("conn".into(), "1".into())],
                        value: MetricValue::Histogram(h.snapshot()),
                    }],
                },
                Family {
                    name: "msgs_total".into(),
                    help: "messages".into(),
                    kind: MetricKind::Counter,
                    series: vec![Series {
                        labels: vec![],
                        value: MetricValue::Counter(42),
                    }],
                },
            ],
        }
    }

    #[test]
    fn table_lists_every_series() {
        let t = sample().render_table();
        assert!(t.contains("msgs_total"), "{t}");
        assert!(t.contains("lat_us{conn=\"1\"}"), "{t}");
        assert!(t.contains("count=4"), "{t}");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let p = sample().render_prometheus();
        assert!(p.contains("# TYPE msgs_total counter"), "{p}");
        assert!(p.contains("msgs_total 42"), "{p}");
        assert!(p.contains("# TYPE lat_us histogram"), "{p}");
        assert!(p.contains("lat_us_bucket{conn=\"1\",le=\"+Inf\"} 4"), "{p}");
        assert!(p.contains("lat_us_sum{conn=\"1\"} 106"), "{p}");
        assert!(p.contains("lat_us_count{conn=\"1\"} 4"), "{p}");
        // Cumulative buckets end at the total count.
        assert!(p.contains("le=\"127\"} 4"), "{p}");
    }

    #[test]
    fn json_rendering_is_wellformed_enough_to_grep() {
        let j = sample().render_json();
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\"name\":\"msgs_total\""), "{j}");
        assert!(j.contains("\"value\":42"), "{j}");
        assert!(j.contains("\"count\":4"), "{j}");
    }
}
