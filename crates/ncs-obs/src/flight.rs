//! The per-connection **flight recorder**: a fixed-size, lock-free ring
//! of message-lifecycle events cheap enough to leave on in production.
//!
//! Each event packs into two `AtomicU64` words (timestamp-µs + length,
//! and kind + tag + seq); recording is one relaxed `fetch_add` to claim
//! a slot, two relaxed stores, and one `Instant::elapsed` call. A
//! runtime kill-switch reduces the whole path to a single relaxed load,
//! which is the "instrumentation off" baseline the perf gate measures
//! against.
//!
//! Dumping is tear-tolerant by design: a reader may observe a slot
//! whose two words straddle a concurrent overwrite (the ring keeps no
//! per-slot locks). Such an event can pair the timestamp of one wrap
//! with the kind/tag of another — acceptable for a post-mortem
//! diagnostic, and the price of keeping the record path wait-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::json;

/// Default ring capacity (events per connection).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// A stage in the life of a message, in wire order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Application submitted a send (`isend`/`send`).
    Isend = 1,
    /// Message segmented into packets for the wire.
    Packetize = 2,
    /// Send stalled waiting for flow-control credit.
    FcWait = 3,
    /// Error-control session activity (ack processed).
    EcSession = 4,
    /// Packet handed to the transport.
    Wire = 5,
    /// Error control retransmitted packets.
    Retransmit = 6,
    /// Message delivered to the application-side delivery queue.
    Deliver = 7,
    /// The link failed or the peer vanished (fail-fast).
    LinkDown = 8,
    /// Slot content did not decode (torn or from an older version).
    Unknown = 0,
}

impl EventKind {
    fn from_u8(v: u8) -> EventKind {
        match v {
            1 => EventKind::Isend,
            2 => EventKind::Packetize,
            3 => EventKind::FcWait,
            4 => EventKind::EcSession,
            5 => EventKind::Wire,
            6 => EventKind::Retransmit,
            7 => EventKind::Deliver,
            8 => EventKind::LinkDown,
            _ => EventKind::Unknown,
        }
    }

    /// Stable lower-case name (used in dumps and docs).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Isend => "isend",
            EventKind::Packetize => "packetize",
            EventKind::FcWait => "fc_wait",
            EventKind::EcSession => "ec_session",
            EventKind::Wire => "wire",
            EventKind::Retransmit => "retransmit",
            EventKind::Deliver => "deliver",
            EventKind::LinkDown => "link_down",
            EventKind::Unknown => "unknown",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the recorder was created (40-bit, ~2 weeks).
    pub micros: u64,
    /// Lifecycle stage.
    pub kind: EventKind,
    /// Message tag (channel tags included).
    pub tag: u32,
    /// Packet sequence number where meaningful (24-bit, else 0).
    pub seq: u32,
    /// Payload length in bytes (24-bit, saturating).
    pub len: u32,
}

impl FlightEvent {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"us\":{},\"kind\":\"{}\",\"tag\":{},\"seq\":{},\"len\":{}}}",
            self.micros,
            self.kind.as_str(),
            self.tag,
            self.seq,
            self.len
        )
    }
}

struct Slot {
    /// `micros << 24 | len` (len saturated to 24 bits).
    a: AtomicU64,
    /// `kind << 56 | tag << 24 | seq` (seq saturated to 24 bits).
    /// Every recordable kind is non-zero, so `b == 0` means "empty".
    b: AtomicU64,
}

const LEN_MASK: u64 = (1 << 24) - 1;
const SEQ_MASK: u64 = (1 << 24) - 1;
const TAG_MASK: u64 = u32::MAX as u64;

struct FlightInner {
    origin: Instant,
    enabled: AtomicBool,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for FlightInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightInner")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .finish()
    }
}

/// The flight recorder. Clones share the same ring.
#[derive(Clone, Debug)]
pub struct FlightRecorder(Arc<FlightInner>);

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder(Arc::new(FlightInner {
            origin: Instant::now(),
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
        }))
    }

    /// Runtime kill-switch. Disabled, [`record`](Self::record) is a
    /// single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.0.slots.len()
    }

    /// Total events recorded since creation (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.0.head.load(Ordering::Relaxed)
    }

    /// Records one lifecycle event ([`EventKind::Unknown`] is a no-op:
    /// its zero discriminant is reserved to mean "empty slot").
    #[inline]
    pub fn record(&self, kind: EventKind, tag: u32, seq: u32, len: usize) {
        let inner = &*self.0;
        if !inner.enabled.load(Ordering::Relaxed) || kind == EventKind::Unknown {
            return;
        }
        let micros = inner.origin.elapsed().as_micros() as u64;
        let a = (micros << 24) | (len as u64).min(LEN_MASK);
        let b = ((kind as u64) << 56) | ((tag as u64) << 24) | (seq as u64).min(SEQ_MASK);
        let idx = inner.head.fetch_add(1, Ordering::Relaxed) as usize % inner.slots.len();
        inner.slots[idx].a.store(a, Ordering::Relaxed);
        inner.slots[idx].b.store(b, Ordering::Relaxed);
    }

    /// Decodes the ring's current contents, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let inner = &*self.0;
        let head = inner.head.load(Ordering::Relaxed) as usize;
        let cap = inner.slots.len();
        let mut out = Vec::with_capacity(cap.min(head));
        // Oldest surviving slot is at `head % cap` once the ring wraps.
        let (start, end) = if head >= cap {
            (head, head + cap)
        } else {
            (0, cap)
        };
        for i in start..end {
            let slot = &inner.slots[i % cap];
            let b = slot.b.load(Ordering::Relaxed);
            if b == 0 {
                continue; // never written
            }
            let a = slot.a.load(Ordering::Relaxed);
            out.push(FlightEvent {
                micros: a >> 24,
                len: (a & LEN_MASK) as u32,
                kind: EventKind::from_u8((b >> 56) as u8),
                tag: ((b >> 24) & TAG_MASK) as u32,
                seq: (b & SEQ_MASK) as u32,
            });
        }
        out
    }

    /// Renders the dump as a JSON array of event objects.
    pub fn dump_json(&self) -> String {
        let events: Vec<String> = self.dump().iter().map(FlightEvent::to_json).collect();
        format!("[{}]", events.join(","))
    }

    /// Renders a labelled dump object:
    /// `{"conn":"<label>","recorded":N,"events":[...]}`.
    pub fn dump_json_labelled(&self, label: &str) -> String {
        format!(
            "{{\"conn\":\"{}\",\"recorded\":{},\"events\":{}}}",
            json::escape(label),
            self.recorded(),
            self.dump_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let r = FlightRecorder::new(8);
        r.record(EventKind::Isend, 7, 0, 64);
        r.record(EventKind::Wire, 7, 3, 64);
        r.record(EventKind::Deliver, 7, 3, 64);
        let d = r.dump();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].kind, EventKind::Isend);
        assert_eq!(d[2].kind, EventKind::Deliver);
        assert_eq!(d[1].seq, 3);
        assert_eq!(d[0].tag, 7);
        assert_eq!(d[0].len, 64);
        assert!(d[0].micros <= d[2].micros);
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let r = FlightRecorder::new(4);
        for i in 0..10u32 {
            r.record(EventKind::Wire, i, i, 1);
        }
        let d = r.dump();
        assert_eq!(d.len(), 4);
        let tags: Vec<u32> = d.iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn kill_switch_stops_recording() {
        let r = FlightRecorder::new(4);
        r.set_enabled(false);
        r.record(EventKind::Isend, 0, 0, 0);
        assert!(r.dump().is_empty());
        assert_eq!(r.recorded(), 0);
        r.set_enabled(true);
        r.record(EventKind::Isend, 0, 0, 0);
        assert_eq!(r.dump().len(), 1);
    }

    #[test]
    fn zero_event_still_visible() {
        // (tag=0, seq=0, len=0) must not look like an empty slot.
        let r = FlightRecorder::new(4);
        r.record(EventKind::Isend, 0, 0, 0);
        let d = r.dump();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, EventKind::Isend);
    }

    #[test]
    fn saturates_len_and_seq() {
        let r = FlightRecorder::new(2);
        r.record(EventKind::Wire, u32::MAX, u32::MAX, usize::MAX);
        let d = r.dump();
        assert_eq!(d[0].tag, u32::MAX);
        assert_eq!(d[0].seq, (1 << 24) - 1);
        assert_eq!(d[0].len, (1 << 24) - 1);
    }

    #[test]
    fn json_dump_shape() {
        let r = FlightRecorder::new(4);
        r.record(EventKind::FcWait, 1, 2, 3);
        let j = r.dump_json_labelled("1->rank1");
        assert!(j.contains("\"conn\":\"1->rank1\""), "{j}");
        assert!(j.contains("\"kind\":\"fc_wait\""), "{j}");
        assert!(j.contains("\"recorded\":1"), "{j}");
    }

    #[test]
    fn concurrent_recording_loses_nothing_structurally() {
        let r = FlightRecorder::new(64);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        r.record(EventKind::Wire, t, i, 8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.recorded(), 4000);
        assert_eq!(r.dump().len(), 64);
    }
}
