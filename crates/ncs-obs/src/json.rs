//! Minimal hand-rolled JSON emission helpers (the workspace is
//! dependency-free by design — no serde). The telemetry plane emits
//! JSON by string assembly; this module keeps the escaping in one
//! place.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an optional process exit code as JSON (`null` when the child
/// died to a signal).
pub fn opt_i32(v: Option<i32>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn opt_i32_renders_null() {
        assert_eq!(opt_i32(None), "null");
        assert_eq!(opt_i32(Some(-3)), "-3");
    }
}
