//! The primitive instruments: [`Counter`], [`Gauge`] and the
//! log-bucketed [`Histogram`].
//!
//! All three are cheap-clone handles over shared atomics: cloning a
//! handle yields another view of the *same* instrument, so a hot path
//! can own its handle outright (no registry lookup, no lock) while the
//! registry retains a twin for snapshotting. Every mutation is a single
//! relaxed atomic RMW — the instruments never take a lock and never
//! allocate after construction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
///
/// ```
/// let c = ncs_obs::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether `other` is a handle to the same underlying counter.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// An instantaneous signed level (queue depth, live connections, …).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether `other` is a handle to the same underlying gauge.
    pub fn same_as(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Number of log2 buckets a [`Histogram`] keeps: bucket `b ≥ 1` holds
/// samples in `[2^(b-1), 2^b)`, bucket 0 holds the value 0, and the last
/// bucket (index 64) holds samples with the top bit set.
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket index a sample lands in. Bucket 0 ⇔ `v == 0`;
/// otherwise `bucket_index(v) == v.ilog2() + 1` (the bit width of `v`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `b` can hold (its inclusive upper bound).
/// Quantile estimates report this bound, so an estimate is always within
/// the true quantile's bucket.
#[inline]
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free latency/size histogram with logarithmic (powers-of-two)
/// buckets.
///
/// Recording is two relaxed `fetch_add`s plus one for the running sum;
/// quantiles are estimated from the bucket counts at snapshot time and
/// are exact to within one log2 bucket (i.e. within a factor of two) —
/// see [`HistSnapshot`].
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram not attached to any registry.
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Whether `other` is a handle to the same underlying histogram.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// A point-in-time copy of the distribution with quantile estimates.
    ///
    /// Concurrent recording while snapshotting can skew `count` against
    /// the bucket totals by the handful of in-flight samples; the
    /// snapshot recomputes `count` from the buckets so quantile ranks
    /// stay self-consistent.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum = self.0.sum.load(Ordering::Relaxed);
        let q = |q: f64| quantile_from_buckets(&buckets, count, q);
        HistSnapshot {
            count,
            sum,
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            p999: q(0.999),
            max: buckets
                .iter()
                .rposition(|&c| c > 0)
                .map(bucket_upper)
                .unwrap_or(0),
            buckets,
        }
    }
}

fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Rank of the q-quantile, 1-based: the smallest rank r such that at
    // least a q fraction of samples are ≤ the r-th smallest sample.
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_upper(b);
        }
    }
    bucket_upper(buckets.len() - 1)
}

/// A point-in-time view of a [`Histogram`].
///
/// The quantile fields report the *inclusive upper bound* of the log2
/// bucket the true quantile falls in, so `p50`/`p90`/`p99`/`p999` are
/// never below the exact quantile and never more than one bucket (2×)
/// above it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples (recomputed from the buckets; see
    /// [`Histogram::snapshot`]).
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median estimate (upper bound of the median's bucket).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate.
    pub p999: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
    /// Raw per-bucket counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Counter::new()));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_index_matches_bit_width() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_members() {
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper(b), "v={v} b={b}");
            if b > 0 {
                assert!(v > bucket_upper(b - 1), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn quantiles_cover_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // Exact p50 is 500 (bucket 9: 256..=511) — estimate is the bound.
        assert_eq!(s.p50, 511);
        assert_eq!(s.p99, 1023);
        assert_eq!(s.max, 1023);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p999, 0);
        assert_eq!(s.mean(), 0.0);
    }
}
