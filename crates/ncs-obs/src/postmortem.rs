//! The post-mortem sink: when `NCS_TELEMETRY_FILE` names a path, a rank
//! writes its final telemetry there — on clean shutdown *and* on
//! fail-fast link-down — so a dead process still leaves a diagnosable
//! record. `ncs-launch` sets the variable to
//! `<log-dir>/<rank>.telemetry.json` and wraps the file with the exit
//! cause after reaping the child.

use std::path::PathBuf;

/// Environment variable naming the post-mortem sink file.
pub const TELEMETRY_FILE_ENV: &str = "NCS_TELEMETRY_FILE";

/// Environment variable that, when set to `1`, asks a rank to push its
/// telemetry snapshot to `ncsd` at shutdown (`ncs-launch --telemetry`).
pub const TELEMETRY_PUSH_ENV: &str = "NCS_TELEMETRY";

/// The configured sink path, if any.
pub fn sink_path() -> Option<PathBuf> {
    std::env::var_os(TELEMETRY_FILE_ENV)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Whether this process was asked to push telemetry to the rendezvous
/// daemon at shutdown.
pub fn push_requested() -> bool {
    std::env::var(TELEMETRY_PUSH_ENV).is_ok_and(|v| v == "1")
}

/// Best-effort overwrite of the sink with `json`. Each write replaces
/// the previous one, so the file always holds the *latest* (and, after
/// death, final) dump. Errors are swallowed: telemetry must never take
/// a data plane down.
pub fn write(json: &str) {
    let Some(path) = sink_path() else { return };
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(path, json);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; keep them in ONE test so
    // parallel test threads never race on the variable.
    #[test]
    fn sink_path_and_write_follow_env() {
        std::env::remove_var(TELEMETRY_FILE_ENV);
        assert!(sink_path().is_none());
        write("{}"); // no sink: must be a no-op, not a panic

        let dir = std::env::temp_dir().join(format!("ncs-obs-pm-{}", std::process::id()));
        let path = dir.join("sub").join("r0.telemetry.json");
        std::env::set_var(TELEMETRY_FILE_ENV, &path);
        assert_eq!(sink_path(), Some(path.clone()));
        write("{\"a\":1}");
        write("{\"a\":2}");
        let got = std::fs::read_to_string(&path).expect("sink written");
        assert_eq!(got, "{\"a\":2}", "last write wins");
        std::env::remove_var(TELEMETRY_FILE_ENV);
        let _ = std::fs::remove_dir_all(dir);

        std::env::remove_var(TELEMETRY_PUSH_ENV);
        assert!(!push_requested());
        std::env::set_var(TELEMETRY_PUSH_ENV, "1");
        assert!(push_requested());
        std::env::remove_var(TELEMETRY_PUSH_ENV);
    }
}
