//! Platform cost profiles.

use std::time::Duration;

/// Native byte order of a modelled platform. Both of the paper's platforms
/// are big-endian; heterogeneity penalties in 1998 message-passing systems
/// were triggered by *architecture* mismatch, not byte order alone (PVM's
/// `PvmDataDefault`, MPICH's conservative heterogeneous packing), which is
/// why [`PlatformProfile::arch`] drives conversion decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Most significant byte first (SPARC, POWER).
    BigEndian,
    /// Least significant byte first (x86).
    LittleEndian,
}

/// Communication cost model of one workstation platform.
///
/// The per-operation and per-byte costs below are calibrated against the
/// paper's Figures 12/13 (see `EXPERIMENTS.md` for the calibration notes):
/// they reproduce relative platform speed and the large-message divergence,
/// not exact 1998 microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformProfile {
    /// Human-readable platform name.
    pub name: String,
    /// Architecture tag; differing tags between two endpoints make the
    /// 1998 systems take their heterogeneous (conversion) paths.
    pub arch: String,
    /// Native byte order.
    pub byte_order: ByteOrder,
    /// Fixed cost of a send operation (syscall + protocol entry).
    pub send_op: Duration,
    /// Fixed cost of a receive operation.
    pub recv_op: Duration,
    /// TCP/IP-stack cost per byte (copies + checksum).
    pub per_byte_stack: Duration,
    /// XDR encode *or* decode cost per byte.
    pub per_byte_xdr: Duration,
    /// Plain memory-copy cost per byte (buffer packing without conversion).
    pub per_byte_copy: Duration,
    /// Kernel-level thread context switch.
    pub ctx_switch_kernel: Duration,
    /// User-level thread context switch.
    pub ctx_switch_user: Duration,
    /// Kernel socket buffer size (bytes) — 32 KB in the paper's tests.
    pub socket_buf: usize,
}

impl PlatformProfile {
    /// SUN-4 (SPARCstation) running SunOS 5.5 — the slower platform of
    /// Figure 12(a): one-way 64 KB costs ~15 model-ms in protocol stack.
    pub fn sun4() -> Self {
        PlatformProfile {
            name: "SUN-4/SunOS 5.5".to_owned(),
            arch: "sparc".to_owned(),
            byte_order: ByteOrder::BigEndian,
            send_op: Duration::from_micros(450),
            recv_op: Duration::from_micros(450),
            per_byte_stack: Duration::from_nanos(110),
            per_byte_xdr: Duration::from_nanos(900),
            per_byte_copy: Duration::from_nanos(25),
            ctx_switch_kernel: Duration::from_micros(90),
            ctx_switch_user: Duration::from_micros(12),
            socket_buf: 32 * 1024,
        }
    }

    /// IBM RS6000 running AIX 4.1 — the faster platform of Figure 12(b):
    /// roughly 2.5x quicker per byte than the SUN-4.
    pub fn rs6000() -> Self {
        PlatformProfile {
            name: "IBM RS6000/AIX 4.1".to_owned(),
            arch: "power".to_owned(),
            byte_order: ByteOrder::BigEndian,
            send_op: Duration::from_micros(200),
            recv_op: Duration::from_micros(200),
            per_byte_stack: Duration::from_nanos(45),
            per_byte_xdr: Duration::from_nanos(400),
            per_byte_copy: Duration::from_nanos(12),
            ctx_switch_kernel: Duration::from_micros(60),
            ctx_switch_user: Duration::from_micros(8),
            socket_buf: 32 * 1024,
        }
    }

    /// An effectively-free modern platform: used when the experiment wants
    /// real hardware speed (Table I, Figures 10/11) rather than a model.
    pub fn modern() -> Self {
        PlatformProfile {
            name: "modern (unmodelled)".to_owned(),
            arch: "native".to_owned(),
            byte_order: if cfg!(target_endian = "big") {
                ByteOrder::BigEndian
            } else {
                ByteOrder::LittleEndian
            },
            send_op: Duration::ZERO,
            recv_op: Duration::ZERO,
            per_byte_stack: Duration::ZERO,
            per_byte_xdr: Duration::ZERO,
            per_byte_copy: Duration::ZERO,
            ctx_switch_kernel: Duration::ZERO,
            ctx_switch_user: Duration::ZERO,
            socket_buf: 32 * 1024,
        }
    }

    /// Whether two endpoints count as heterogeneous for the 1998 systems'
    /// conversion decisions.
    pub fn heterogeneous_with(&self, other: &PlatformProfile) -> bool {
        self.arch != other.arch
    }

    /// Total modelled cost of pushing `bytes` through this platform's
    /// protocol stack once (fixed send cost + per-byte cost).
    pub fn send_cost(&self, bytes: usize) -> Duration {
        self.send_op + self.per_byte_stack * bytes as u32
    }

    /// Total modelled cost of receiving `bytes`.
    pub fn recv_cost(&self, bytes: usize) -> Duration {
        self.recv_op + self.per_byte_stack * bytes as u32
    }

    /// Modelled cost of XDR-converting `bytes` (one direction).
    pub fn xdr_cost(&self, bytes: usize) -> Duration {
        self.per_byte_xdr * bytes as u32
    }

    /// Modelled cost of memcpy-packing `bytes`.
    pub fn copy_cost(&self, bytes: usize) -> Duration {
        self.per_byte_copy * bytes as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun4_is_slower_than_rs6000() {
        let sun = PlatformProfile::sun4();
        let rs = PlatformProfile::rs6000();
        assert!(sun.send_cost(65536) > rs.send_cost(65536));
        assert!(sun.xdr_cost(65536) > rs.xdr_cost(65536));
    }

    #[test]
    fn calibration_magnitudes_match_figure12() {
        // One-way 64 KB on SUN-4 should be in the ~10-20 model-ms range so
        // that the round trip lands in the figure's 25-40 ms band for NCS.
        let sun = PlatformProfile::sun4();
        let one_way = sun.send_cost(65536) + sun.recv_cost(65536);
        assert!(one_way > Duration::from_millis(10), "{one_way:?}");
        assert!(one_way < Duration::from_millis(40), "{one_way:?}");

        // RS6000 64 KB round trip lands under 25 ms in Figure 12(b).
        let rs = PlatformProfile::rs6000();
        let round = (rs.send_cost(65536) + rs.recv_cost(65536)) * 2;
        assert!(round < Duration::from_millis(25), "{round:?}");
    }

    #[test]
    fn xdr_dominates_for_hetero_transfers() {
        // Figure 13: conversion costs dwarf stack costs for big messages.
        let sun = PlatformProfile::sun4();
        assert!(sun.xdr_cost(65536) > sun.per_byte_stack * 65536 * 2);
    }

    #[test]
    fn heterogeneity_detection() {
        let sun = PlatformProfile::sun4();
        let rs = PlatformProfile::rs6000();
        assert!(sun.heterogeneous_with(&rs));
        assert!(!sun.heterogeneous_with(&PlatformProfile::sun4()));
    }

    #[test]
    fn modern_platform_is_free() {
        let m = PlatformProfile::modern();
        assert_eq!(m.send_cost(1_000_000), Duration::ZERO);
        assert_eq!(m.xdr_cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn user_switch_cheaper_than_kernel_switch() {
        for p in [PlatformProfile::sun4(), PlatformProfile::rs6000()] {
            assert!(p.ctx_switch_user < p.ctx_switch_kernel, "{}", p.name);
        }
    }
}
