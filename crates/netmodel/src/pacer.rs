//! Delay injection with debt accumulation and time scaling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Minimum wall-clock sleep worth issuing; smaller debts accumulate.
const MIN_SLEEP: Duration = Duration::from_micros(20);

/// OS sleep overshoot guard: `thread::sleep` on a busy Linux box can
/// overshoot by a millisecond (timer slack), which time-scaled experiments
/// amplify badly. Sleep short, then spin the remainder.
const SLEEP_SLACK: Duration = Duration::from_micros(1500);

/// Waits `d` of wall time accurately: coarse sleep for the bulk, busy-wait
/// for the final stretch.
pub fn precise_wait(d: Duration) {
    let deadline = std::time::Instant::now() + d;
    if d > SLEEP_SLACK {
        std::thread::sleep(d - SLEEP_SLACK);
    }
    while std::time::Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Charges modelled costs as (scaled) wall-clock delays.
///
/// Model time `d` costs `d * time_scale` of wall time. Debt below the sleep
/// granularity accumulates atomically and is paid in batches, so charging
/// many microsecond-scale costs stays accurate without `sleep` overhead
/// dominating.
///
/// A pacer is shared by all threads of one modelled endpoint; each charge is
/// paid by the calling thread (concurrent threads each pay their own debt,
/// which matches distinct CPUs *not* being modelled — the 1998 hosts were
/// uniprocessors, but NCS's protocol threads serialise on the connection
/// pipeline anyway).
#[derive(Debug)]
pub struct Pacer {
    /// Wall seconds per model second.
    time_scale: f64,
    /// Accumulated unpaid wall-clock debt, in nanoseconds.
    debt_nanos: AtomicU64,
}

impl Pacer {
    /// A pacer with the given wall-per-model time scale.
    ///
    /// # Panics
    ///
    /// Panics unless `time_scale` is finite and non-negative. A scale of 0
    /// disables pacing entirely (costs are recorded nowhere).
    pub fn new(time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale >= 0.0,
            "time scale must be finite and non-negative"
        );
        Pacer {
            time_scale,
            debt_nanos: AtomicU64::new(0),
        }
    }

    /// A pacer that injects no delays (modern-platform experiments).
    pub fn disabled() -> Self {
        Pacer::new(0.0)
    }

    /// The configured wall-per-model scale.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Charges a model-time cost, sleeping if accumulated debt is due.
    pub fn charge(&self, model_cost: Duration) {
        if self.time_scale == 0.0 || model_cost.is_zero() {
            return;
        }
        let wall = model_cost.mul_f64(self.time_scale);
        let due = self
            .debt_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed)
            + wall.as_nanos() as u64;
        if due >= MIN_SLEEP.as_nanos() as u64 {
            // Claim the whole debt and pay it.
            let claimed = self.debt_nanos.swap(0, Ordering::Relaxed);
            if claimed > 0 {
                precise_wait(Duration::from_nanos(claimed));
            }
        }
    }

    /// Charges `per_byte * bytes` of model time.
    pub fn charge_per_byte(&self, per_byte: Duration, bytes: usize) {
        if self.time_scale == 0.0 || per_byte.is_zero() || bytes == 0 {
            return;
        }
        let nanos = per_byte.as_nanos() as u64 * bytes as u64;
        self.charge(Duration::from_nanos(nanos));
    }

    /// Forces any accumulated debt to be paid now (end of a measured
    /// region).
    pub fn settle(&self) {
        let claimed = self.debt_nanos.swap(0, Ordering::Relaxed);
        if claimed > 0 && self.time_scale > 0.0 {
            precise_wait(Duration::from_nanos(claimed));
        }
    }
}

/// Converts measured wall time back to model time for reporting.
#[derive(Debug, Clone, Copy)]
pub struct ModelClock {
    start: Instant,
    time_scale: f64,
}

impl ModelClock {
    /// Starts a clock under the given wall-per-model scale.
    ///
    /// # Panics
    ///
    /// Panics unless `time_scale` is finite and positive.
    pub fn start(time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time scale must be positive"
        );
        ModelClock {
            start: Instant::now(),
            time_scale,
        }
    }

    /// Model time elapsed since [`ModelClock::start`].
    pub fn elapsed_model(&self) -> Duration {
        self.start.elapsed().div_f64(self.time_scale)
    }

    /// Converts an externally measured wall duration to model time.
    pub fn to_model(&self, wall: Duration) -> Duration {
        wall.div_f64(self.time_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pacer_never_sleeps() {
        let p = Pacer::disabled();
        let start = Instant::now();
        for _ in 0..10_000 {
            p.charge(Duration::from_millis(10));
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn charges_accumulate_to_scaled_wall_time() {
        let p = Pacer::new(0.5); // wall = half of model
        let start = Instant::now();
        for _ in 0..100 {
            p.charge(Duration::from_micros(100)); // 10 ms model total
        }
        p.settle();
        let wall = start.elapsed();
        assert!(wall >= Duration::from_millis(4), "wall {wall:?}");
        assert!(wall < Duration::from_millis(60), "wall {wall:?}");
    }

    #[test]
    fn charge_per_byte_scales_with_length() {
        let p = Pacer::new(1.0);
        let start = Instant::now();
        p.charge_per_byte(Duration::from_nanos(100), 50_000); // 5 ms model
        p.settle();
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn small_charges_batch_instead_of_sleeping_each_time() {
        let p = Pacer::new(1.0);
        let start = Instant::now();
        // 100 x 1 us = 100 us model: a single batched sleep at most.
        for _ in 0..100 {
            p.charge(Duration::from_micros(1));
        }
        // Without batching this would cost >= 100 sleep syscalls (~5+ ms).
        assert!(start.elapsed() < Duration::from_millis(5));
        p.settle();
    }

    #[test]
    fn model_clock_converts_back() {
        let c = ModelClock::start(0.001);
        std::thread::sleep(Duration::from_millis(2));
        // 2 ms wall at 0.001 wall-per-model = 2 s model.
        assert!(c.elapsed_model() >= Duration::from_secs(1));
        assert_eq!(c.to_model(Duration::from_millis(1)), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "time scale must be")]
    fn invalid_scale_rejected() {
        let _ = Pacer::new(f64::NAN);
    }
}
