//! cluster_elastic — the elastic-world resilience demo (and CI's
//! `cluster-smoke` resilience test): a 4-rank multi-process world with
//! membership enabled survives losing a rank mid-allreduce.
//!
//! The script, across real OS processes:
//!
//! 1. All four ranks bootstrap through `ncsd`, enable membership, and
//!    complete a first allreduce.
//! 2. Rank 2 goes *silent* — its heartbeat agent stops while its sockets
//!    stay open — so the failure detector, not a connection error, is
//!    what convicts it. It then exits nonzero (the "crash").
//! 3. The survivors' in-flight round-2 allreduce fails fast with the
//!    typed [`CollectiveError::ViewChanged`] when the death view lands —
//!    no hang, no world error.
//! 4. The launcher (`--respawn-dead`, or this binary's self-launch mode)
//!    respawns the slot with a bumped `NCS_INCARNATION`; the replacement
//!    [`ClusterNode::rejoin`]s via `ncsd` state replay, every survivor
//!    re-meshes to it, and the healed world completes a recovery
//!    allreduce + barrier over a freshly built topology.
//!
//! Ways to run it:
//!
//! * under the launcher (what CI's `cluster-smoke` job does):
//!   `./target/release/ncs-launch --np 4 --respawn-dead -- \
//!        ./target/release/examples/cluster_elastic`
//! * directly: `cargo run --release --example cluster_elastic` (with no
//!   `NCS_RANK` in the environment the process becomes its own launcher,
//!   re-executing itself as 4 ranks with the respawn policy on).

use std::sync::Arc;
use std::time::Duration;

use ncs::collectives::{CollectiveError, ReduceOp};
use ncs::runtime::membership;
use ncs::runtime::{
    launch, ClusterConfig, ClusterNode, LaunchSpec, MemberAgent, MembershipConfig,
    MembershipMetrics, View,
};

const WORLD: u32 = 4;
/// The rank that dies mid-run (and rejoins as incarnation 1).
const DOOMED: u32 = 2;

/// Detector thresholds for the run: quick enough that the kill-and-heal
/// story fits in seconds, lax enough that a stalled CI runner doesn't
/// convict a healthy rank. Exported to the children (and the embedded
/// `ncsd`) by the self-launch path when the environment doesn't already
/// pin them — `MembershipConfig::from_env` picks them up everywhere.
const DETECTOR_ENV: [(&str, &str); 3] = [
    (membership::env::HEARTBEAT_MS, "100"),
    (membership::env::SUSPECT_MS, "600"),
    (membership::env::DEAD_MS, "1200"),
];

fn expected_sum() -> Vec<f64> {
    vec![(0..WORLD).map(f64::from).sum()]
}

/// A survivor's life: watch the group, ride out the death as a typed
/// `ViewChanged`, re-mesh, and finish the job over the healed world.
fn run_survivor(cfg: ClusterConfig) -> Result<(), Box<dyn std::error::Error>> {
    let rank = cfg.rank;
    let node = ClusterNode::bootstrap(cfg)?;
    node.enable_membership()?;
    println!("rank {rank}: up, membership enabled");

    let g1 = node.collective_group(1)?;
    node.watch_group(&g1);
    let sum = g1.allreduce(vec![f64::from(rank)], ReduceOp::Sum)?;
    assert_eq!(sum, expected_sum(), "round 1 disagreed");
    println!("rank {rank}: round 1 allreduce ok ({sum:?})");

    // Round 2 stalls on the silent rank until ncsd's death view aborts
    // the watched group — the typed fail-fast the membership plane owes
    // every in-flight collective.
    match g1.allreduce(vec![f64::from(rank)], ReduceOp::Sum) {
        Err(CollectiveError::ViewChanged { epoch }) => {
            println!("rank {rank}: round 2 aborted by view change (epoch {epoch})");
            assert!(epoch >= 2, "death view must bump the epoch: {epoch}");
        }
        other => return Err(format!("rank {rank}: expected ViewChanged, got {other:?}").into()),
    }
    g1.close();

    // Recovery: wait until the replacement incarnation has rejoined and
    // this rank has been re-meshed to it.
    let view = node.wait_view(
        |v| v.is_full() && v.member(DOOMED).is_some_and(|m| m.incarnation >= 1),
        Duration::from_secs(90),
    )?;
    println!(
        "rank {rank}: healed view {} ({} members)",
        view.id,
        view.members.len()
    );
    assert!(
        node.connection(DOOMED).is_some(),
        "rank {rank}: no re-meshed link to slot {DOOMED}"
    );

    let g2 = node.collective_group(2)?;
    node.watch_group(&g2);
    let sum = g2.allreduce(vec![f64::from(rank)], ReduceOp::Sum)?;
    assert_eq!(sum, expected_sum(), "recovery round disagreed");
    g2.barrier()?;
    println!("rank {rank}: recovery allreduce + barrier ok ({sum:?})");
    g2.close();
    node.shutdown();
    Ok(())
}

/// The doomed rank's first life: join round 1, then go silent (heartbeats
/// stop, sockets stay open) so the failure detector convicts it, and
/// finally crash out so the launcher's respawn policy revives the slot.
fn run_doomed(cfg: ClusterConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mcfg = MembershipConfig::from_env();
    let ncsd = cfg.ncsd;
    let node = ClusterNode::bootstrap(cfg)?;
    // Heartbeat through a bare agent this process can silence without
    // tearing the node down: the sockets must outlive the heartbeats.
    let mut agent = MemberAgent::start(
        ncsd,
        DOOMED,
        0,
        mcfg.clone(),
        MembershipMetrics::detached(),
        Arc::new(|_: &View| {}),
    )?;

    let g1 = node.collective_group(1)?;
    let sum = g1.allreduce(vec![f64::from(DOOMED)], ReduceOp::Sum)?;
    assert_eq!(sum, expected_sum(), "round 1 disagreed");
    println!("rank {DOOMED}: round 1 allreduce ok — going silent");
    g1.close();
    agent.stop();

    // Stay resident (sockets open) until the detector has declared this
    // rank dead and the survivors have seen the view: the margin is
    // generous because nothing downstream races it — survivors sit in
    // `wait_view` until the replacement arrives.
    std::thread::sleep(mcfg.dead_after + 10 * mcfg.heartbeat_interval + Duration::from_secs(1));
    println!("rank {DOOMED}: crashing (exit 3)");
    std::process::exit(3);
}

/// The replacement's life: rejoin the vacated slot via state replay and
/// run the recovery round with the survivors.
fn run_replacement(cfg: ClusterConfig) -> Result<(), Box<dyn std::error::Error>> {
    let incarnation = cfg.incarnation;
    let node = ClusterNode::rejoin(cfg)?;
    let replayed = node.current_view().ok_or("no replayed view")?;
    assert!(replayed.is_full(), "replayed view not full: {replayed:?}");
    node.enable_membership()?;
    println!(
        "rank {DOOMED}: rejoined as incarnation {incarnation} (replayed view {})",
        replayed.id
    );

    let g2 = node.collective_group(2)?;
    let sum = g2.allreduce(vec![f64::from(DOOMED)], ReduceOp::Sum)?;
    assert_eq!(sum, expected_sum(), "recovery round disagreed");
    g2.barrier()?;
    println!("rank {DOOMED}: recovery allreduce + barrier ok ({sum:?})");
    g2.close();
    node.shutdown();
    Ok(())
}

fn run_rank() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusterConfig::from_env()?;
    if cfg.rank != DOOMED {
        run_survivor(cfg)
    } else if cfg.incarnation == 0 {
        run_doomed(cfg)
    } else {
        run_replacement(cfg)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::var("NCS_RANK").is_ok() {
        return run_rank();
    }
    // No rank identity: act as the launcher (exactly what `ncs-launch
    // --np 4 --respawn-dead -- <this binary>` does), pinning the
    // detector thresholds for the whole world unless the caller already
    // chose their own.
    for (key, value) in DETECTOR_ENV {
        if std::env::var_os(key).is_none() {
            std::env::set_var(key, value);
        }
    }
    let me = std::env::current_exe()?;
    println!(
        "launching {WORLD} ranks of {} (respawn-dead on)",
        me.display()
    );
    let report = launch(&LaunchSpec {
        respawn_dead: true,
        ..LaunchSpec::new(WORLD, vec![me.to_string_lossy().into_owned()])
    })?;
    for e in &report.exits {
        println!("rank {} -> {:?}", e.rank, e.code);
    }
    if !report.success() {
        return Err(format!("elastic cluster run failed: {report:?}").into());
    }
    println!("world healed: all {WORLD} ranks completed");
    Ok(())
}
