//! Quickstart: two NCS nodes exchanging reliable messages over the HPI
//! interface, showing the default configuration (credit-based flow
//! control + selective-repeat error control) and connection statistics.
//!
//! Run with: `cargo run --example quickstart`

use ncs::core::link::HpiLinkPair;
use ncs::core::{ConnectionConfig, NcsNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two NCS processes (in one address space for the example), linked by
    // the High Performance Interface.
    let alice = NcsNode::builder("alice").build();
    let bob = NcsNode::builder("bob").build();
    let (link_a, link_b) = HpiLinkPair::create();
    alice.attach_peer("bob", link_a);
    bob.attach_peer("alice", link_b);

    // The paper's default reliable connection: 4 KB SDUs, credit-based
    // flow control, selective-repeat error control.
    let tx = alice.connect("bob", ConnectionConfig::reliable())?;
    let rx = bob.accept_default()?;
    println!(
        "connection up: {} -> {} over {} ({:?} flow control)",
        alice.name(),
        tx.peer_name(),
        tx.interface(),
        tx.config().flow_control,
    );

    // A small message and a multi-SDU message.
    tx.send_sync(b"hello from alice")?;
    println!("bob received: {:?}", String::from_utf8(rx.recv()?)?);

    let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    tx.send_sync(&big)?;
    let got = rx.recv()?;
    assert_eq!(got, big);
    println!("bob received a {} byte message intact", got.len());

    // And the reverse direction on the same connection.
    rx.send_sync(b"hello back")?;
    println!("alice received: {:?}", String::from_utf8(tx.recv()?)?);

    println!("\nsender-side statistics: {}", tx.stats());
    println!("receiver-side statistics: {}", rx.stats());

    alice.shutdown();
    bob.shutdown();
    Ok(())
}
