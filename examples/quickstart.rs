//! Quickstart: two NCS nodes exchanging reliable messages over the HPI
//! interface — the nonblocking Request API (isend/irecv, tag matching,
//! zero-copy `MsgView`) and the blocking compatibility wrappers over it
//! — plus the default configuration (credit-based flow control +
//! selective-repeat error control) and connection statistics.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use ncs::core::link::HpiLinkPair;
use ncs::core::{ConnectionConfig, NcsNode};
use ncs::{wait_all, Completion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two NCS processes (in one address space for the example), linked by
    // the High Performance Interface.
    let alice = NcsNode::builder("alice").build();
    let bob = NcsNode::builder("bob").build();
    let (link_a, link_b) = HpiLinkPair::create();
    alice.attach_peer("bob", link_a);
    bob.attach_peer("alice", link_b);

    // The paper's default reliable connection: 4 KB SDUs, credit-based
    // flow control, selective-repeat error control.
    let tx = alice.connect("bob", ConnectionConfig::reliable())?;
    let rx = bob.accept_default()?;
    println!(
        "connection up: {} -> {} over {} ({:?} flow control)",
        alice.name(),
        tx.peer_name(),
        tx.interface(),
        tx.config().flow_control,
    );

    // The primary surface: nonblocking requests. Post the receive, post
    // the send, wait on both as one set, read the result zero-copy.
    let want = rx.irecv();
    let sent = tx.isend(b"hello from alice")?;
    let set: [&dyn Completion; 2] = [&want, &sent];
    assert!(wait_all(&set, Duration::from_secs(10)));
    let view = want.wait()?; // pooled MsgView: derefs to &[u8]
    println!("bob received: {:?}", std::str::from_utf8(&view)?);
    drop(view); // buffer recycles into bob's pool

    // Tag matching: independent logical channels over the same
    // connection, delivered per tag in FIFO order.
    tx.isend_tagged(7, b"on channel seven")?;
    tx.isend_tagged(3, b"on channel three")?;
    let three = rx.irecv_tagged(3).wait_timeout(Duration::from_secs(10))?;
    let seven = rx.irecv_tagged(7).wait_timeout(Duration::from_secs(10))?;
    println!(
        "bob received tag {} = {:?}, tag {} = {:?}",
        three.tag().unwrap(),
        std::str::from_utf8(&three)?,
        seven.tag().unwrap(),
        std::str::from_utf8(&seven)?,
    );

    // A multi-SDU message through the blocking compatibility wrappers
    // (thin shells over the same requests).
    let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    tx.send_sync(&big)?;
    let got = rx.recv()?;
    assert_eq!(got, big);
    println!("bob received a {} byte message intact", got.len());

    // And the reverse direction on the same connection.
    rx.send_sync(b"hello back")?;
    println!("alice received: {:?}", String::from_utf8(tx.recv()?)?);

    println!("\nsender-side statistics: {}", tx.stats());
    println!("receiver-side statistics: {}", rx.stats());

    alice.shutdown();
    bob.shutdown();
    Ok(())
}
