//! Compute/communication overlap with the nonblocking Request API.
//!
//! Two NCS nodes exchange a pipeline of large messages over HPI. The
//! driving thread posts a window of `irecv`s and `isend`s up front, then
//! turns to local computation, polling the whole heterogeneous window
//! with [`ncs::test_all`] between compute chunks — never blocking while
//! there is work to do. The runtime's Send/Receive threads move the data
//! underneath: the paper's overlap thesis expressed through requests.
//!
//! Two things are reported:
//!
//! * **overlap proof** — how many compute chunks finished while at least
//!   one request of the window was still in flight (`test_all` false).
//!   Any non-zero count is computation that the blocking
//!   `send_sync`/`recv` forms would have serialised behind the wire.
//! * **wall-clock comparison** — the same workload run blocking
//!   (send, recv, then compute) and overlapped (post requests, compute,
//!   collect). On a multi-core host the overlapped form approaches
//!   `max(compute, communicate)` per round instead of the sum; on a
//!   single hardware thread the two time-share and the chunk counter is
//!   the meaningful signal.
//!
//! Receives complete into pooled zero-copy [`ncs::MsgView`]s; dropping
//! each view recycles its buffer, so the steady state allocates nothing
//! per message.
//!
//! Run with: `cargo run --release --example request_overlap`

use std::time::{Duration, Instant};

use ncs::core::link::HpiLinkPair;
use ncs::core::{ConnectionConfig, NcsConnection, NcsNode};
use ncs::{test_all, wait_all, Completion};

const MSG_BYTES: usize = 256 * 1024;
const WINDOW: usize = 8;
const ROUNDS: usize = 4;
const CHUNK: usize = 64 * 1024;
/// Compute chunks each round owes, in both variants (identical work).
const CHUNKS_PER_ROUND: u64 = 24;

fn build_pair() -> (NcsNode, NcsNode, NcsConnection, NcsConnection) {
    let alice = NcsNode::builder("alice").build();
    let bob = NcsNode::builder("bob").build();
    let (la, lb) = HpiLinkPair::with_capacity(8192);
    alice.attach_peer("bob", la);
    bob.attach_peer("alice", lb);
    let ca = alice
        .connect("bob", ConnectionConfig::unreliable())
        .expect("connect");
    let cb = bob.accept_default().expect("accept");
    (alice, bob, ca, cb)
}

/// One compute chunk (a little FMA mill, kept honest via a data
/// dependency).
fn crunch(state: &mut f64) {
    let mut acc = *state;
    for i in 0..CHUNK {
        acc = acc.mul_add(1.000000119, (i % 17) as f64 * 1e-9);
    }
    *state = acc;
}

/// Echo peer: returns every message until it has echoed `count`.
fn spawn_echo(conn: NcsConnection, count: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for _ in 0..count {
            let msg = conn
                .recv_view(Duration::from_secs(60))
                .expect("echo receive");
            conn.send(&msg).expect("echo send");
            // Dropping the view here recycles its pooled buffer.
        }
    })
}

fn main() {
    let payload = vec![0xA7u8; MSG_BYTES];

    // --- Blocking baseline: communicate, then compute. -------------------
    let (alice, bob, ca, cb) = build_pair();
    let echo = spawn_echo(cb, WINDOW * ROUNDS);
    let mut state = 1.0f64;
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        // Communicate the whole window, then compute: strictly serial.
        for _ in 0..WINDOW {
            ca.send(&payload).expect("send");
            let back = ca.recv_timeout(Duration::from_secs(60)).expect("recv");
            assert_eq!(back.len(), MSG_BYTES);
        }
        for _ in 0..CHUNKS_PER_ROUND {
            crunch(&mut state);
        }
    }
    let blocking = t0.elapsed();
    echo.join().expect("echo");
    alice.shutdown();
    bob.shutdown();

    // --- Overlapped: post the window, compute while it flies. ------------
    let (alice, bob, ca, cb) = build_pair();
    let echo = spawn_echo(cb, WINDOW * ROUNDS);
    let mut state2 = 1.0f64;
    let mut chunks_while_in_flight = 0u64;
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        // Post the whole window of receives and sends up front.
        let wants: Vec<_> = (0..WINDOW).map(|_| ca.irecv()).collect();
        let sents: Vec<_> = (0..WINDOW)
            .map(|_| ca.isend(&payload).expect("isend"))
            .collect();
        let set: Vec<&dyn Completion> = wants
            .iter()
            .map(|r| r as &dyn Completion)
            .chain(sents.iter().map(|r| r as &dyn Completion))
            .collect();
        // The same compute volume as the blocking round, but polled
        // against the in-flight window instead of queued behind it.
        for _ in 0..CHUNKS_PER_ROUND {
            if !test_all(&set) {
                chunks_while_in_flight += 1;
            }
            crunch(&mut state2);
        }
        assert!(wait_all(&set, Duration::from_secs(60)), "window stalled");
        drop(set);
        for want in wants {
            let view = want.wait().expect("irecv");
            assert_eq!(view.len(), MSG_BYTES);
        }
        for sent in sents {
            sent.wait().expect("isend");
        }
    }
    let overlapped = t0.elapsed();
    echo.join().expect("echo");
    let pool = bob.pool_stats();
    alice.shutdown();
    bob.shutdown();

    let total_chunks = CHUNKS_PER_ROUND * ROUNDS as u64;
    println!("request_overlap: {ROUNDS} rounds x {WINDOW} in-flight {MSG_BYTES}-byte round trips");
    println!(
        "  blocking    : {:8.1} ms ({total_chunks} compute chunks serialised behind the wire)",
        blocking.as_secs_f64() * 1e3
    );
    println!(
        "  overlapped  : {:8.1} ms (same {total_chunks} chunks, {chunks_while_in_flight} of them while requests were in flight)",
        overlapped.as_secs_f64() * 1e3
    );
    println!(
        "  echo-side pool: {:.1}% of buffer checkouts served without allocating",
        pool.hit_rate() * 100.0
    );
    assert!(
        chunks_while_in_flight > 0,
        "no compute chunk overlapped communication — overlap proof failed"
    );
    // Keep the states alive so the compute loops cannot be optimised out.
    assert!(state.is_finite() && state2.is_finite());
    println!("overlap proof: OK ({chunks_while_in_flight} chunks computed during communication)");
}
