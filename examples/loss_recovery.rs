//! Selective repeat versus a lossy ATM network: demonstrates the paper's
//! §3.2 error control recovering every SDU through cell loss, and what the
//! same loss does to a connection configured without error control.
//!
//! Cell loss compounds per frame: at 0.1% cell loss, an 86-cell (4 KB)
//! AAL5 frame dies with probability ~8% — enough to force regular
//! selective-repeat recoveries without drowning the link.
//!
//! Run with: `cargo run --example loss_recovery`

use std::sync::Arc;
use std::time::Duration;

use ncs::atm::{FaultSpec, LinkSpec, NetworkBuilder, PumpConfig, QosParams};
use ncs::core::link::AciLink;
use ncs::core::{ConnectionConfig, ErrorControlAlg, FlowControlAlg, NcsNode};
use ncs::transport::aci::AciFabric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 0.1% cell-loss link: with ~86 cells per 4 KB SDU, roughly one SDU
    // in twelve dies, so most multi-SDU messages need recovery.
    let net = NetworkBuilder::new()
        .host("tx")
        .host("rx")
        .switch("sw")
        .link(
            "tx",
            "sw",
            LinkSpec::oc3().with_fault(FaultSpec::cell_loss(0.001, 7)),
        )
        .link("rx", "sw", LinkSpec::oc3())
        .build()?;
    let fabric = AciFabric::start(net, PumpConfig::speedup(8.0));

    let tx_node = NcsNode::builder("tx").build();
    let rx_node = NcsNode::builder("rx").build();
    let dev_tx = Arc::new(fabric.device("tx")?);
    let dev_rx = Arc::new(fabric.device("rx")?);
    tx_node.attach_peer("rx", AciLink::new(dev_tx, "rx", QosParams::unspecified()));
    rx_node.attach_peer("tx", AciLink::new(dev_rx, "tx", QosParams::unspecified()));

    // Reliable connection: selective repeat + credit flow control.
    let reliable = ConnectionConfig::builder()
        .sdu_size(4 * 1024)
        .flow_control(FlowControlAlg::CreditBased {
            initial_credits: 4,
            dynamic: true,
        })
        .error_control(ErrorControlAlg::SelectiveRepeat {
            timeout: Duration::from_millis(250),
            max_retries: 30,
        })
        .build();
    let conn_tx = tx_node.connect("rx", reliable)?;
    let conn_rx = rx_node.accept_default()?;

    let message: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    println!(
        "sending {} bytes (= {} SDUs, ~{} cells) across a 0.1% cell-loss link...",
        message.len(),
        message.len().div_ceil(4096),
        (message.len() / 48) + message.len().div_ceil(4096),
    );
    for round in 1..=5 {
        conn_tx.send_sync_timeout(&message, Duration::from_secs(60))?;
        let got = conn_rx.recv_timeout(Duration::from_secs(60))?;
        assert_eq!(got, message, "round {round} corrupted");
        println!("round {round}: delivered intact");
    }
    let s = conn_tx.stats();
    println!(
        "\nselective repeat at work: {} packets sent, {} were retransmissions, {} acks received",
        s.packets_sent, s.retransmissions, s.acks_received
    );
    assert!(
        s.retransmissions > 0,
        "a lossy link must force retransmissions"
    );
    println!("network counters: {}", fabric.stats());

    // The unreliable counterpart: same wire, no error control.
    let conn_u_tx = tx_node.connect("rx", ConnectionConfig::unreliable())?;
    let conn_u_rx = rx_node.accept_default()?;
    let mut delivered = 0u32;
    const SENT: u32 = 60;
    for i in 0..SENT {
        conn_u_tx.send(&vec![i as u8; 4000])?;
    }
    while conn_u_rx.recv_timeout(Duration::from_millis(500)).is_ok() {
        delivered += 1;
    }
    println!(
        "\nwithout error control: {delivered}/{SENT} messages survived the same link \
         (the rest died with their lost cells)"
    );
    assert!(delivered < SENT, "some loss is statistically certain here");
    assert!(delivered > 0, "most messages should survive 8% frame loss");

    tx_node.shutdown();
    rx_node.shutdown();
    fabric.shutdown();
    Ok(())
}
