//! The simulation backend, both halves (see `docs/SIMULATION.md`):
//!
//! 1. **`SimWorld`** — the deterministic discrete-event engine runs a
//!    256-rank partition-and-heal scenario: a bidirectional link cut
//!    strands the allreduce mid-tree, ARQ retransmissions carry it over
//!    the heal, and a second run of the same seed reproduces the event
//!    trace byte-for-byte.
//! 2. **`SimSession`** — the real stack (full `NcsNode`s, the actual
//!    collectives engine) meshed over the simulated SIM fabric on a
//!    shared virtual clock: a live allreduce + barrier over simulated
//!    LAN latency, then a per-peer link cut that eats a message until
//!    the link heals.
//!
//! Run with: `cargo run --release --example sim_chaos`

use std::time::Duration;

use ncs::collectives::ReduceOp;
use ncs::transport::sim::LinkPolicy;
use ncs::{Scenario, Session, SimWorld, SimWorldBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- part 1: the discrete-event engine at scale -------------------
    let scenario = Scenario::partition_heal(256, 42);
    println!(
        "SimWorld: scenario '{}', {} ranks, seed {}",
        scenario.name, scenario.ranks, scenario.seed
    );
    let report = SimWorld::new(scenario.clone()).run();
    for op in &report.ops {
        println!(
            "  {:<14} {} in {:?} (virtual){}",
            op.op,
            if op.completed { "completed" } else { "FAILED" },
            op.elapsed,
            op.result
                .map(|v| format!(", value {v}"))
                .unwrap_or_default(),
        );
    }
    println!(
        "  {} events, {:?} virtual time total",
        report.events_processed, report.virtual_elapsed
    );
    assert!(report.all_completed(), "partition-heal should recover");

    // Same seed, second run: the determinism contract says byte-identical.
    let replay = SimWorld::new(scenario).run();
    assert_eq!(report.trace, replay.trace, "trace diverged across replays");
    assert_eq!(
        report.telemetry_json, replay.telemetry_json,
        "telemetry diverged across replays"
    );
    println!("  replay of seed 42 is byte-identical: determinism holds");

    // --- part 2: the real stack over the simulated fabric -------------
    let sessions = SimWorldBuilder::new(4, 7)
        .policy(LinkPolicy::lan())
        .build()?;
    println!("\nSimSession: 4 real nodes over a simulated LAN fabric");
    let net = sessions[0].net().clone();

    let workers: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            std::thread::spawn(move || -> Result<(), String> {
                let rank = session.rank();
                // Dedicated channel for the chaos demo, established before
                // the collectives engine takes over the bootstrap links.
                let p2p = match rank {
                    0 => Some(
                        session
                            .connect(1, ncs::core::ConnectionConfig::unreliable())
                            .map_err(|e| e.to_string())?,
                    ),
                    1 => Some(
                        session
                            .accept(Duration::from_secs(30))
                            .map_err(|e| e.to_string())?,
                    ),
                    _ => None,
                };
                let group = session.collective_group(1).map_err(|e| e.to_string())?;
                let sum = group
                    .allreduce(vec![rank as f64], ReduceOp::Sum)
                    .map_err(|e| e.to_string())?;
                assert_eq!(sum, vec![6.0], "allreduce disagreed");
                group.barrier().map_err(|e| e.to_string())?;
                if rank == 0 {
                    println!(
                        "  allreduce sum {:?}, barrier done at t+{:?} (virtual)",
                        sum,
                        session.virtual_now()
                    );
                }

                // Per-peer chaos: rank 0 cuts its link to rank 1, sends
                // into the void, heals, sends again. Rank 1 only ever
                // sees the post-heal message.
                match (rank, &p2p) {
                    (0, Some(conn)) => {
                        let drops = session.net().dropped();
                        session.set_peer_up(1, false);
                        conn.send(b"lost to the cut").map_err(|e| e.to_string())?;
                        // The reactor flushes asynchronously: wait for the
                        // fabric to actually eat the frame before healing.
                        while session.net().dropped() == drops {
                            std::thread::yield_now();
                        }
                        session.set_peer_up(1, true);
                        conn.send(b"after the heal").map_err(|e| e.to_string())?;
                    }
                    (1, Some(conn)) => {
                        let msg = conn
                            .recv_timeout(Duration::from_secs(30))
                            .map_err(|e| e.to_string())?;
                        assert_eq!(&*msg, b"after the heal", "cut frame leaked through");
                        println!("  rank 1 after the cut-and-heal: \"after the heal\" arrived");
                    }
                    _ => {}
                }
                // Everyone regroups before teardown so the post-heal
                // frame lands before rank 0 closes its side.
                group.barrier().map_err(|e| e.to_string())?;
                session.shutdown();
                Ok(())
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked")?;
    }
    println!(
        "  fabric: {} frames delivered, {} dropped by the cut",
        net.delivered(),
        net.dropped()
    );
    Ok(())
}
