//! cluster_allreduce — the multi-process NCS example.
//!
//! Four independent OS processes form one NCS world over real loopback
//! sockets (the SCI interface), then run collectives across it: an
//! allreduce whose result every rank verifies, a broadcast, and a closing
//! barrier.
//!
//! Two ways to run it:
//!
//! * under the launcher (what CI's `cluster-smoke` job does):
//!   `cargo build --release -p ncs-runtime --bins`
//!   `cargo build --release --example cluster_allreduce`
//!   `./target/release/ncs-launch --np 4 -- ./target/release/examples/cluster_allreduce`
//! * directly: `cargo run --release --example cluster_allreduce`
//!   (with no `NCS_RANK` in the environment the process becomes its own
//!   launcher, re-executing itself as 4 ranks).

use ncs::collectives::ReduceOp;
use ncs::runtime::{launch, ClusterConfig, ClusterNode, LaunchSpec};

const WORLD: u32 = 4;

/// One rank's life: bootstrap, collectives, verification.
fn run_rank() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusterConfig::from_env()?;
    let cluster = ClusterNode::bootstrap(cfg)?;
    let rank = cluster.rank();
    let world = cluster.size();
    println!(
        "rank {rank}/{world} up as node '{}' with {} world links",
        cluster.node().name(),
        world - 1
    );

    let group = cluster.collective_group(1)?;

    // Allreduce: every rank contributes [rank, 2*rank]; everyone must see
    // the same sums.
    let contrib = vec![rank as f64, 2.0 * rank as f64];
    let sum = group.allreduce(contrib, ReduceOp::Sum)?;
    let expect: f64 = (0..world).map(f64::from).sum();
    assert_eq!(sum, vec![expect, 2.0 * expect], "allreduce disagreed");
    println!("rank {rank}: allreduce ok ({sum:?})");

    // Broadcast from rank 0 (in-out contract: same-length buffer
    // everywhere).
    let payload = if rank == 0 {
        (0..1024u32).collect::<Vec<u32>>()
    } else {
        vec![0u32; 1024]
    };
    let got = group.broadcast(0, payload)?;
    assert!(
        got.iter().enumerate().all(|(i, &v)| v == i as u32),
        "broadcast corrupted"
    );
    println!("rank {rank}: broadcast ok (4 KiB from rank 0)");

    // Everyone leaves together.
    group.barrier()?;
    println!("rank {rank}: barrier ok, shutting down");
    drop(group);
    cluster.shutdown();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::var("NCS_RANK").is_ok() {
        return run_rank();
    }
    // No rank identity: act as the launcher and re-execute ourselves as
    // the world (exactly what `ncs-launch --np 4 -- <this binary>` does).
    let me = std::env::current_exe()?;
    println!("launching {WORLD} ranks of {}", me.display());
    let report = launch(&LaunchSpec::new(
        WORLD,
        vec![me.to_string_lossy().into_owned()],
    ))?;
    for e in &report.exits {
        println!("rank {} -> {:?}", e.rank, e.code);
    }
    if !report.success() {
        return Err(format!("cluster run failed: {report:?}").into());
    }
    println!("all {WORLD} ranks completed");
    Ok(())
}
