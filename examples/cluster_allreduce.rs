//! cluster_allreduce — one program, two worlds.
//!
//! The member body below is written against the [`ncs::Session`] façade
//! and runs **unmodified** in either backend:
//!
//! * **multi-process** — four OS processes form one NCS world over real
//!   loopback sockets (the SCI interface), bootstrapped through `ncsd`
//!   rendezvous;
//! * **in-process** — a four-member [`ncs::LocalWorld`] meshed over HPI,
//!   one member per thread.
//!
//! Each member runs collectives across the world (an allreduce every
//! rank verifies, a broadcast, a closing barrier) and — between ranks 0
//! and 1 — a mixed completion set: rank 0 parks one `irecv` *and* one
//! `iallreduce` in a single [`ncs::wait_any`] loop and reaps whichever
//! finishes first, the overlap primitive the Request redesign exists for.
//!
//! Ways to run it:
//!
//! * under the launcher (what CI's `cluster-smoke` job does):
//!   `cargo build --release -p ncs-runtime --bins`
//!   `cargo build --release --example cluster_allreduce`
//!   `./target/release/ncs-launch --np 4 -- ./target/release/examples/cluster_allreduce`
//! * multi-process, directly: `cargo run --release --example cluster_allreduce`
//!   (with no `NCS_RANK` in the environment the process becomes its own
//!   launcher, re-executing itself as 4 ranks);
//! * in-process: `cargo run --release --example cluster_allreduce -- --local`

use std::time::Duration;

use ncs::collectives::ReduceOp;
use ncs::runtime::{launch, ClusterConfig, ClusterNode, LaunchSpec};
use ncs::{wait_any, Completion, LocalWorld, Session};

const WORLD: u32 = 4;

/// One member's life — identical against every [`Session`] backend.
fn run_member(session: &impl Session) -> Result<(), Box<dyn std::error::Error>> {
    let rank = session.rank();
    let world = session.world_size();
    println!(
        "rank {rank}/{world} up as node '{}' with {} world links",
        session.node().name(),
        world - 1
    );

    // Point-to-point channel for the mixed-wait demo, established before
    // the collectives engine takes over the bootstrap links.
    let p2p = if rank == 1 {
        Some(session.connect(0, ncs::core::ConnectionConfig::unreliable())?)
    } else if rank == 0 {
        Some(session.accept(Duration::from_secs(30))?)
    } else {
        None
    };

    let group = session.collective_group(1)?;

    // Allreduce: every rank contributes [rank, 2*rank]; everyone must see
    // the same sums.
    let contrib = vec![rank as f64, 2.0 * rank as f64];
    let sum = group.allreduce(contrib, ReduceOp::Sum)?;
    let expect: f64 = (0..world).map(f64::from).sum();
    assert_eq!(sum, vec![expect, 2.0 * expect], "allreduce disagreed");
    println!("rank {rank}: allreduce ok ({sum:?})");

    // Mixed completion set: one irecv + one iallreduce in a single
    // wait_any loop on rank 0 (every rank joins the allreduce; rank 1
    // also feeds the irecv once its own collective completes).
    let ar = group.iallreduce(vec![rank as f64 + 1.0], ReduceOp::Sum)?;
    match (rank, &p2p) {
        (0, Some(conn)) => {
            let want = conn.irecv();
            let set: [&dyn Completion; 2] = [&want, &ar];
            // React to whichever lands first, then collect the straggler.
            let first = wait_any(&set, Duration::from_secs(60)).expect("mixed wait_any stalled");
            println!(
                "rank 0: {} completed first",
                if first == 0 { "irecv" } else { "iallreduce" }
            );
            assert!(
                ncs::wait_all(&set, Duration::from_secs(60)),
                "mixed wait_all stalled"
            );
            let msg = want.wait()?;
            assert_eq!(&*msg, b"mixed-set hello", "irecv payload corrupted");
        }
        (1, Some(conn)) => {
            ar.wait_timeout(Duration::from_secs(60))
                .map_err(|e| format!("rank 1 iallreduce: {e}"))?;
            conn.isend(b"mixed-set hello")?
                .wait_timeout(Duration::from_secs(30))?;
        }
        _ => {}
    }
    let mixed_sum = match rank {
        1 => None, // already taken above
        _ => Some(ar.wait_timeout(Duration::from_secs(60))?),
    };
    if let Some(s) = mixed_sum {
        let expect: f64 = (1..=world).map(f64::from).sum();
        assert_eq!(s, vec![expect], "mixed-set allreduce disagreed");
    }
    println!("rank {rank}: mixed wait_any (irecv + iallreduce) ok");

    // Broadcast from rank 0 (in-out contract: same-length buffer
    // everywhere).
    let payload = if rank == 0 {
        (0..1024u32).collect::<Vec<u32>>()
    } else {
        vec![0u32; 1024]
    };
    let got = group.broadcast(0, payload)?;
    assert!(
        got.iter().enumerate().all(|(i, &v)| v == i as u32),
        "broadcast corrupted"
    );
    println!("rank {rank}: broadcast ok (4 KiB from rank 0)");

    // Everyone leaves together.
    group.barrier()?;
    println!("rank {rank}: barrier ok, shutting down");
    drop(group);
    session.shutdown();
    Ok(())
}

/// One rank of the multi-process world (bootstraps from the launcher's
/// environment).
fn run_cluster_rank() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterNode::bootstrap(ClusterConfig::from_env()?)?;
    run_member(&cluster)
}

/// The whole world in this process: a [`LocalWorld`], one member thread
/// each, same body.
fn run_local_world() -> Result<(), Box<dyn std::error::Error>> {
    println!("running {WORLD} ranks in-process (LocalWorld over HPI)");
    let handles: Vec<_> = LocalWorld::create(WORLD)?
        .into_iter()
        .map(|s| std::thread::spawn(move || run_member(&s).map_err(|e| e.to_string())))
        .collect();
    for h in handles {
        h.join().expect("member panicked")?;
    }
    println!("all {WORLD} in-process ranks completed");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--local") {
        return run_local_world();
    }
    if std::env::var("NCS_RANK").is_ok() {
        return run_cluster_rank();
    }
    // No rank identity: act as the launcher and re-execute ourselves as
    // the world (exactly what `ncs-launch --np 4 -- <this binary>` does).
    let me = std::env::current_exe()?;
    println!("launching {WORLD} ranks of {}", me.display());
    let report = launch(&LaunchSpec::new(
        WORLD,
        vec![me.to_string_lossy().into_owned()],
    ))?;
    for e in &report.exits {
        println!("rank {} -> {:?}", e.rank, e.code);
    }
    if !report.success() {
        return Err(format!("cluster run failed: {report:?}").into());
    }
    println!("all {WORLD} ranks completed");
    Ok(())
}
