//! Computation/communication overlap — the paper's central motivation for
//! the thread-based programming paradigm (§2), plus group communication:
//! a 4-member group multicasts partial results along a spanning tree and
//! synchronises with a tree barrier while every member keeps computing.
//!
//! Run with: `cargo run --example compute_overlap`

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncs::core::link::HpiLinkPair;
use ncs::core::{ConnectionConfig, MulticastAlgo, NcsGroup, NcsNode};

const MEMBERS: usize = 4;
const ROUNDS: usize = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Full mesh of HPI links between four nodes.
    let nodes: Vec<NcsNode> = (0..MEMBERS)
        .map(|i| NcsNode::builder(&format!("rank{i}")).build())
        .collect();
    for i in 0..MEMBERS {
        for j in (i + 1)..MEMBERS {
            let (li, lj) = HpiLinkPair::create();
            nodes[i].attach_peer(&format!("rank{j}"), li);
            nodes[j].attach_peer(&format!("rank{i}"), lj);
        }
    }
    // Pairwise group connections (lower rank initiates).
    let mut conns: Vec<HashMap<usize, ncs::core::NcsConnection>> =
        (0..MEMBERS).map(|_| HashMap::new()).collect();
    for i in 0..MEMBERS {
        for j in (i + 1)..MEMBERS {
            let cij = nodes[i].connect(&format!("rank{j}"), ConnectionConfig::reliable())?;
            let cji = nodes[j].accept_default()?;
            conns[i].insert(j, cij);
            conns[j].insert(i, cji);
        }
    }
    let groups: Vec<Arc<NcsGroup>> = nodes
        .iter()
        .zip(conns)
        .enumerate()
        .map(|(rank, (node, links))| {
            Arc::new(
                NcsGroup::new(node, 7, rank, links, MulticastAlgo::SpanningTree).expect("group"),
            )
        })
        .collect();

    // Each member: per round, multicast its partial result (communication
    // handled by NCS threads) while immediately continuing to compute the
    // next partial — overlap in action — then barrier.
    let mut handles = Vec::new();
    for (rank, group) in groups.iter().enumerate() {
        let group = Arc::clone(group);
        handles.push(std::thread::spawn(move || {
            let mut total = 0u64;
            let mut compute_time = Duration::ZERO;
            let start = Instant::now();
            for round in 0..ROUNDS {
                // "Compute" a partial result.
                let t = Instant::now();
                let mut partial: u64 = 0;
                for x in 0..std::hint::black_box(200_000u64) {
                    partial =
                        std::hint::black_box(partial.wrapping_add(
                            x.wrapping_mul(rank as u64 + 1).wrapping_add(round as u64),
                        ));
                }
                compute_time += t.elapsed();
                // Multicast it (the runtime's threads take it from here)...
                group.multicast(&partial.to_be_bytes()).expect("multicast");
                total = total.wrapping_add(partial);
                // ...and immediately compute MORE while peers' results are
                // still in flight (the overlap the paper is about).
                let t = Instant::now();
                let mut extra: u64 = 0;
                for x in 0..std::hint::black_box(400_000u64) {
                    extra = std::hint::black_box(extra.wrapping_add(x));
                }
                std::hint::black_box(extra);
                compute_time += t.elapsed();
                // Collect the other members' partials for this round.
                for _ in 0..MEMBERS - 1 {
                    let (_, bytes) = group
                        .recv_timeout(Duration::from_secs(10))
                        .expect("partial");
                    total = total
                        .wrapping_add(u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")));
                }
                // Round barrier.
                group.barrier(Duration::from_secs(10)).expect("barrier");
            }
            (rank, total, compute_time, start.elapsed())
        }));
    }

    let mut totals = Vec::new();
    for h in handles {
        let (rank, total, compute, wall) = h.join().expect("member");
        println!(
            "rank{rank}: total {total:#018x}, computed {:.1?} of {:.1?} wall \
             ({:.0}% overlap-utilised)",
            compute,
            wall,
            100.0 * compute.as_secs_f64() / wall.as_secs_f64()
        );
        totals.push(total);
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "all members must agree on the reduced total"
    );
    println!("\nall {MEMBERS} members agree after {ROUNDS} multicast+barrier rounds");

    for g in &groups {
        g.leave();
    }
    drop(groups);
    for n in &nodes {
        n.shutdown();
    }
    Ok(())
}
