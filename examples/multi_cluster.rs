//! The paper's Figure 3 scenario: a heterogeneous environment of
//! homogeneous clusters, each wired with the interface its platform
//! supports best — HPI ("Trap") inside one cluster, ACI (native ATM)
//! inside another — interconnected over SCI (sockets).
//!
//! A four-node computation (parallel vector sum) spans all three domains
//! through the same NCS primitives, regardless of the interface
//! underneath.
//!
//! Run with: `cargo run --example multi_cluster`

use std::sync::Arc;

use ncs::atm::{LinkSpec, NetworkBuilder, PumpConfig, QosParams};
use ncs::core::link::{AciLink, HpiLinkPair, SciLink};
use ncs::core::{ConnectionConfig, NcsNode};
use ncs::transport::aci::AciFabric;
use ncs::transport::sci::SciListener;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cluster 1 (homogeneous workstations): HPI between n0 and n1.
    let n0 = NcsNode::builder("n0").build();
    let n1 = NcsNode::builder("n1").build();
    let (l01, l10) = HpiLinkPair::create();
    n0.attach_peer("n1", l01);
    n1.attach_peer("n0", l10);

    // Cluster 2: native ATM between n2 and n3.
    let net = NetworkBuilder::new()
        .host("n2")
        .host("n3")
        .switch("sw")
        .link("n2", "sw", LinkSpec::oc3())
        .link("n3", "sw", LinkSpec::oc3())
        .build()?;
    let fabric = AciFabric::start(net, PumpConfig::speedup(8.0));
    let n2 = NcsNode::builder("n2").build();
    let n3 = NcsNode::builder("n3").build();
    let dev2 = Arc::new(fabric.device("n2")?);
    let dev3 = Arc::new(fabric.device("n3")?);
    n2.attach_peer(
        "n3",
        AciLink::new(Arc::clone(&dev2), "n3", QosParams::unspecified()),
    );
    n3.attach_peer(
        "n2",
        AciLink::new(Arc::clone(&dev3), "n2", QosParams::unspecified()),
    );

    // Inter-cluster bridge: SCI (TCP over loopback) between n0 and n2.
    let listener0 = Arc::new(SciListener::bind("127.0.0.1:0")?);
    let listener2 = Arc::new(SciListener::bind("127.0.0.1:0")?);
    let addr0 = listener0.local_addr()?;
    let addr2 = listener2.local_addr()?;
    n0.attach_peer("n2", SciLink::new(addr2, Arc::clone(&listener0)));
    n2.attach_peer("n0", SciLink::new(addr0, Arc::clone(&listener2)));

    // --- the computation: sum a vector split across all four nodes -----
    // n0 is the coordinator; ACI inside cluster 2 uses NCS reliability,
    // HPI and SCI links use the configs natural to them.
    let data: Vec<u64> = (1..=40_000).collect();
    let expect: u64 = data.iter().sum();
    let chunks: Vec<&[u64]> = data.chunks(10_000).collect();

    // Workers: n1 (HPI), n3 (via n2 over ACI), n2 itself, n0 local.
    let c01 = n0.connect("n1", ConnectionConfig::reliable())?;
    let w1 = n1.accept_default()?;
    let c02 = n0.connect("n2", ConnectionConfig::unreliable())?; // TCP is reliable
    let w2 = n2.accept_default()?;
    let c23 = n2.connect("n3", ConnectionConfig::reliable())?;
    let w3 = n3.accept_default()?;

    let encode = |xs: &[u64]| -> Vec<u8> { xs.iter().flat_map(|x| x.to_be_bytes()).collect() };
    let decode_sum = |bytes: &[u8]| -> u64 {
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("8 bytes")))
            .sum()
    };

    // Worker n1 (cluster 1, HPI).
    let h1 = std::thread::spawn(move || {
        let chunk = w1.recv().expect("n1 chunk");
        let sum = decode_sum(&chunk);
        w1.send_sync(&sum.to_be_bytes()).expect("n1 reply");
    });
    // Worker n3 (cluster 2, ACI) — n2 forwards its chunk onward.
    let h3 = std::thread::spawn(move || {
        let chunk = w3.recv().expect("n3 chunk");
        let sum = decode_sum(&chunk);
        w3.send_sync(&sum.to_be_bytes()).expect("n3 reply");
    });
    // Worker/gateway n2 (bridges SCI and ACI).
    let h2 = std::thread::spawn(move || {
        let own = w2.recv().expect("n2 own chunk");
        let forward = w2.recv().expect("n2 forward chunk");
        c23.send_sync(&forward).expect("forward to n3");
        let own_sum = decode_sum(&own);
        let n3_sum = u64::from_be_bytes(
            c23.recv().expect("n3 sum")[..8]
                .try_into()
                .expect("8 bytes"),
        );
        w2.send_sync(&(own_sum + n3_sum).to_be_bytes())
            .expect("n2 reply");
    });

    // Coordinator distributes and gathers.
    c01.send_sync(&encode(chunks[1]))?;
    c02.send(&encode(chunks[2]))?; // n2's own chunk
    c02.send(&encode(chunks[3]))?; // forwarded to n3
    let local_sum: u64 = chunks[0].iter().sum();
    let n1_sum = u64::from_be_bytes(c01.recv()?[..8].try_into()?);
    let cluster2_sum = u64::from_be_bytes(c02.recv()?[..8].try_into()?);
    let total = local_sum + n1_sum + cluster2_sum;

    println!(
        "interfaces used: n0-n1 {}, n0-n2 {}, n2-n3 ACI",
        c01.interface(),
        c02.interface()
    );
    println!("distributed sum = {total} (expected {expect})");
    assert_eq!(total, expect);

    h1.join().expect("n1");
    h2.join().expect("n2");
    h3.join().expect("n3");
    for n in [&n0, &n1, &n2, &n3] {
        n.shutdown();
    }
    fabric.shutdown();
    Ok(())
}
