//! Compute/communication overlap with nonblocking collectives.
//!
//! Four NCS nodes form a collective group over HPI. Every member kicks
//! off a large `iallreduce` and immediately turns to local computation:
//! the per-member collective progress thread moves and combines the data
//! while the application thread crunches numbers, exactly the paper's
//! overlap thesis applied to group communication.
//!
//! Two things are reported per member:
//!
//! * **overlap proof** — how many compute chunks finished while the
//!   collective was still in flight ([`CollectiveHandle::test`] not yet
//!   true). Any non-zero count is computation that a blocking collective
//!   would have serialised behind the communication.
//! * **wall-clock comparison** — the same workload run blocking
//!   (communicate, then compute) and overlapped (submit, compute, wait).
//!   On a multi-core host the overlapped form approaches
//!   `max(compute, communicate)` per round instead of the sum; on a
//!   single hardware thread the two time-share and the chunk counter is
//!   the meaningful signal.
//!
//! Run with: `cargo run --release --example collectives_overlap`

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncs::collectives::{CollectiveGroup, ReduceOp};
use ncs::core::link::HpiLinkPair;
use ncs::core::{ConnectionConfig, NcsConnection, NcsNode};

const MEMBERS: usize = 4;
const ELEMS: usize = 256 * 1024; // 2 MiB of f64 per member
const ROUNDS: usize = 4;

/// Builds `n` nodes in a full HPI mesh and one collective group member per
/// node.
fn build_members(n: usize) -> Vec<(NcsNode, Arc<CollectiveGroup>)> {
    let nodes: Vec<NcsNode> = (0..n)
        .map(|i| NcsNode::builder(&format!("m{i}")).build())
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let (li, lj) = HpiLinkPair::with_capacity(4096);
            nodes[i].attach_peer(&format!("m{j}"), li);
            nodes[j].attach_peer(&format!("m{i}"), lj);
        }
    }
    let mut conns: Vec<HashMap<usize, NcsConnection>> = (0..n).map(|_| HashMap::new()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let cij = nodes[i]
                .connect(&format!("m{j}"), ConnectionConfig::unreliable())
                .expect("connect");
            let cji = nodes[j].accept_default().expect("accept");
            conns[i].insert(j, cij);
            conns[j].insert(i, cji);
        }
    }
    nodes
        .into_iter()
        .zip(conns)
        .enumerate()
        .map(|(rank, (node, links))| {
            let group = Arc::new(CollectiveGroup::new(&node, 1, rank, links).expect("group"));
            (node, group)
        })
        .collect()
}

/// One compute chunk, sized around a millisecond.
fn compute_chunk(seed: f64) -> f64 {
    let mut acc = seed;
    for i in 0..40_000u64 {
        acc = (acc * 1.000000119).rem_euclid(10.0) + (i % 7) as f64 * 1e-9;
    }
    acc
}

/// The full per-round computation: `CHUNKS_PER_ROUND` chunks.
const CHUNKS_PER_ROUND: usize = 40;

struct MemberReport {
    rank: usize,
    blocking: Duration,
    overlapped: Duration,
    chunks_during_flight: usize,
}

fn main() {
    let members = build_members(MEMBERS);
    let contrib: Vec<f64> = (0..ELEMS).map(|i| (i % 100) as f64).collect();
    println!(
        "{MEMBERS} members, allreduce of {ELEMS} f64 ({} MiB) x {ROUNDS} rounds, \
         {CHUNKS_PER_ROUND} compute chunks per round",
        ELEMS * 8 / (1024 * 1024)
    );

    // Every member runs the same schedule on its own OS thread.
    let mut handles = Vec::new();
    for (rank, (_, group)) in members.iter().enumerate() {
        let group = Arc::clone(group);
        let contrib = contrib.clone();
        handles.push(std::thread::spawn(move || {
            let mut sink = 0.0;
            // -- Blocking: communicate, then compute. ---------------------
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                let sum = group
                    .allreduce(contrib.clone(), ReduceOp::Sum)
                    .expect("allreduce");
                assert_eq!(sum[0], 0.0);
                for _ in 0..CHUNKS_PER_ROUND {
                    sink += compute_chunk(sum[1]);
                }
            }
            let blocking = t0.elapsed();

            // -- Overlapped: submit, compute, then wait. ------------------
            let mut chunks_during_flight = 0;
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                let handle = group
                    .iallreduce(contrib.clone(), ReduceOp::Sum)
                    .expect("iallreduce");
                // The progress thread is moving and combining vectors
                // right now; every chunk that completes before the handle
                // resolves is work a blocking call would have delayed.
                for _ in 0..CHUNKS_PER_ROUND {
                    if !handle.test() {
                        chunks_during_flight += 1;
                    }
                    sink += compute_chunk(1.0);
                }
                let sum = handle.wait().expect("wait");
                assert_eq!(sum[0], 0.0);
            }
            let overlapped = t0.elapsed();
            std::hint::black_box(sink);
            MemberReport {
                rank,
                blocking,
                overlapped,
                chunks_during_flight,
            }
        }));
    }

    let mut reports: Vec<MemberReport> = handles
        .into_iter()
        .map(|h| h.join().expect("member panicked"))
        .collect();
    reports.sort_by_key(|r| r.rank);
    for r in &reports {
        println!(
            "rank {}: blocking {:>7.1} ms   overlapped {:>7.1} ms   \
             {} chunks computed while collectives were in flight",
            r.rank,
            r.blocking.as_secs_f64() * 1e3,
            r.overlapped.as_secs_f64() * 1e3,
            r.chunks_during_flight,
        );
    }
    let total_overlapped: usize = reports.iter().map(|r| r.chunks_during_flight).sum();
    assert!(
        total_overlapped > 0,
        "no computation overlapped the collectives — the overlap machinery is broken"
    );
    println!(
        "\n{total_overlapped} compute chunks ran while allreduces were in flight — \
         work a blocking collective would have serialised behind the wire"
    );

    let (_, g0) = &members[0];
    println!("rank 0 engine: {:?}", g0.stats());
    for (node, group) in members {
        drop(group);
        node.shutdown();
    }
}
