//! The paper's Figure 2 scenario: an interactive multimedia application
//! whose media streams get *different* per-connection QoS.
//!
//! Video and audio ride connections **without flow or error control**
//! (low latency; loss tolerated) and the video stream is rate-shaped;
//! the shared document ("text") rides a **reliable** connection with
//! credit-based flow control and selective repeat — all across the same
//! simulated ATM network between the same two participants.
//!
//! Run with: `cargo run --example multimedia_conference`

use std::sync::Arc;
use std::time::Duration;

use ncs::atm::{FaultSpec, LinkSpec, NetworkBuilder, PumpConfig, QosParams};
use ncs::core::link::AciLink;
use ncs::core::{ConnectionConfig, ErrorControlAlg, FlowControlAlg, NcsNode};
use ncs::transport::aci::AciFabric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ATM network with a slightly lossy access link: media frames can
    // die, which is exactly why the text stream needs NCS error control.
    let net = NetworkBuilder::new()
        .host("participant1")
        .host("participant2")
        .switch("atm-switch")
        .link(
            "participant1",
            "atm-switch",
            LinkSpec::oc3().with_fault(FaultSpec::cell_loss(0.002, 42)),
        )
        .link("participant2", "atm-switch", LinkSpec::oc3())
        .build()?;
    let fabric = AciFabric::start(net, PumpConfig::speedup(4.0));

    let p1 = NcsNode::builder("participant1").build();
    let p2 = NcsNode::builder("participant2").build();
    let dev1 = Arc::new(fabric.device("participant1")?);
    let dev2 = Arc::new(fabric.device("participant2")?);
    p1.attach_peer(
        "participant2",
        AciLink::new(Arc::clone(&dev1), "participant2", QosParams::unspecified()),
    );
    p2.attach_peer(
        "participant1",
        AciLink::new(Arc::clone(&dev2), "participant1", QosParams::unspecified()),
    );

    // --- three streams, three configurations (the paper's Figure 2) ----
    // Video: no flow/error control, rate-shaped (CBR-like).
    let video_cfg = ConnectionConfig::builder()
        .sdu_size(8 * 1024)
        .flow_control(FlowControlAlg::RateBased {
            packets_per_sec: 300,
            burst: 8,
        })
        .error_control(ErrorControlAlg::None)
        .build();
    // Audio: no flow/error control at all (lowest latency).
    let audio_cfg = ConnectionConfig::unreliable();
    // Text: fully reliable.
    let text_cfg = ConnectionConfig::reliable();

    let video_tx = p1.connect("participant2", video_cfg)?;
    let video_rx = p2.accept_default()?;
    let audio_tx = p1.connect("participant2", audio_cfg)?;
    let audio_rx = p2.accept_default()?;
    let text_tx = p1.connect("participant2", text_cfg)?;
    let text_rx = p2.accept_default()?;

    // Participant 2 consumes the streams.
    let consumer = std::thread::spawn(move || {
        let mut video_frames = 0u32;
        let mut audio_frames = 0u32;
        let mut text_bytes = 0usize;
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let mut document_done = false;
        while std::time::Instant::now() < deadline {
            if let Ok(Some(f)) = video_rx.try_recv_result() {
                video_frames += 1;
                drop(f);
            }
            if let Ok(Some(f)) = audio_rx.try_recv_result() {
                audio_frames += 1;
                drop(f);
            }
            if let Ok(f) = text_rx.recv_timeout(Duration::from_millis(5)) {
                text_bytes += f.len();
                if f.ends_with(b"<END>") {
                    document_done = true;
                }
            }
            if document_done {
                // The reliable document is in; drain whatever media is
                // still in flight before reporting.
                let drain_until = std::time::Instant::now() + Duration::from_millis(500);
                while std::time::Instant::now() < drain_until {
                    if let Ok(f) = video_rx.recv_timeout(Duration::from_millis(20)) {
                        video_frames += 1;
                        drop(f);
                    }
                    while let Ok(Some(f)) = audio_rx.try_recv_result() {
                        audio_frames += 1;
                        drop(f);
                    }
                }
                break;
            }
        }
        (video_frames, audio_frames, text_bytes)
    });

    // Participant 1 produces: 30 video frames, 50 audio frames, a document.
    for i in 0..30u32 {
        let frame = vec![(i % 255) as u8; 6000]; // ~6 KB video frame
        video_tx.send(&frame)?;
    }
    for i in 0..50u32 {
        let sample = vec![(i % 255) as u8; 480]; // 480 B audio packet
        audio_tx.send(&sample)?;
    }
    let document: Vec<u8> = (0..40_000u32).map(|i| (i % 89) as u8).collect();
    text_tx.send_sync_timeout(&document, Duration::from_secs(30))?;
    text_tx.send_sync_timeout(b"<END>", Duration::from_secs(30))?;

    let (video_frames, audio_frames, text_bytes) = consumer.join().expect("consumer");
    println!("video frames delivered: {video_frames}/30 (loss tolerated, no retransmission)");
    println!("audio frames delivered: {audio_frames}/50 (loss tolerated)");
    println!("document bytes delivered reliably: {text_bytes} (selective repeat)");
    println!(
        "text connection: {} (retransmissions prove the error control earned its keep on a lossy link)",
        text_tx.stats()
    );
    println!("ATM fabric: {}", fabric.stats());
    assert_eq!(text_bytes, 40_000 + 5, "reliable stream must be complete");

    p1.shutdown();
    p2.shutdown();
    fabric.shutdown();
    Ok(())
}
