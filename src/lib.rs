//! # NCS — the NYNET Communication System
//!
//! A comprehensive Rust reproduction of *"A Multithreaded Message-Passing
//! System for High Performance Distributed Computing Applications"*
//! (Park, Lee & Hariri, ICDCS 1998), including every substrate the paper
//! depends on:
//!
//! * [`core`] — the NCS runtime itself: separated control/data planes,
//!   per-connection Send/Receive/Flow-Control/Error-Control threads,
//!   selectable algorithms (credit/window/rate flow control;
//!   selective-repeat/go-back-N error control), the nonblocking
//!   [`Request`] model with tag matching, group communication and the
//!   §4.2 thread-bypass mode;
//! * [`threads`] — the two thread-package architectures of §4.1: a
//!   from-scratch user-level green-thread scheduler (QuickThreads
//!   analogue, hand-written x86_64 context switch) and a kernel-level
//!   package;
//! * [`atm`] — a from-scratch ATM network simulator (53-byte cells, AAL5,
//!   VCI-swapping switches, signaling, fault injection) standing in for
//!   the NYNET testbed;
//! * [`transport`] — the three application communication interfaces:
//!   SCI (sockets), ACI (native ATM) and HPI ("Trap"), plus a modelled
//!   1998 kernel-socket pipe;
//! * [`collectives`] — typed nonblocking broadcast/reduce/allreduce/
//!   scatter/gather/allgather and a dissemination barrier over pluggable
//!   topologies, serviced by a per-member collective progress thread;
//! * [`runtime`] — the multi-process cluster runtime (`ncsd` rendezvous,
//!   `ClusterNode`, `ncs-launch`) and the [`Session`] façade that lets
//!   one program run against a multi-process cluster *or* an in-process
//!   [`LocalWorld`] unchanged;
//! * [`model`] — calibrated SUN-4 / RS6000 platform cost models;
//! * [`comparators`] — working miniature p4, PVM and MPI implementations
//!   for the paper's Figures 12/13.
//!
//! # The Request model
//!
//! Every messaging operation resolves through one completion model.
//! `isend`/`irecv` (and the tag-matched `isend_tagged`/`irecv_tagged`,
//! which multiplex logical channels over one connection) return
//! [`Request`] handles; collective operations return
//! `CollectiveHandle`s; both implement [`Completion`], so [`wait_any`],
//! [`wait_all`] and [`test_all`] drive heterogeneous sets from a single
//! application loop — the paper's compute/communication overlap as an
//! API. Receive completion hands back a pooled zero-copy [`MsgView`]
//! (deref to `&[u8]`, `into_vec()` to take ownership) whose buffer
//! recycles through the node's `BufPool` on drop.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use ncs::core::{NcsNode, ConnectionConfig};
//! use ncs::core::link::HpiLinkPair;
//! use ncs::{wait_all, Completion};
//!
//! let alice = NcsNode::builder("alice").build();
//! let bob = NcsNode::builder("bob").build();
//! let (la, lb) = HpiLinkPair::create();
//! alice.attach_peer("bob", la);
//! bob.attach_peer("alice", lb);
//!
//! let tx = alice.connect("bob", ConnectionConfig::reliable())?;
//! let rx = bob.accept_default()?;
//!
//! // Nonblocking: post the receive first, then the send; compute while
//! // both are in flight; collect when you need the data.
//! let want = rx.irecv();
//! let sent = tx.isend(b"hello")?;
//! let set: [&dyn Completion; 2] = [&want, &sent];
//! assert!(wait_all(&set, Duration::from_secs(10)));
//! let msg = want.wait()?; // zero-copy MsgView
//! assert_eq!(&*msg, b"hello");
//!
//! // The blocking forms remain as thin wrappers over requests.
//! tx.send(b"again")?;
//! assert_eq!(rx.recv()?, b"again");
//! # drop(msg); alice.shutdown(); bob.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # One program, two worlds
//!
//! Write the member body against [`Session`] and run it unchanged in an
//! in-process [`LocalWorld`] or across OS processes under `ncs-launch`
//! (see `examples/cluster_allreduce.rs`):
//!
//! ```
//! use ncs::{Session, LocalWorld};
//! use ncs::collectives::ReduceOp;
//!
//! fn member(s: &impl Session) {
//!     let group = s.collective_group(1).expect("group");
//!     let sum = group
//!         .allreduce(vec![s.rank() as f64], ReduceOp::Sum)
//!         .expect("allreduce");
//!     assert_eq!(sum[0], (0..s.world_size()).map(f64::from).sum::<f64>());
//! }
//!
//! let handles: Vec<_> = LocalWorld::create(2)
//!     .expect("world")
//!     .into_iter()
//!     .map(|s| std::thread::spawn(move || { member(&s); s.shutdown(); }))
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```
//!
//! # Scaling across application threads
//!
//! When several compute threads share one connection, give each its own
//! [`Channel`] (`conn.channel(id)`) — a comm-dup analogue
//! over the tag space. Channels map onto a sharded delivery queue
//! ([`core::DELIVERY_SHARDS`]), so receivers on distinct channels never
//! contend on a lock, and the `mt-msgrate` benchmark in `ncs-bench`
//! proves aggregate message rate scales with the thread count.
//!
//! See `ARCHITECTURE.md` for the top-to-bottom tour of the workspace
//! (crate map, the Figure-4 thread planes, the life of a message, the
//! reactor model and the cluster bootstrap), `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-versus-measured record
//! of every table and figure.

#![deny(missing_docs)]

/// The NCS core runtime (re-export of [`ncs_core`]).
pub use ncs_core as core;

/// Thread packages and package-aware synchronisation (re-export of
/// [`ncs_threads`]).
pub use ncs_threads as threads;

/// The ATM network simulator (re-export of [`atm_sim`]).
pub use atm_sim as atm;

/// Communication interfaces (re-export of [`ncs_transport`]).
pub use ncs_transport as transport;

/// Collective operations — nonblocking broadcast/reduce/scatter/gather
/// over pluggable topologies (re-export of [`ncs_collectives`]).
pub use ncs_collectives as collectives;

/// The cluster runtime — ncsd rendezvous, multi-process ClusterNode
/// bootstrap over SCI, the ncs-launch engine and the Session façade
/// (re-export of [`ncs_runtime`]).
pub use ncs_runtime as runtime;

/// The telemetry plane — lock-free metrics registry, log-bucketed
/// histograms, Prometheus/JSON/table snapshot rendering and the
/// per-connection message-lifecycle flight recorder (re-export of
/// [`ncs_obs`]). Every layer above registers into one
/// [`obs::Registry`]; pull a
/// [`MetricsSnapshot`](ncs_obs::MetricsSnapshot) via
/// `node.metrics_snapshot()` or the whole JSON dump via
/// [`Session::telemetry`].
pub use ncs_obs as obs;

/// Platform cost models (re-export of [`netmodel`]).
pub use netmodel as model;

/// The comparator message-passing systems (re-export of [`baselines`]).
pub use baselines as comparators;

pub use ncs_core::{
    test_all, wait_all, wait_any, Channel, Completion, MsgView, Request, CHANNEL_TAG_BASE,
};
pub use ncs_runtime::{
    LocalSession, LocalWorld, Scenario, Session, SessionError, SimReport, SimSession, SimWorld,
    SimWorldBuilder,
};
