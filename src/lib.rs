//! # NCS — the NYNET Communication System
//!
//! A comprehensive Rust reproduction of *"A Multithreaded Message-Passing
//! System for High Performance Distributed Computing Applications"*
//! (Park, Lee & Hariri, ICDCS 1998), including every substrate the paper
//! depends on:
//!
//! * [`core`] — the NCS runtime itself: separated control/data planes,
//!   per-connection Send/Receive/Flow-Control/Error-Control threads,
//!   selectable algorithms (credit/window/rate flow control;
//!   selective-repeat/go-back-N error control), group communication and
//!   the §4.2 thread-bypass mode;
//! * [`threads`] — the two thread-package architectures of §4.1: a
//!   from-scratch user-level green-thread scheduler (QuickThreads
//!   analogue, hand-written x86_64 context switch) and a kernel-level
//!   package;
//! * [`atm`] — a from-scratch ATM network simulator (53-byte cells, AAL5,
//!   VCI-swapping switches, signaling, fault injection) standing in for
//!   the NYNET testbed;
//! * [`transport`] — the three application communication interfaces:
//!   SCI (sockets), ACI (native ATM) and HPI ("Trap"), plus a modelled
//!   1998 kernel-socket pipe;
//! * [`collectives`] — typed nonblocking broadcast/reduce/allreduce/
//!   scatter/gather/allgather and a dissemination barrier over pluggable
//!   topologies, serviced by a per-member collective progress thread;
//! * [`runtime`] — the multi-process cluster runtime: `ncsd` rendezvous,
//!   `ClusterNode` bootstrap over SCI with retrying dials and a
//!   version+rank handshake, and the `ncs-launch` local launcher;
//! * [`model`] — calibrated SUN-4 / RS6000 platform cost models;
//! * [`comparators`] — working miniature p4, PVM and MPI implementations
//!   for the paper's Figures 12/13.
//!
//! # Quickstart
//!
//! ```
//! use ncs::core::{NcsNode, ConnectionConfig};
//! use ncs::core::link::HpiLinkPair;
//!
//! let alice = NcsNode::builder("alice").build();
//! let bob = NcsNode::builder("bob").build();
//! let (la, lb) = HpiLinkPair::create();
//! alice.attach_peer("bob", la);
//! bob.attach_peer("alice", lb);
//!
//! let tx = alice.connect("bob", ConnectionConfig::reliable())?;
//! let rx = bob.accept_default()?;
//! tx.send(b"hello")?;
//! assert_eq!(rx.recv()?, b"hello");
//! # alice.shutdown(); bob.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![warn(missing_docs)]

/// The NCS core runtime (re-export of [`ncs_core`]).
pub use ncs_core as core;

/// Thread packages and package-aware synchronisation (re-export of
/// [`ncs_threads`]).
pub use ncs_threads as threads;

/// The ATM network simulator (re-export of [`atm_sim`]).
pub use atm_sim as atm;

/// Communication interfaces (re-export of [`ncs_transport`]).
pub use ncs_transport as transport;

/// Collective operations — nonblocking broadcast/reduce/scatter/gather
/// over pluggable topologies (re-export of [`ncs_collectives`]).
pub use ncs_collectives as collectives;

/// The cluster runtime — ncsd rendezvous, multi-process ClusterNode
/// bootstrap over SCI, and the ncs-launch engine (re-export of
/// [`ncs_runtime`]).
pub use ncs_runtime as runtime;

/// Platform cost models (re-export of [`netmodel`]).
pub use netmodel as model;

/// The comparator message-passing systems (re-export of [`baselines`]).
pub use baselines as comparators;
