//! Façade smoke test: exercises every `ncs::` re-export end-to-end so that
//! a broken re-export (or a drifted path behind one) fails tier-1
//! immediately, not just when a downstream consumer builds.

use std::time::Duration;

use ncs::core::link::HpiLinkPair;
use ncs::core::{ConnectionConfig, NcsNode};

/// The quickstart flow, spelled entirely through the façade paths:
/// node builder → HPI link pair → reliable connection → send/recv →
/// shutdown.
#[test]
fn facade_quickstart_round_trip() {
    let alice = NcsNode::builder("alice").build();
    let bob = NcsNode::builder("bob").build();
    let (la, lb) = HpiLinkPair::create();
    alice.attach_peer("bob", la);
    bob.attach_peer("alice", lb);

    let tx = alice
        .connect("bob", ConnectionConfig::reliable())
        .expect("connect");
    let rx = bob.accept_default().expect("accept");

    tx.send(b"hello through the facade").expect("send");
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(10)).expect("recv"),
        b"hello through the facade"
    );
    // And the reverse direction on the same duplex connection.
    rx.send(b"and back").expect("reverse send");
    assert_eq!(
        tx.recv_timeout(Duration::from_secs(10))
            .expect("reverse recv"),
        b"and back"
    );

    let stats = tx.stats();
    assert!(
        stats.messages_sent >= 1,
        "stats visible via facade: {stats}"
    );
    alice.shutdown();
    bob.shutdown();
}

/// Every re-exported module answers at its façade path with its own types.
#[test]
fn facade_reexports_are_live() {
    // ncs::threads — the green-thread package runs a closure to completion.
    let answer = ncs::threads::UserRuntime::default().run(|pkg| {
        use ncs::threads::{ThreadPackage, ThreadPackageExt};
        let h = pkg.spawn_typed("probe", || 21 * 2);
        pkg.yield_now();
        h.join().expect("green thread join")
    });
    assert_eq!(answer, 42);

    // ncs::atm — AAL5 SAR round-trips a frame.
    let frame = vec![0x5Au8; 1000];
    let cells = ncs::atm::aal5::segment(ncs::atm::cell::Vc::new(7), &frame).expect("segment");
    let mut reasm = ncs::atm::aal5::Reassembler::new();
    let mut out = None;
    for c in &cells {
        if let Some(done) = reasm.push(c) {
            out = Some(done);
        }
    }
    assert_eq!(out.expect("frame completes").expect("crc ok"), frame);

    // ncs::transport — an HPI pair moves bytes.
    {
        use ncs::transport::Connection;
        let (a, b) = ncs::transport::hpi::pair(64);
        a.send(b"ping").expect("hpi send");
        assert_eq!(b.recv().expect("hpi recv"), b"ping");
    }

    // ncs::model — calibrated platform profiles exist and pace.
    let sun = ncs::model::PlatformProfile::sun4();
    let rs = ncs::model::PlatformProfile::rs6000();
    assert_ne!(format!("{sun:?}"), format!("{rs:?}"));
    let _quiet = ncs::model::Pacer::disabled();

    // ncs::comparators — a baseline endpoint echoes a payload.
    {
        use ncs::comparators::common::{EndpointSpec, MessageSystem};
        use ncs::comparators::p4::P4Endpoint;
        let (ca, cb) = ncs::transport::hpi::pair(4096);
        let mut a = P4Endpoint::new(Box::new(ca), EndpointSpec::unmodelled());
        let mut b = P4Endpoint::new(Box::new(cb), EndpointSpec::unmodelled());
        a.send(5, b"facade").expect("p4 send");
        assert_eq!(b.recv(5).expect("p4 recv"), b"facade");
    }
}

/// The façade and the underlying crates expose the same types (a re-export,
/// not a copy): a connection built from `ncs::core` config types is usable
/// with values from the underlying crate path and vice versa.
#[test]
fn facade_types_are_the_underlying_types() {
    let via_facade: ncs::core::ConnectionConfig = ncs::core::ConnectionConfig::reliable();
    // Compiles only if `ncs::core` IS `ncs_core` (same type identity).
    let round_trip = ncs::core::ConnectionConfig::decode(&via_facade.encode()).expect("codec");
    assert_eq!(round_trip, via_facade);

    let node: NcsNode = NcsNode::builder("solo").build();
    node.shutdown();
}

/// The Request/Session layer answers at its façade paths: `ncs::Request`
/// via `isend`/`irecv`, `ncs::MsgView` zero-copy receives, heterogeneous
/// `ncs::wait_any`/`wait_all`/`test_all` sets mixing point-to-point
/// requests with collective handles, and `ncs::LocalWorld` sessions.
#[test]
fn facade_requests_and_sessions_are_live() {
    use ncs::{test_all, wait_all, wait_any, Completion, LocalWorld, Session};

    let world = LocalWorld::create(2).expect("local world");
    let handles: Vec<_> = world
        .into_iter()
        .map(|s| {
            std::thread::spawn(move || {
                let rank = s.rank();
                assert_eq!(s.world_size(), 2);
                // Point-to-point requests over a fresh session connection.
                let conn = if rank == 0 {
                    s.connect(1, ConnectionConfig::unreliable())
                        .expect("connect")
                } else {
                    s.accept(Duration::from_secs(30)).expect("accept")
                };
                let want = conn.irecv();
                let sent = conn
                    .isend(format!("from {rank}").as_bytes())
                    .expect("isend");
                // Mixed set: both requests plus a collective handle.
                let group = s.collective_group(1).expect("group");
                let ar = group
                    .iallreduce(vec![rank as f64 + 1.0], ncs::collectives::ReduceOp::Sum)
                    .expect("iallreduce");
                {
                    let set: [&dyn Completion; 3] = [&want, &sent, &ar];
                    assert!(wait_all(&set, Duration::from_secs(30)), "wait_all stalled");
                    assert!(test_all(&set));
                    assert_eq!(wait_any(&set, Duration::from_secs(1)), Some(0));
                }
                let view: ncs::MsgView = want.wait().expect("irecv");
                assert_eq!(&*view, format!("from {}", 1 - rank).as_bytes());
                sent.wait().expect("isend completion");
                assert_eq!(ar.wait().expect("allreduce"), vec![3.0]);
                group.barrier().expect("barrier");
                drop(group);
                s.shutdown();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("member panicked");
    }
}
