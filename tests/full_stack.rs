//! Workspace-level integration tests: NCS end-to-end across every
//! substrate crate at once — green threads under the runtime, the ATM
//! simulator as the wire, the transports in between, the baselines beside
//! them.

use std::sync::Arc;
use std::time::Duration;

use ncs::atm::{FaultSpec, LinkSpec, NetworkBuilder, PumpConfig, QosParams};
use ncs::core::link::{AciLink, HpiLinkPair, SciLink};
use ncs::core::{ConnectionConfig, ErrorControlAlg, FlowControlAlg, NcsNode};
use ncs::transport::aci::AciFabric;
use ncs::transport::sci::SciListener;

/// NCS over the full ATM stack: AAL5 VCs, signaling, switch, loss — with
/// selective repeat keeping the data intact.
#[test]
fn ncs_over_atm_with_loss_recovers() {
    let net = NetworkBuilder::new()
        .host("tx")
        .host("rx")
        .switch("sw")
        .link(
            "tx",
            "sw",
            LinkSpec::oc3().with_fault(FaultSpec::cell_loss(0.002, 99)),
        )
        .link("rx", "sw", LinkSpec::oc3())
        .build()
        .expect("topology");
    let fabric = AciFabric::start(net, PumpConfig::speedup(16.0));
    let tx_node = NcsNode::builder("tx").build();
    let rx_node = NcsNode::builder("rx").build();
    let dev_tx = Arc::new(fabric.device("tx").unwrap());
    let dev_rx = Arc::new(fabric.device("rx").unwrap());
    tx_node.attach_peer("rx", AciLink::new(dev_tx, "rx", QosParams::unspecified()));
    rx_node.attach_peer("tx", AciLink::new(dev_rx, "tx", QosParams::unspecified()));

    let config = ConnectionConfig::builder()
        .sdu_size(4096)
        .flow_control(FlowControlAlg::CreditBased {
            initial_credits: 4,
            dynamic: true,
        })
        .error_control(ErrorControlAlg::SelectiveRepeat {
            timeout: Duration::from_millis(150),
            max_retries: 40,
        })
        .build();
    let conn_tx = tx_node.connect("rx", config).expect("connect over ATM");
    let conn_rx = rx_node.accept_default().expect("accept");

    let message: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    conn_tx
        .send_sync_timeout(&message, Duration::from_secs(60))
        .expect("reliable delivery over lossy ATM");
    let got = conn_rx.recv_timeout(Duration::from_secs(60)).expect("recv");
    assert_eq!(got, message);
    assert!(
        conn_tx.stats().retransmissions > 0,
        "cell loss must force retransmissions: {}",
        conn_tx.stats()
    );
    tx_node.shutdown();
    rx_node.shutdown();
    fabric.shutdown();
}

/// NCS over real TCP sockets (the SCI interface).
#[test]
fn ncs_over_sci_tcp() {
    let la = Arc::new(SciListener::bind("127.0.0.1:0").unwrap());
    let lb = Arc::new(SciListener::bind("127.0.0.1:0").unwrap());
    let addr_a = la.local_addr().unwrap();
    let addr_b = lb.local_addr().unwrap();
    let a = NcsNode::builder("sci-a").build();
    let b = NcsNode::builder("sci-b").build();
    a.attach_peer("sci-b", SciLink::new(addr_b, Arc::clone(&la)));
    b.attach_peer("sci-a", SciLink::new(addr_a, Arc::clone(&lb)));

    // TCP is reliable: the bypass configuration is the right one (§3.1).
    let tx = a.connect("sci-b", ConnectionConfig::unreliable()).unwrap();
    let rx = b.accept_default().unwrap();
    let payload: Vec<u8> = (0..30_000u32).map(|i| (i % 241) as u8).collect();
    tx.send(&payload).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), payload);
    // And the reverse direction.
    rx.send(b"ack from b").unwrap();
    assert_eq!(
        tx.recv_timeout(Duration::from_secs(10)).unwrap(),
        b"ack from b"
    );
    a.shutdown();
    b.shutdown();
}

/// The full NCS runtime hosted on the user-level (green thread) package.
#[test]
fn ncs_runtime_on_green_threads() {
    use ncs::threads::{SwitchMech, ThreadPackage, UserConfig, UserRuntime};
    let delivered = UserRuntime::new(UserConfig {
        mech: SwitchMech::Native,
        ..UserConfig::default()
    })
    .run(|pkg| {
        let (la, lb) = HpiLinkPair::create();
        let a = NcsNode::builder("green-a")
            .thread_package(Arc::new(pkg.clone()) as Arc<dyn ThreadPackage>)
            .build();
        let b = NcsNode::builder("green-b").build(); // kernel side
        a.attach_peer("green-b", la);
        b.attach_peer("green-a", lb);
        let tx = a.connect("green-b", ConnectionConfig::reliable()).unwrap();
        let rx = b.accept_default().unwrap();
        tx.send_sync(b"from the green world").unwrap();
        let got = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        a.shutdown();
        b.shutdown();
        got
    });
    assert_eq!(delivered, b"from the green world");
}

/// Baselines and NCS side by side over the same wire shape, verifying the
/// harness invariants that the figures rely on.
#[test]
fn all_four_systems_echo_correctly() {
    use ncs::comparators::common::{EndpointSpec, MessageSystem};
    use ncs::comparators::{mpi::MpiEndpoint, p4::P4Endpoint, pvm::PvmEndpoint};
    use ncs::transport::hpi;

    fn echo<S: MessageSystem + 'static>(mut client: S, mut server: S, size: usize) {
        let payload = vec![7u8; size];
        let t = std::thread::spawn(move || {
            let m = server.recv(9).unwrap();
            server.send(9, &m).unwrap();
            server
        });
        client.send(9, &payload).unwrap();
        assert_eq!(client.recv(9).unwrap(), payload);
        t.join().unwrap();
    }

    for size in [1usize, 4096, 40_000] {
        let (a, b) = hpi::pair(4096);
        echo(
            P4Endpoint::new(Box::new(a), EndpointSpec::unmodelled()),
            P4Endpoint::new(Box::new(b), EndpointSpec::unmodelled()),
            size,
        );
        let (a, b) = hpi::pair(4096);
        echo(
            PvmEndpoint::new(Box::new(a), EndpointSpec::unmodelled()),
            PvmEndpoint::new(Box::new(b), EndpointSpec::unmodelled()),
            size,
        );
        let (a, b) = hpi::pair(4096);
        echo(
            MpiEndpoint::new(Box::new(a), EndpointSpec::unmodelled()),
            MpiEndpoint::new(Box::new(b), EndpointSpec::unmodelled()),
            size,
        );
    }
}

/// Direct (thread-bypass) mode across the ATM stack.
#[test]
fn direct_mode_over_atm() {
    let net = NetworkBuilder::new()
        .host("a")
        .host("b")
        .switch("sw")
        .link("a", "sw", LinkSpec::oc3())
        .link("b", "sw", LinkSpec::oc3())
        .build()
        .unwrap();
    let fabric = AciFabric::start(net, PumpConfig::speedup(16.0));
    let a = NcsNode::builder("a").build();
    let b = NcsNode::builder("b").build();
    let dev_a = Arc::new(fabric.device("a").unwrap());
    let dev_b = Arc::new(fabric.device("b").unwrap());
    a.attach_peer("b", AciLink::new(dev_a, "b", QosParams::unspecified()));
    b.attach_peer("a", AciLink::new(dev_b, "a", QosParams::unspecified()));

    let tx = a.connect("b", ConnectionConfig::direct()).unwrap();
    let rx = b.accept_default().unwrap();
    let t = std::thread::spawn(move || rx.recv_direct(Duration::from_secs(20)));
    tx.send_direct(b"procedures across ATM").unwrap();
    assert_eq!(t.join().unwrap().unwrap(), b"procedures across ATM");
    a.shutdown();
    b.shutdown();
    fabric.shutdown();
}

/// Two NCS nodes, many concurrent connections with mixed configurations.
#[test]
fn mixed_configuration_connections_coexist() {
    let a = NcsNode::builder("mix-a").build();
    let b = NcsNode::builder("mix-b").build();
    let (la, lb) = HpiLinkPair::with_capacity(2048);
    a.attach_peer("mix-b", la);
    b.attach_peer("mix-a", lb);

    let configs = vec![
        ConnectionConfig::reliable(),
        ConnectionConfig::unreliable(),
        ConnectionConfig::builder()
            .sdu_size(1024)
            .flow_control(FlowControlAlg::SlidingWindow { window: 8 })
            .error_control(ErrorControlAlg::GoBackN {
                window: 8,
                timeout: Duration::from_millis(200),
                max_retries: 10,
            })
            .build(),
        ConnectionConfig::builder()
            .sdu_size(2048)
            .flow_control(FlowControlAlg::RateBased {
                packets_per_sec: 50_000,
                burst: 16,
            })
            .error_control(ErrorControlAlg::None)
            .build(),
    ];
    let mut pairs = Vec::new();
    for c in configs {
        let tx = a.connect("mix-b", c).unwrap();
        let rx = b.accept_default().unwrap();
        pairs.push((tx, rx));
    }
    let mut handles = Vec::new();
    for (i, (tx, rx)) in pairs.into_iter().enumerate() {
        handles.push(std::thread::spawn(move || {
            let msg = vec![i as u8 + 1; 5_000];
            tx.send_sync_timeout(&msg, Duration::from_secs(20)).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(20)).unwrap(), msg);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    a.shutdown();
    b.shutdown();
}
