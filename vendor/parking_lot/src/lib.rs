//! A vendored, API-compatible subset of the `parking_lot` crate, backed by
//! `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the thin slice of the `parking_lot` surface the NCS crates actually use:
//!
//! * [`Mutex`] / [`MutexGuard`] — non-poisoning `lock()` returning the guard
//!   directly;
//! * [`RwLock`] with `read()` / `write()`;
//! * [`Condvar`] with `wait`, `wait_for`, `wait_until`, `notify_one`,
//!   `notify_all` and [`WaitTimeoutResult::timed_out`];
//! * [`Once`] with `call_once`.
//!
//! Semantics match parking_lot where the callers can observe them: poisoned
//! std locks are transparently recovered (parking_lot has no poisoning), and
//! `Condvar` may wake spuriously exactly as parking_lot's may.

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()` returns
/// the guard directly and poisoning is never surfaced.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. Dropping it releases the lock.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily hand the std guard to
    // `std::sync::Condvar` (which consumes and returns it by value).
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`] guards.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or the `deadline` instant is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock. `read()`/`write()` return guards directly and
/// poisoning is never surfaced.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// One-time initialisation primitive.
pub struct Once {
    inner: std::sync::Once,
    done: AtomicBool,
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Self {
        Once {
            inner: std::sync::Once::new(),
            done: AtomicBool::new(false),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(|| {
            f();
            self.done.store(true, Ordering::Release);
        });
    }

    /// Whether `call_once` has completed.
    pub fn state_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

impl fmt::Debug for Once {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Once").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        h.join().unwrap();
    }
}
