//! A vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small wall-clock harness exposing the criterion surface the `ncs-bench`
//! micro-benchmarks use: [`Criterion::bench_function`], benchmark groups
//! with [`Throughput`] and [`BenchmarkId`], `Bencher::iter` /
//! `Bencher::iter_custom`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a fixed measurement window; the
//! mean per-iteration time (and derived throughput) is printed. There is no
//! HTML report and no outlier analysis — the point is a dependency-free
//! `cargo bench` that produces comparable numbers run-over-run.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one benchmark.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);
/// Target wall-clock time spent warming one benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// The benchmark manager. One instance is threaded through every
/// `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Throughput basis for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// Drives the timed section of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping each return value alive until
    /// after the clock stops.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the benchmark time itself: `f` receives the iteration count and
    /// returns the total elapsed time for exactly that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warmup: discover a per-iteration cost estimate.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = loop {
        f(&mut b);
        let cost = b.elapsed.max(Duration::from_nanos(1)) / (b.iters as u32).max(1);
        if warm_start.elapsed() >= WARMUP_WINDOW {
            break cost;
        }
        b.iters = (b.iters * 2).min(1 << 20);
    };
    if per_iter.is_zero() {
        per_iter = Duration::from_nanos(1);
    }

    // Measurement: one timed batch sized to fill the window.
    let target = (MEASUREMENT_WINDOW.as_nanos() / per_iter.as_nanos().max(1)).max(1);
    b.iters = target.min(u64::MAX as u128) as u64;
    f(&mut b);
    let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            "  {:>10.1} MiB/s",
            n as f64 / (mean * 1e-9) / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!("  {:>10.1} Melem/s", n as f64 / (mean * 1e-9) / 1e6),
    });
    println!(
        "bench: {name:<44} {:>12.1} ns/iter ({} iters){}",
        mean,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Groups benchmark functions under one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main()` running the given groups. Accepts and ignores harness
/// arguments (`--bench`, filters) that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes bench targets with `--test`: nothing to
            // run, exit quickly and successfully.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
