//! A vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of `rand`'s surface that the ATM simulator's deterministic fault
//! injector uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_bool` and `gen_range` over integer
//! ranges.
//!
//! The generator is xoshiro256++ — a small, high-quality, seedable PRNG. It
//! does NOT match upstream `StdRng`'s stream (upstream makes no cross-version
//! stream guarantee either); all in-repo consumers only require determinism
//! for a fixed seed, which this provides.

#![warn(missing_docs)]

use std::ops::Range;

/// A PRNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples `true` with probability `p` (`p` is clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Returns a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types with a "natural" uniform distribution over all values.
pub trait Standard: Sized {
    /// Samples a uniformly random value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Multiply-shift rejection-free mapping (Lemire). The tiny
                // modulo bias (span / 2^64) is irrelevant for simulation use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
