//! Fixed-size array strategies (`proptest::array::uniform32`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

macro_rules! uniform_array {
    ($($fn_name:ident => $n:literal),* $(,)?) => {$(
        /// Generates a fixed-size array where every element comes from
        /// `element`.
        pub fn $fn_name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_array! {
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
    uniform64 => 64,
}

/// Strategy returned by the `uniformN` constructors.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}
