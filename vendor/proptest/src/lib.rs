//! A vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of proptest that the NCS property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] / [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//! * `any::<T>()`, `Just`, integer range strategies, tuple strategies,
//!   `proptest::collection::vec`, `proptest::array::uniform32` and simple
//!   `"[class]{m,n}"` string-pattern strategies.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (reproducible across runs) and failing cases are reported **without
//! shrinking** — the failing input is printed verbatim instead.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic case generation and failure reporting.
pub mod test_runner_impl {}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_parse_params {
    // Terminal: all params consumed — emit the runner.
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*];) => {
        $crate::__proptest_emit!{ cfg = $cfg; body = $body; acc = [$($acc)*]; }
    };
    // `mut name in strategy` (trailing param, optional comma handled below)
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*]; mut $id:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = [$($acc)* {(mut $id) ($s)}]; $($rest)* }
    };
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*]; mut $id:ident in $s:expr) => {
        $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = [$($acc)* {(mut $id) ($s)}]; }
    };
    // `name in strategy`
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*]; $id:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = [$($acc)* {($id) ($s)}]; $($rest)* }
    };
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*]; $id:ident in $s:expr) => {
        $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = [$($acc)* {($id) ($s)}]; }
    };
    // `name: Type` == `name in any::<Type>()`
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*]; $id:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = [$($acc)* {($id) ($crate::arbitrary::any::<$ty>())}]; $($rest)* }
    };
    (cfg = $cfg:expr; body = $body:block; acc = [$($acc:tt)*]; $id:ident : $ty:ty) => {
        $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = [$($acc)* {($id) ($crate::arbitrary::any::<$ty>())}]; }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_emit {
    (cfg = $cfg:expr; body = $body:block; acc = [$({($($pat:tt)+) ($s:expr)})*];) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        for __case in 0..__config.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
            $(
                let $($pat)+ = $crate::strategy::Strategy::generate(&($s), &mut __rng);
            )*
            let mut __run = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::std::result::Result::Ok(())
            };
            match __run() {
                ::std::result::Result::Ok(()) => {}
                ::std::result::Result::Err(__e) if __e.is_rejection() => continue,
                ::std::result::Result::Err(__e) => {
                    panic!("proptest: case {}/{} failed: {}", __case + 1, __config.cases, __e)
                }
            }
        }
    }};
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse_params!{ cfg = $cfg; body = $body; acc = []; $($params)* }
        }
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
}

/// Defines property tests. Each `fn name(params) { body }` becomes a
/// `#[test]` that runs the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Asserts a condition inside a proptest body, failing the current case
/// (with formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal (requires `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Asserts two expressions are unequal (requires `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`: {}\n  both: `{:?}`",
            format!($($fmt)+),
            __l
        );
    }};
}

/// Rejects the current case (skips it) if `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Chooses uniformly between the given strategies (all must produce the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
