//! The `Strategy` trait and the combinators used by the workspace's
//! property tests. No shrinking: strategies only generate.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Object safe: `generate` takes the concrete [`TestRng`], so strategies can
/// be boxed for [`Union`] (`prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full 2^64 domain; take raw bits.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `&'static str` patterns of the form `"[class]{m,n}"` act as string
/// strategies (the only regex shape the workspace's tests use). `class`
/// supports literal characters and `a-z` ranges; `{m}` fixes the length.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` that is not first or last in the class).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    let counts = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses() {
        let (alpha, min, max) = parse_class_pattern("[a-c_.]{0,40}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c', '_', '.']);
        assert_eq!((min, max), (0, 40));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let pat = "[a-zA-Z0-9_.-]{0,40}";
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'));
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (1u32..64).generate(&mut rng);
            assert!((1..64).contains(&v));
            let w = (256usize..=65536).generate(&mut rng);
            assert!((256..=65536).contains(&w));
        }
    }
}
