//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

// PhantomData keeps Any zero-sized; Clone/Copy regardless of T.
impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns: exercises subnormals, infinities and NaNs, which
        // is exactly what codec round-trip properties want to see.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0x11_0000 - 0x800) as u32 + 0x800).unwrap_or('\u{fffd}')
        } else {
            (rng.below(0x5f) as u8 + 0x20) as char
        }
    }
}
