//! Deterministic case generation and failure classification.

use std::fmt;

/// Per-test configuration; mirrors the small slice of upstream
/// `ProptestConfig` that the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier protocol-convergence
        // properties fast while still exploring a wide input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject,
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A `prop_assume!` rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// Whether this case should be silently skipped rather than reported.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// The per-case deterministic generator (SplitMix64). Every run of the test
/// suite sees the same sequence of inputs for a given case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th case of a property.
    ///
    /// The case index is run through the full SplitMix64 finalizer before it
    /// becomes the starting state: `next_u64` advances the state by the same
    /// golden-ratio increment, so a linear seed like `case * GOLDEN` would
    /// make case `c+1`'s stream equal case `c`'s shifted by one draw, and the
    /// suite would explore a sliding window over one sequence instead of
    /// independent inputs.
    pub fn for_case(case: u64) -> Self {
        let mut z = case
            .wrapping_add(0x243F_6A88_85A3_08D3)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: z ^ (z >> 31),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
